//! Determinism guarantees of the sweep engine (DESIGN.md §3):
//!
//! * each simulation is a pure function of its configuration seed;
//! * the worker count is observationally invisible — `--jobs 1`,
//!   `--jobs 2` and `--jobs 8` yield byte-identical serialized results,
//!   including the per-epoch metrics JSON;
//! * repeating a sweep in the same process changes nothing.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 23;
    c
}

/// A sweep mixing apps, NDP designs and the host baseline.
fn points() -> Vec<SweepPoint> {
    let cols = [
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::O),
        Column::Host,
    ];
    ["tree", "spmv", "bfs"]
        .iter()
        .flat_map(|&app| {
            cols.iter()
                .map(move |&col| SweepPoint::new(app, col, cfg(), Scale::Tiny))
        })
        .collect()
}

/// Every observable byte of a result: the summary JSON (covers all
/// scalar fields and the gini of `per_unit_busy`) plus the full
/// per-epoch metrics document.
fn serialize(results: &[RunResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.to_json(), r.metrics.to_json()))
        .collect()
}

#[test]
fn worker_count_is_observationally_invisible() {
    let reference = serialize(&Sweeper::new(1).run(points()));
    for jobs in [2, 8] {
        let got = serialize(&Sweeper::new(jobs).run(points()));
        assert_eq!(
            got, reference,
            "jobs={jobs} must be byte-identical to jobs=1"
        );
    }
}

#[test]
fn repeating_a_sweep_in_one_process_is_bit_identical() {
    let sweeper = Sweeper::new(4);
    let first = serialize(&sweeper.run(points()));
    let second = serialize(&sweeper.run(points()));
    assert_eq!(second, first, "same-process rerun drifted");
    // And a fresh engine in the same process agrees too (no hidden
    // global state seeded by the first run).
    let fresh = serialize(&Sweeper::new(4).run(points()));
    assert_eq!(fresh, first, "fresh-engine rerun drifted");
}

#[test]
fn seed_is_the_only_source_of_variation() {
    let base = Sweeper::new(4).run(vec![SweepPoint::new(
        "ht",
        Column::Ndp(DesignPoint::O),
        cfg(),
        Scale::Tiny,
    )]);
    let mut reseeded_cfg = cfg();
    reseeded_cfg.seed ^= 0xDEAD;
    let reseeded = Sweeper::new(4).run(vec![SweepPoint::new(
        "ht",
        Column::Ndp(DesignPoint::O),
        reseeded_cfg,
        Scale::Tiny,
    )]);
    assert_ne!(
        base[0].to_json(),
        reseeded[0].to_json(),
        "different seeds should perturb the run (dataset and decisions are seeded)"
    );
}
