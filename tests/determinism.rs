//! Determinism guarantees of the sweep engine (DESIGN.md §3):
//!
//! * each simulation is a pure function of its configuration seed;
//! * the worker count is observationally invisible — `--jobs 1`,
//!   `--jobs 2` and `--jobs 8` yield byte-identical serialized results,
//!   including the per-epoch metrics JSON;
//! * repeating a sweep in the same process changes nothing.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 23;
    c
}

/// A sweep mixing apps, NDP designs and the host baseline.
fn points() -> Vec<SweepPoint> {
    let cols = [
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::O),
        Column::Host,
    ];
    ["tree", "spmv", "bfs"]
        .iter()
        .flat_map(|&app| {
            cols.iter()
                .map(move |&col| SweepPoint::new(app, col, cfg(), Scale::Tiny))
        })
        .collect()
}

/// Every observable byte of a result: the summary JSON (covers all
/// scalar fields and the gini of `per_unit_busy`) plus the full
/// per-epoch metrics document.
fn serialize(results: &[RunResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.to_json(), r.metrics.to_json()))
        .collect()
}

#[test]
fn worker_count_is_observationally_invisible() {
    let reference = serialize(&Sweeper::new(1).run(points()));
    for jobs in [2, 8] {
        let got = serialize(&Sweeper::new(jobs).run(points()));
        assert_eq!(
            got, reference,
            "jobs={jobs} must be byte-identical to jobs=1"
        );
    }
}

/// All six paper designs plus the gather-aware policy toggles, × two
/// apps: the full matrix the sharded engine must keep byte-stable.
fn six_design_points() -> Vec<SweepPoint> {
    let cols = [
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::O),
        Column::Host,
        Column::Ndp(DesignPoint::R),
        Column::Ndp(DesignPoint::WGather),
        Column::Ndp(DesignPoint::OGather),
    ];
    ["tree", "spmv"]
        .iter()
        .flat_map(|&app| {
            cols.iter()
                .map(move |&col| SweepPoint::new(app, col, cfg(), Scale::Tiny))
        })
        .collect()
}

#[test]
fn shard_count_is_observationally_invisible() {
    // DESIGN.md §9: sharding one run across per-shard timer wheels must
    // never show. Every (shards, jobs) combination yields the same
    // serialized bytes — summary JSON and full per-epoch metrics — and
    // the same event counts as the serial single-wheel reference, for
    // all six designs and both apps.
    let serial = Sweeper::new(1).run(six_design_points());
    let reference = serialize(&serial);
    let ref_events: Vec<u64> = serial.iter().map(|r| r.events).collect();
    for shards in [1, 2, 4] {
        for jobs in [1, 2] {
            let got = Sweeper::new(jobs)
                .with_shards(shards)
                .run(six_design_points());
            let events: Vec<u64> = got.iter().map(|r| r.events).collect();
            assert_eq!(
                events, ref_events,
                "event count drifted at shards={shards} jobs={jobs}"
            );
            assert_eq!(
                serialize(&got),
                reference,
                "shards={shards} jobs={jobs} must be byte-identical to the serial run"
            );
        }
    }
}

#[test]
fn cached_results_cross_shard_counts_both_ways() {
    // A result cached at shards=1 must be a hit at shards=4 and vice
    // versa: shard count is excluded from the config fingerprint, so
    // the point key — and therefore the on-disk cache entry — is
    // shared. Checked for a baseline design and for the gather-aware
    // policy (whose extra knobs must not leak shard count into the
    // fingerprint either).
    let simulated = |s: &Sweeper| {
        s.metrics()
            .live_report()
            .final_value("sweep/simulated")
            .unwrap_or(0)
    };
    let hits = |s: &Sweeper| {
        s.metrics()
            .live_report()
            .final_value("sweep/cache_hits")
            .unwrap_or(0)
    };
    let point = || {
        vec![
            SweepPoint::new("tree", Column::Ndp(DesignPoint::B), cfg(), Scale::Tiny),
            SweepPoint::new(
                "tree",
                Column::Ndp(DesignPoint::WGather),
                cfg(),
                Scale::Tiny,
            ),
        ]
    };
    for (store_shards, probe_shards) in [(1usize, 4usize), (4, 1)] {
        let dir = std::env::temp_dir().join(format!(
            "ndpb-shard-cache-{store_shards}-{probe_shards}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let writer = Sweeper::new(1).with_cache(&dir).with_shards(store_shards);
        let stored = serialize(&writer.run(point()));
        assert_eq!(simulated(&writer), 2, "cold cache simulates every point");

        let reader = Sweeper::new(1).with_cache(&dir).with_shards(probe_shards);
        let probed = serialize(&reader.run(point()));
        assert_eq!(
            hits(&reader),
            2,
            "shards={store_shards} entries must hit at shards={probe_shards}"
        );
        assert_eq!(simulated(&reader), 0, "warm probe must not simulate");
        assert_eq!(probed, stored, "cache round-trip changed bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn profiled_runs_are_byte_identical_to_the_sweep() {
    // `--profile` arms the phase profiler, which forces the serial
    // batched dispatch loop. The measurement must be invisible: result
    // bytes (summary JSON and per-epoch metrics) match the unprofiled
    // sweep output exactly, while the attached stats account for every
    // popped event.
    use ndpbridge::bench::run_profiled;
    for col in [
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::O),
        Column::Host,
    ] {
        let plain = Sweeper::new(1).run(vec![SweepPoint::new("tree", col, cfg(), Scale::Tiny)]);
        let prof = run_profiled("tree", col, cfg(), Scale::Tiny);
        assert_eq!(
            prof.to_json(),
            plain[0].to_json(),
            "profiling changed result bytes for {}",
            col.label()
        );
        assert_eq!(
            prof.metrics.to_json(),
            plain[0].metrics.to_json(),
            "profiling changed metrics bytes for {}",
            col.label()
        );
        let p = prof.profile.expect("profiled run must attach stats");
        assert_eq!(p.events, prof.events, "profile lost events");
        assert!(p.batches > 0 && p.batches <= p.events);
        assert_eq!(p.run_len_hist.iter().sum::<u64>(), p.batches);
        assert!(prof.profile.is_some() && plain[0].profile.is_none());
    }
}

#[test]
fn repeating_a_sweep_in_one_process_is_bit_identical() {
    let sweeper = Sweeper::new(4);
    let first = serialize(&sweeper.run(points()));
    let second = serialize(&sweeper.run(points()));
    assert_eq!(second, first, "same-process rerun drifted");
    // And a fresh engine in the same process agrees too (no hidden
    // global state seeded by the first run).
    let fresh = serialize(&Sweeper::new(4).run(points()));
    assert_eq!(fresh, first, "fresh-engine rerun drifted");
}

#[test]
fn seed_is_the_only_source_of_variation() {
    let base = Sweeper::new(4).run(vec![SweepPoint::new(
        "ht",
        Column::Ndp(DesignPoint::O),
        cfg(),
        Scale::Tiny,
    )]);
    let mut reseeded_cfg = cfg();
    reseeded_cfg.seed ^= 0xDEAD;
    let reseeded = Sweeper::new(4).run(vec![SweepPoint::new(
        "ht",
        Column::Ndp(DesignPoint::O),
        reseeded_cfg,
        Scale::Tiny,
    )]);
    assert_ne!(
        base[0].to_json(),
        reseeded[0].to_json(),
        "different seeds should perturb the run (dataset and decisions are seeded)"
    );
}
