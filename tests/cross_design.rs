//! Cross-crate integration: every application must produce identical
//! results on every design point — communication paths and load
//! balancing change *when and where* tasks run, never *what* they
//! compute.

use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::hostonly::{HostOnly, HostOnlyConfig};
use ndpbridge::core::System;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::{build_app, Scale, APP_NAMES};

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 11;
    c
}

fn run(app_name: &str, design: DesignPoint) -> ndpbridge::core::RunResult {
    let c = cfg();
    let app = build_app(app_name, &c.geometry, Scale::Tiny, c.seed);
    System::new(c, design, app).run()
}

#[test]
fn checksums_agree_across_designs() {
    for app_name in APP_NAMES {
        let reference = run(app_name, DesignPoint::C);
        assert!(reference.tasks_executed > 0, "{app_name} did no work");
        for design in [
            DesignPoint::B,
            DesignPoint::W,
            DesignPoint::O,
            DesignPoint::R,
        ] {
            let r = run(app_name, design);
            assert_eq!(
                r.checksum, reference.checksum,
                "{app_name} result changed under {design}"
            );
        }
    }
}

#[test]
fn host_baseline_matches_ndp_results() {
    for app_name in APP_NAMES {
        let reference = run(app_name, DesignPoint::B);
        let c = cfg();
        let app = build_app(app_name, &c.geometry, Scale::Tiny, c.seed);
        let h = HostOnly::new(c, HostOnlyConfig::paper(), app).run();
        assert_eq!(
            h.checksum, reference.checksum,
            "{app_name} result differs between H and NDP"
        );
        assert!(h.tasks_executed > 0);
    }
}

#[test]
fn all_apps_complete_under_full_ndpbridge() {
    for app_name in APP_NAMES {
        let r = run(app_name, DesignPoint::O);
        assert!(r.tasks_executed > 0, "{app_name}");
        assert!(r.makespan.ticks() > 0, "{app_name}");
        assert!(r.balance > 0.0 && r.balance <= 1.0, "{app_name}");
        assert!(r.energy.total_pj() > 0.0, "{app_name}");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    for app_name in ["tree", "bfs"] {
        let a = run(app_name, DesignPoint::O);
        let b = run(app_name, DesignPoint::O);
        assert_eq!(a.makespan, b.makespan, "{app_name}");
        assert_eq!(a.events, b.events, "{app_name}");
        assert_eq!(a.messages_delivered, b.messages_delivered, "{app_name}");
        assert_eq!(a.blocks_migrated, b.blocks_migrated, "{app_name}");
        assert_eq!(a.channel_bytes, b.channel_bytes, "{app_name}");
    }
}

#[test]
fn different_seeds_change_schedules_not_results() {
    // Different seeds change the dataset too, so compare a fixed app
    // dataset under two *system* seeds by reusing the same app seed.
    let mk = |sys_seed: u64| {
        let mut c = cfg();
        c.seed = sys_seed;
        let app = build_app("spmv", &c.geometry, Scale::Tiny, 11);
        System::new(c, DesignPoint::O, app).run()
    };
    let a = mk(1);
    let b = mk(2);
    assert_eq!(a.checksum, b.checksum, "system seed must not alter results");
    assert_eq!(a.tasks_executed, b.tasks_executed);
}
