//! Windowed parallel execution equality matrix (DESIGN.md §9).
//!
//! `tests/determinism.rs` pins that shard count is observationally
//! invisible; this suite pins the stronger claim behind it: for
//! applications that opt into `parallel_commutes()`, the windowed
//! engine *actually executes windows in lanes* (it is not silently
//! falling back to the serial merge) and still produces byte-identical
//! results — summary JSON, full per-epoch metrics, and event counts —
//! at every shard count, for every bridge-communication design
//! including the gather-aware policies.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::{AuditLevel, RunResult};
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

fn cfg() -> SystemConfig {
    // 4 ranks so `--shards 4` genuinely runs 4 lanes (the queue clamps
    // shard count to the rank count).
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(4));
    c.seed = 29;
    // Debug builds default the conservation auditor on, which (by
    // design) vetoes windowed admission; turn it off so this suite
    // exercises the lanes — with debug assertions live — in tier-1.
    c.audit = AuditLevel::Off;
    c
}

/// Bridge-communication designs: the ones the windowed engine admits.
/// (C routes over the shared channel and R adds RowClone transfers;
/// both fall back to the serial merge and are covered by
/// `tests/determinism.rs`.)
const DESIGNS: [DesignPoint; 5] = [
    DesignPoint::B,
    DesignPoint::W,
    DesignPoint::O,
    DesignPoint::WGather,
    DesignPoint::OGather,
];

/// Applications that declare commutative `execute()`.
const APPS: [&str; 2] = ["bfs", "ll"];

fn points(scale: Scale) -> Vec<SweepPoint> {
    APPS.iter()
        .flat_map(|&app| {
            DESIGNS
                .iter()
                .map(move |&d| SweepPoint::new(app, Column::Ndp(d), cfg(), scale))
        })
        .collect()
}

fn serialize(results: &[RunResult]) -> Vec<(String, String)> {
    results
        .iter()
        .map(|r| (r.to_json(), r.metrics.to_json()))
        .collect()
}

fn assert_matrix(scale: Scale) {
    let serial = Sweeper::new(1).run(points(scale));
    let reference = serialize(&serial);
    let ref_events: Vec<u64> = serial.iter().map(|r| r.events).collect();
    for r in &serial {
        assert!(
            r.parallel.is_none(),
            "serial run must not report parallel stats ({}/{})",
            r.design,
            r.app
        );
    }
    // Jobs (sweep workers) × shards (lanes within one run): both axes
    // must be invisible, including to the batched same-tick dispatch
    // loop every serial and exact-merge step now routes through.
    for (shards, jobs) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2), (4, 1), (4, 2)] {
        let got = Sweeper::new(jobs).with_shards(shards).run(points(scale));
        let events: Vec<u64> = got.iter().map(|r| r.events).collect();
        assert_eq!(
            events, ref_events,
            "event count drifted at shards={shards} jobs={jobs}"
        );
        assert_eq!(
            serialize(&got),
            reference,
            "shards={shards} jobs={jobs} must be byte-identical to serial"
        );
        if shards == 1 {
            // One shard is the exact-merge path by definition: opting
            // in fast must never claim windows it did not run.
            for r in &got {
                assert!(
                    r.parallel.is_none(),
                    "shards=1 must take the serial path ({}/{})",
                    r.design,
                    r.app
                );
            }
            continue;
        }
        for r in &got {
            let p = r.parallel.unwrap_or_else(|| {
                panic!(
                    "windowed engine did not engage for {}/{} at shards={shards}",
                    r.design, r.app
                )
            });
            assert_eq!(p.shards, shards as u32, "effective shard count");
            assert!(
                p.windows > 0,
                "no parallel window executed for {}/{} at shards={shards} \
                 (windows=0, fallback steps={}): the engine silently \
                 degenerated to the serial merge",
                r.design,
                r.app,
                p.serial_fallback_steps
            );
        }
    }
}

#[test]
fn windowed_matrix_matches_serial_at_tiny() {
    assert_matrix(Scale::Tiny);
}

/// The Small tier takes tens of seconds per point in debug builds;
/// release CI runs it (`ci.sh` golden lane), tier-1 debug skips it.
#[cfg(not(debug_assertions))]
#[test]
fn windowed_matrix_matches_serial_at_small() {
    // One app × two designs keeps the release lane in the minute
    // range while still exercising million-event windows.
    let pts = |shards: Option<usize>| {
        let cols = [
            Column::Ndp(DesignPoint::W),
            Column::Ndp(DesignPoint::WGather),
        ];
        let s = Sweeper::new(1);
        let s = match shards {
            Some(n) => s.with_shards(n),
            None => s,
        };
        s.run(
            cols.iter()
                .map(|&c| SweepPoint::new("bfs", c, cfg(), Scale::Small))
                .collect(),
        )
    };
    let serial = pts(None);
    let sharded = pts(Some(4));
    assert_eq!(serialize(&sharded), serialize(&serial));
    for r in &sharded {
        let p = r.parallel.expect("windowed engine must engage at Small");
        assert!(
            p.windows > 0,
            "no window executed at Small for {}",
            r.design
        );
    }
}

/// Non-commuting applications and non-bridge designs must fall back:
/// correct results, no parallel windows claimed.
#[test]
fn non_admissible_points_fall_back_to_exact_merge() {
    let pts = vec![
        // tree does not opt into parallel_commutes().
        SweepPoint::new("tree", Column::Ndp(DesignPoint::O), cfg(), Scale::Tiny),
        // C communicates over the shared channel, not bridges.
        SweepPoint::new("bfs", Column::Ndp(DesignPoint::C), cfg(), Scale::Tiny),
    ];
    let serial = Sweeper::new(1).run(pts.clone());
    let sharded = Sweeper::new(1).with_shards(4).run(pts);
    assert_eq!(serialize(&sharded), serialize(&serial));
    for r in &sharded {
        if let Some(p) = r.parallel {
            assert_eq!(
                p.windows, 0,
                "non-admissible point {}/{} claimed parallel windows",
                r.design, r.app
            );
        }
    }
}
