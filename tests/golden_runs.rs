//! Golden-run regression tests: re-simulate a small reference
//! configuration for every design column (C/B/W/O/H/R) and diff the
//! result field-by-field against a checked-in reference document.
//!
//! Any change to scheduling, routing, timing, energy accounting or RNG
//! consumption shows up here as a precise field diff instead of a
//! mysterious downstream number shift.
//!
//! When a change *intentionally* alters simulation results, regenerate
//! the references and commit them together with the change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_runs
//! ```
//!
//! The reference documents live in `tests/golden/*.json` in the result
//! cache's codec (floats stored by bit pattern, so the comparison is
//! exact, not epsilon-based).

use std::path::PathBuf;

use ndpbridge::bench::cache::{decode_result, encode_result};
use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

/// The reference configuration: 2 ranks (128 units), fixed seed — big
/// enough to exercise cross-rank bridge traffic, small enough to run
/// all six columns in seconds.
fn reference_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    cfg.seed = 11;
    cfg
}

const APP: &str = "tree";

fn columns() -> [Column; 6] {
    [
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::O),
        Column::Host,
        Column::Ndp(DesignPoint::R),
    ]
}

/// The Small-tier suite: baseline stealing and the gather-aware policy
/// (DESIGN.md §10), pinned at the scale where the policy's measured
/// win is claimed. Kept to two columns so the release CI lane stays
/// fast; the Tiny suite above covers the other designs.
fn small_columns() -> [Column; 2] {
    [
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::WGather),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Golden file name for a column at a scale (Tiny keeps the historic
/// un-prefixed names; other scales are prefixed).
fn golden_name(scale: Scale, label: &str) -> String {
    match scale {
        Scale::Tiny => format!("{APP}_{label}"),
        _ => format!("small_{APP}_{label}"),
    }
}

fn simulate(cols: &[Column], scale: Scale) -> Vec<RunResult> {
    let points = cols
        .iter()
        .map(|&col| SweepPoint::new(APP, col, reference_cfg(), scale))
        .collect();
    // Through the production sweep path, bounded to two workers.
    Sweeper::new(2).run(points)
}

/// Compares every scalar field, returning human-readable mismatch
/// lines; empty = identical. Floats compare by bit pattern.
fn diff_fields(golden: &RunResult, fresh: &RunResult) -> Vec<String> {
    let mut d = Vec::new();
    macro_rules! cmp {
        ($field:ident) => {
            if golden.$field != fresh.$field {
                d.push(format!(
                    "{}: golden {:?} != fresh {:?}",
                    stringify!($field),
                    golden.$field,
                    fresh.$field
                ));
            }
        };
    }
    macro_rules! cmp_f64 {
        ($($path:tt)+) => {
            if golden.$($path)+.to_bits() != fresh.$($path)+.to_bits() {
                d.push(format!(
                    "{}: golden {:?} != fresh {:?}",
                    stringify!($($path)+),
                    golden.$($path)+,
                    fresh.$($path)+
                ));
            }
        };
    }
    cmp!(app);
    cmp!(design);
    cmp!(makespan);
    cmp!(avg_unit_time);
    cmp!(max_unit_time);
    cmp_f64!(wait_fraction);
    cmp_f64!(balance);
    cmp!(tasks_executed);
    cmp!(tasks_rerouted);
    cmp!(messages_delivered);
    cmp!(rank_bus_bytes);
    cmp!(channel_bytes);
    cmp!(comm_dram_bytes);
    cmp!(local_dram_bytes);
    cmp!(lb_rounds);
    cmp!(blocks_migrated);
    cmp_f64!(energy.core_sram_pj);
    cmp_f64!(energy.dram_local_pj);
    cmp_f64!(energy.dram_comm_pj);
    cmp_f64!(energy.static_pj);
    cmp!(checksum);
    cmp!(events);
    cmp!(per_unit_busy);
    cmp!(metrics);
    d
}

/// Runs one suite and returns human-readable failures (empty = clean).
/// With `UPDATE_GOLDEN=1`, rewrites the reference documents instead.
fn check_suite(cols: &[Column], scale: Scale) -> Vec<String> {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
    let results = simulate(cols, scale);
    let mut failures = Vec::new();
    for (col, fresh) in cols.iter().zip(&results) {
        let label = col.label();
        let path = golden_path(&golden_name(scale, &label));
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, encode_result(fresh)).unwrap();
            eprintln!("updated {}", path.display());
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden reference {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test golden_runs",
                path.display()
            )
        });
        let golden = decode_result(&text)
            .unwrap_or_else(|| panic!("undecodable golden reference {}", path.display()));
        let diffs = diff_fields(&golden, fresh);
        if !diffs.is_empty() {
            failures.push(format!("design {label}:\n  {}", diffs.join("\n  ")));
        }
        // The codec itself must also be byte-stable: re-encoding the
        // fresh result reproduces the committed document exactly.
        if diffs.is_empty() && encode_result(fresh) != text {
            failures.push(format!(
                "design {label}: fields match but serialized form differs (codec drift)"
            ));
        }
    }
    failures
}

#[test]
fn designs_match_golden_references() {
    let failures = check_suite(&columns(), Scale::Tiny);
    assert!(
        failures.is_empty(),
        "simulation drift vs tests/golden (if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_runs and commit):\n{}",
        failures.join("\n")
    );
}

#[test]
fn small_tier_designs_match_golden_references() {
    // Small runs are ~12x Tiny; keep them out of the debug tier-1 lane
    // (ci.sh covers them in release). UPDATE_GOLDEN regeneration also
    // happens in release for the same reason.
    if cfg!(debug_assertions) {
        return;
    }
    let failures = check_suite(&small_columns(), Scale::Small);
    assert!(
        failures.is_empty(),
        "Small-tier simulation drift vs tests/golden (if intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --release --test golden_runs and commit):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_references_are_exact_roundtrips() {
    // Guard the guard: every committed document must decode and
    // re-encode to the identical byte string.
    let mut names: Vec<String> = columns()
        .iter()
        .map(|c| golden_name(Scale::Tiny, &c.label()))
        .collect();
    names.extend(
        small_columns()
            .iter()
            .map(|c| golden_name(Scale::Small, &c.label())),
    );
    for name in names {
        let path = golden_path(&name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            // The suite tests report missing files.
            continue;
        };
        let decoded = decode_result(&text).expect("golden decodes");
        assert_eq!(
            encode_result(&decoded),
            text,
            "{} does not round-trip",
            path.display()
        );
    }
}
