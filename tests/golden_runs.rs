//! Golden-run regression tests: re-simulate a small reference
//! configuration for every design column (C/B/W/O/H/R) and diff the
//! result field-by-field against a checked-in reference document.
//!
//! Any change to scheduling, routing, timing, energy accounting or RNG
//! consumption shows up here as a precise field diff instead of a
//! mysterious downstream number shift.
//!
//! When a change *intentionally* alters simulation results, regenerate
//! the references and commit them together with the change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_runs
//! ```
//!
//! The reference documents live in `tests/golden/*.json` in the result
//! cache's codec (floats stored by bit pattern, so the comparison is
//! exact, not epsilon-based).

use std::path::PathBuf;

use ndpbridge::bench::cache::{decode_result, encode_result};
use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

/// The reference configuration: 2 ranks (128 units), fixed seed — big
/// enough to exercise cross-rank bridge traffic, small enough to run
/// all six columns in seconds.
fn reference_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    cfg.seed = 11;
    cfg
}

const APP: &str = "tree";

fn columns() -> [Column; 6] {
    [
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::O),
        Column::Host,
        Column::Ndp(DesignPoint::R),
    ]
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{APP}_{label}.json"))
}

fn simulate_all() -> Vec<RunResult> {
    let points = columns()
        .iter()
        .map(|&col| SweepPoint::new(APP, col, reference_cfg(), Scale::Tiny))
        .collect();
    // Through the production sweep path, bounded to two workers.
    Sweeper::new(2).run(points)
}

/// Compares every scalar field, returning human-readable mismatch
/// lines; empty = identical. Floats compare by bit pattern.
fn diff_fields(golden: &RunResult, fresh: &RunResult) -> Vec<String> {
    let mut d = Vec::new();
    macro_rules! cmp {
        ($field:ident) => {
            if golden.$field != fresh.$field {
                d.push(format!(
                    "{}: golden {:?} != fresh {:?}",
                    stringify!($field),
                    golden.$field,
                    fresh.$field
                ));
            }
        };
    }
    macro_rules! cmp_f64 {
        ($($path:tt)+) => {
            if golden.$($path)+.to_bits() != fresh.$($path)+.to_bits() {
                d.push(format!(
                    "{}: golden {:?} != fresh {:?}",
                    stringify!($($path)+),
                    golden.$($path)+,
                    fresh.$($path)+
                ));
            }
        };
    }
    cmp!(app);
    cmp!(design);
    cmp!(makespan);
    cmp!(avg_unit_time);
    cmp!(max_unit_time);
    cmp_f64!(wait_fraction);
    cmp_f64!(balance);
    cmp!(tasks_executed);
    cmp!(tasks_rerouted);
    cmp!(messages_delivered);
    cmp!(rank_bus_bytes);
    cmp!(channel_bytes);
    cmp!(comm_dram_bytes);
    cmp!(local_dram_bytes);
    cmp!(lb_rounds);
    cmp!(blocks_migrated);
    cmp_f64!(energy.core_sram_pj);
    cmp_f64!(energy.dram_local_pj);
    cmp_f64!(energy.dram_comm_pj);
    cmp_f64!(energy.static_pj);
    cmp!(checksum);
    cmp!(events);
    cmp!(per_unit_busy);
    cmp!(metrics);
    d
}

#[test]
fn designs_match_golden_references() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
    let results = simulate_all();
    let mut failures = Vec::new();
    for (col, fresh) in columns().iter().zip(&results) {
        let label = col.label();
        let path = golden_path(&label);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, encode_result(fresh)).unwrap();
            eprintln!("updated {}", path.display());
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden reference {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test golden_runs",
                path.display()
            )
        });
        let golden = decode_result(&text)
            .unwrap_or_else(|| panic!("undecodable golden reference {}", path.display()));
        let diffs = diff_fields(&golden, fresh);
        if !diffs.is_empty() {
            failures.push(format!("design {label}:\n  {}", diffs.join("\n  ")));
        }
        // The codec itself must also be byte-stable: re-encoding the
        // fresh result reproduces the committed document exactly.
        if diffs.is_empty() && encode_result(fresh) != text {
            failures.push(format!(
                "design {label}: fields match but serialized form differs (codec drift)"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "simulation drift vs tests/golden (if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_runs and commit):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_references_are_exact_roundtrips() {
    // Guard the guard: every committed document must decode and
    // re-encode to the identical byte string.
    for col in columns() {
        let path = golden_path(&col.label());
        let Ok(text) = std::fs::read_to_string(&path) else {
            // `designs_match_golden_references` reports missing files.
            continue;
        };
        let decoded = decode_result(&text).expect("golden decodes");
        assert_eq!(
            encode_result(&decoded),
            text,
            "{} does not round-trip",
            path.display()
        );
    }
}
