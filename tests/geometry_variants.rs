//! Integration: the system must work across the geometry variants the
//! paper evaluates (Figures 12 and 15, split DIMM buffers), and the
//! sweep knobs of Figure 16 must be runnable.

use ndpbridge::core::config::{SystemConfig, TriggerPolicy};
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::System;
use ndpbridge::dram::Geometry;
use ndpbridge::sketch::SketchConfig;
use ndpbridge::workloads::{build_app, Scale};

fn run_with(cfg: SystemConfig, design: DesignPoint, app_name: &str) -> ndpbridge::core::RunResult {
    let app = build_app(app_name, &cfg.geometry, Scale::Tiny, 13);
    System::new(cfg, design, app).run()
}

#[test]
fn scales_from_64_to_1024_units() {
    for ranks in [1u32, 4, 16] {
        let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(ranks));
        cfg.seed = 13;
        let r = run_with(cfg, DesignPoint::O, "spmv");
        assert!(r.tasks_executed > 0, "{ranks} ranks");
        // Dataset size scales with units, so checksums differ across
        // geometries; within one geometry the run must be stable.
        if ranks == 1 {
            let again = {
                let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(1));
                cfg.seed = 13;
                run_with(cfg, DesignPoint::O, "spmv")
            };
            assert_eq!(again.checksum, r.checksum);
        }
    }
}

#[test]
fn dq_width_variants_run_and_keep_results() {
    let mut sums = Vec::new();
    for dq in [4u32, 8, 16] {
        let mut cfg = SystemConfig::with_geometry(Geometry::with_dq_bits(dq));
        cfg.seed = 13;
        let r = run_with(cfg, DesignPoint::B, "tree");
        assert!(r.tasks_executed > 0, "x{dq}");
        sums.push((dq, r.makespan));
    }
    // Narrower chips mean slower unit<->bridge transfer per chip but
    // more units; all variants must at least complete.
    assert_eq!(sums.len(), 3);
}

#[test]
fn split_dimm_buffer_is_slower_than_unified() {
    let mk = |geom: Geometry| {
        let mut cfg = SystemConfig::with_geometry(geom);
        cfg.seed = 13;
        run_with(cfg, DesignPoint::O, "tree")
    };
    let unified = mk(Geometry::table1());
    let split = mk(Geometry::split_dimm_buffer());
    assert_eq!(unified.checksum, split.checksum);
    assert!(
        split.makespan >= unified.makespan,
        "losing DQ pins to C/A cannot speed things up: {} vs {}",
        split.makespan,
        unified.makespan
    );
}

#[test]
fn trigger_policies_complete_and_dynamic_wastes_least() {
    let mut comm = Vec::new();
    for pol in [
        TriggerPolicy::Dynamic,
        TriggerPolicy::FixedIMin,
        TriggerPolicy::Fixed2IMin,
    ] {
        let mut cfg = SystemConfig::table1();
        cfg.seed = 13;
        cfg.trigger = pol;
        let r = run_with(cfg, DesignPoint::B, "tree");
        assert!(r.tasks_executed > 0);
        comm.push((pol, r.comm_dram_bytes));
    }
    // Fixed I_min polls every bank every round: strictly more comm DRAM
    // traffic than the dynamic trigger.
    assert!(
        comm[1].1 > comm[0].1,
        "fixed I_min ({}) must out-traffic dynamic ({})",
        comm[1].1,
        comm[0].1
    );
}

#[test]
fn config_sweep_knobs_run() {
    // G_xfer and metadata scale (Figure 16a).
    for gx in [64u32, 1024] {
        let mut cfg = SystemConfig::table1().scale_metadata(0.25);
        cfg.g_xfer = gx;
        cfg.seed = 13;
        let r = run_with(cfg, DesignPoint::O, "spmv");
        assert!(r.tasks_executed > 0, "G_xfer {gx}");
    }
    // Sketch geometry (Figure 16c/d).
    for (b, e) in [(4, 16), (16, 4), (32, 32)] {
        let mut cfg = SystemConfig::table1();
        cfg.sketch = SketchConfig::with_geometry(b, e);
        cfg.seed = 13;
        let r = run_with(cfg, DesignPoint::O, "ll");
        assert!(r.tasks_executed > 0, "sketch {b}x{e}");
    }
    // I_state (Figure 16b).
    for i_state in [500u64, 8000] {
        let mut cfg = SystemConfig::table1();
        cfg.i_state_cycles = i_state;
        cfg.seed = 13;
        let r = run_with(cfg, DesignPoint::O, "ht");
        assert!(r.tasks_executed > 0, "I_state {i_state}");
    }
}
