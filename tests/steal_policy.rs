//! Property suite for the gather-cost-aware steal planner
//! (`ndpb_core::steal`, DESIGN.md §10).
//!
//! The planner is pure, so it can be driven against seeded random
//! candidate sets and checked against a reference implementation:
//!
//! * the picked batch never exceeds the per-round byte budget (with
//!   task-only forwards exempt — their mail is paid by the reroute
//!   path regardless);
//! * picks match a reference planner that repeatedly scans for the
//!   best-ranked affordable candidate (greedy-by-sort == repeated
//!   argmax, because budgets only shrink);
//! * no picked candidate is ranked strictly worse than a skipped one
//!   that would still have fit both budgets at that point.

use ndpbridge::core::steal::{plan_steal, ranks_better, steal_byte_budget, StealCandidate};
use ndpbridge::sim::SimRng;

/// Random candidate set: a mix of task-only forwards (no data bytes),
/// sketch-hot blocks, and plain blocks, with workloads spanning from
/// trivial to far above `W_th`.
fn random_candidates(rng: &mut SimRng, n: usize) -> Vec<StealCandidate> {
    (0..n)
        .map(|i| {
            let task_only = rng.next_below(4) == 0;
            StealCandidate {
                key: i as u64,
                workload: rng.next_below(400),
                task_bytes: 8 + rng.next_below(120),
                data_bytes: if task_only { 0 } else { 306 },
                hot: rng.next_below(3) == 0,
            }
        })
        .collect()
}

/// Reference planner: repeatedly scan the whole candidate list for the
/// best-ranked candidate that still fits both budgets, pick it, and
/// repeat. Quadratic but obviously correct.
fn reference_plan(cands: &[StealCandidate], wl_budget: u64, byte_budget: u64) -> Vec<usize> {
    let mut picked = Vec::new();
    let mut taken = vec![false; cands.len()];
    let mut wl = 0u64;
    let mut bytes = 0u64;
    loop {
        if wl >= wl_budget {
            break;
        }
        let mut best: Option<usize> = None;
        for (i, c) in cands.iter().enumerate() {
            if taken[i] || c.workload == 0 {
                continue;
            }
            // Task-only candidates are byte-budget-exempt.
            if c.data_bytes != 0 && bytes.checked_add(c.bytes()).is_none_or(|b| b > byte_budget) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if ranks_better(c, &cands[b]) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(i) = best else { break };
        taken[i] = true;
        wl += cands[i].workload;
        if cands[i].data_bytes != 0 {
            bytes += cands[i].bytes();
        }
        picked.push(i);
    }
    picked
}

/// Total data-carrying bytes of a pick set (what the budget rations).
fn data_bytes_of(cands: &[StealCandidate], picks: &[usize]) -> u64 {
    picks
        .iter()
        .filter(|&&i| cands[i].data_bytes != 0)
        .map(|&i| cands[i].bytes())
        .sum()
}

#[test]
fn planner_never_exceeds_the_byte_budget() {
    let mut rng = SimRng::new(0xB0B);
    for trial in 0..200 {
        let n = 1 + rng.next_index(24);
        let cands = random_candidates(&mut rng, n);
        let wl_budget = 1 + rng.next_below(2000);
        let byte_budget = rng.next_below(4000);
        let picks = plan_steal(&cands, wl_budget, byte_budget);
        let spent = data_bytes_of(&cands, &picks);
        assert!(
            spent <= byte_budget,
            "trial {trial}: spent {spent} bytes over budget {byte_budget}"
        );
        // Picks are unique indices.
        let mut seen = picks.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), picks.len(), "trial {trial}: duplicate picks");
    }
}

#[test]
fn planner_matches_the_reference_scan() {
    let mut rng = SimRng::new(0xCAFE);
    for trial in 0..200 {
        let n = 1 + rng.next_index(24);
        let cands = random_candidates(&mut rng, n);
        let wl_budget = 1 + rng.next_below(2000);
        let byte_budget = rng.next_below(4000);
        let fast = plan_steal(&cands, wl_budget, byte_budget);
        let slow = reference_plan(&cands, wl_budget, byte_budget);
        assert_eq!(
            fast, slow,
            "trial {trial}: planner diverged from the reference scan\ncands: {cands:?}\nwl_budget {wl_budget} byte_budget {byte_budget}"
        );
    }
}

#[test]
fn no_pick_is_ranked_strictly_worse_than_an_affordable_skip() {
    let mut rng = SimRng::new(0xDEAD);
    for trial in 0..200 {
        let n = 2 + rng.next_index(24);
        let cands = random_candidates(&mut rng, n);
        let wl_budget = 1 + rng.next_below(2000);
        let byte_budget = rng.next_below(4000);
        let picks = plan_steal(&cands, wl_budget, byte_budget);
        let picked: Vec<bool> = {
            let mut v = vec![false; cands.len()];
            for &i in &picks {
                v[i] = true;
            }
            v
        };
        // Replay the batch: at every pick, any *skipped* candidate that
        // ranks strictly better must have been unaffordable right then
        // (otherwise the planner chose a strictly worse task).
        let mut bytes = 0u64;
        for &i in &picks {
            for (j, other) in cands.iter().enumerate() {
                if picked[j] || other.workload == 0 {
                    continue;
                }
                if ranks_better(other, &cands[i]) {
                    let affordable = other.data_bytes == 0 || bytes + other.bytes() <= byte_budget;
                    assert!(
                        !affordable,
                        "trial {trial}: picked #{i} {:?} while affordable, strictly \
                         better #{j} {:?} was skipped",
                        cands[i], other
                    );
                }
            }
            if cands[i].data_bytes != 0 {
                bytes += cands[i].bytes();
            }
        }
    }
}

#[test]
fn byte_budget_scales_with_the_workload_budget() {
    // The W_th inversion: every W_th of stolen workload buys
    // budget_gxfer * g_xfer bytes, with a one-round floor.
    for w_th in [1u64, 13, 52, 500] {
        for wl in [0u64, 1, 51, 52, 53, 1000] {
            let b = steal_byte_budget(wl, w_th, 256, 2);
            assert!(b >= 512, "one round is always granted");
            assert_eq!(b % 512, 0, "whole G_xfer rounds only");
            let rounds = wl.max(1).div_ceil(w_th.max(1));
            assert_eq!(b, (rounds * 512).max(512));
        }
    }
}
