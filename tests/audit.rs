//! End-to-end conservation audit over the golden-run reference
//! configuration: every design column, fully audited, at two worker
//! counts.
//!
//! The auditor (`ndpbridge::core::audit`, enforced inside
//! `System::run`) re-derives the system's conservation laws from
//! independent state at every epoch boundary and at end of run:
//!
//! * messages scheduled = delivered + in-flight across every hop
//!   (unit mailboxes, bridge buffers, host buffers, queued events);
//! * `toArrive` counters at both bridge and host level equal the
//!   scanned in-flight scheduled workload;
//! * the two-level inclusive `dataBorrowed` tables mirror the `isLent`
//!   bitmaps exactly (no orphans, no stale entries, rank ⊆ host);
//! * the per-cause traffic ledger sums to the system byte totals;
//! * bus busy time never exceeds wall time.
//!
//! A single violated law panics the simulation with the full violation
//! list, so these tests assert zero violations simply by completing.
//! `System`-level unit tests prove the same machinery *does* trip on
//! deliberately corrupted state (see `audit_trips_on_*` in
//! `crates/core/src/system.rs`), so a green run here is meaningful.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::audit::AuditLevel;
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::Scale;

/// The golden-run reference configuration (2 ranks, seed 11) with the
/// auditor forced to `Full` — explicit, so the checks run in release
/// builds too (where the config default is `Off`).
fn audited_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    cfg.seed = 11;
    cfg.audit = AuditLevel::Full;
    cfg
}

const APP: &str = "tree";

fn columns() -> [Column; 10] {
    [
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::O),
        Column::Host,
        Column::Ndp(DesignPoint::R),
        // Gather-aware variants: steals can be rate-limited, deferred
        // past the byte budget, or forwarded task-only — the ledger
        // and toArrive conservation laws must hold through all of it.
        Column::Ndp(DesignPoint::WByte),
        Column::Ndp(DesignPoint::WLent),
        Column::Ndp(DesignPoint::WGather),
        Column::Ndp(DesignPoint::OGather),
    ]
}

fn run_audited(jobs: usize) -> Vec<RunResult> {
    let points = columns()
        .iter()
        .map(|&col| SweepPoint::new(APP, col, audited_cfg(), Scale::Tiny))
        .collect();
    Sweeper::new(jobs).run(points)
}

#[test]
fn all_designs_pass_full_audit_at_jobs_1_and_8() {
    // Any conservation violation panics inside the worker and the
    // sweeper propagates it, so reaching the comparisons below means
    // every epoch of every design audited clean at both worker counts.
    let serial = run_audited(1);
    let parallel = run_audited(8);
    for ((col, a), b) in columns().iter().zip(&serial).zip(&parallel) {
        assert!(a.tasks_executed > 0, "{}: no work done", col.label());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: audited results must not depend on worker count",
            col.label()
        );
    }
}

#[test]
fn audit_level_does_not_change_results() {
    // The auditor is purely observational: a `Full` sweep and an `Off`
    // sweep must be bit-identical, field for field.
    let audited = run_audited(2);
    let plain_points = columns()
        .iter()
        .map(|&col| {
            let mut cfg = audited_cfg();
            cfg.audit = AuditLevel::Off;
            SweepPoint::new(APP, col, cfg, Scale::Tiny)
        })
        .collect();
    let plain = Sweeper::new(2).run(plain_points);
    for ((col, a), p) in columns().iter().zip(&audited).zip(&plain) {
        assert_eq!(a.makespan, p.makespan, "{}: makespan drift", col.label());
        assert_eq!(a.checksum, p.checksum, "{}: checksum drift", col.label());
        assert_eq!(a.events, p.events, "{}: event-count drift", col.label());
        assert_eq!(
            a.comm_dram_bytes,
            p.comm_dram_bytes,
            "{}: traffic drift",
            col.label()
        );
    }
}

#[test]
fn ledger_rows_sum_to_system_totals_for_every_design() {
    // The same identity the auditor enforces at every epoch, re-checked
    // here from the outside against the final metrics report — the
    // ledger is the public interface, so pin it publicly too.
    const COMM_ROWS: [&str; 10] = [
        "ledger/comm/taskq",
        "ledger/comm/rowclone",
        "ledger/comm/mail_task",
        "ledger/comm/mail_sched",
        "ledger/comm/mail_data",
        "ledger/comm/mail_return",
        "ledger/comm/gather",
        "ledger/comm/scatter",
        "ledger/comm/host_gather",
        "ledger/comm/host_scatter",
    ];
    for r in run_audited(4) {
        if r.design == "H" {
            continue; // the host-only baseline has no ledger metrics
        }
        let total: u64 = COMM_ROWS
            .iter()
            .filter_map(|n| r.metrics.final_value(n))
            .sum();
        assert_eq!(
            total, r.comm_dram_bytes,
            "{}/{}: ledger rows must sum to comm_dram_bytes",
            r.app, r.design
        );
    }
}
