//! Cross-design invariants on a reduced Table-I configuration.
//!
//! These pin *semantic* relationships between the design points, where
//! the golden tests pin exact numbers: orderings on geomean makespan,
//! the internal consistency of the energy breakdown, and the busy-time
//! statistics every run must satisfy.
//!
//! On design ordering, this reproduction shows (geomean over all eight
//! applications, reduced 4-rank geometry, audited data-movement
//! accounting):
//!
//! ```text
//! B 138881  <  O 164019  <  W 180193  <  C 204209   (geomean ticks)
//! ```
//!
//! * **C is the slowest design** — host-forwarded communication with no
//!   load balancing loses to every bridge variant;
//! * **O is strictly faster than W** — the hierarchical
//!   data-transfer-aware balancer beats naive work stealing.
//!
//! The paper's full chain C < B < W ≤ O (Figure 10 speedups: B 1.51x,
//! W 2.23x, O 2.98x) still does **not** fully reproduce at reduced
//! scale, even after the toArrive accounting fix (the host-level
//! counter now tracks intra-rank in-flight workload, so cross-rank
//! stealing no longer targets ranks that merely *look* idle): W's
//! naive stealing underperforms B on geomean here. The per-cause
//! traffic ledger (`repro audit`) attributes the gap to gather traffic
//! — W moves ~22x B's gather bytes at this scale (mailbox and scatter
//! ~11.5x each), i.e. the stealing itself, not mis-charged accounting,
//! is the cost. The paper itself notes W can hurt (e.g. on tree); see
//! the fidelity item in ROADMAP.md for the measured breakdown.
//!
//! The ordering test pins the *whole measured chain*. If a future
//! change legitimately shifts it (e.g. an LB improvement lifting O past
//! B), update the pinned chain and the numbers above together with
//! that change, like a golden file.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::result::geomean;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::{Scale, APP_NAMES};

/// Reduced Table-I config: 4 ranks (256 units), fixed seed.
fn reduced_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(4));
    cfg.seed = 11;
    cfg
}

const DESIGNS: [DesignPoint; 4] = [
    DesignPoint::C,
    DesignPoint::B,
    DesignPoint::W,
    DesignPoint::O,
];

/// All designs × all apps through the sweep engine; `[design][app]`.
/// Simulated once and shared across the test functions (the harness
/// runs them in threads of one process).
fn run_all() -> &'static Vec<Vec<RunResult>> {
    static ALL: std::sync::OnceLock<Vec<Vec<RunResult>>> = std::sync::OnceLock::new();
    ALL.get_or_init(|| {
        let points = DESIGNS
            .iter()
            .flat_map(|&d| {
                APP_NAMES.iter().map(move |&app| {
                    SweepPoint::new(app, Column::Ndp(d), reduced_cfg(), Scale::Tiny)
                })
            })
            .collect();
        let mut flat = Sweeper::new(8).run(points).into_iter();
        DESIGNS
            .iter()
            .map(|_| flat.by_ref().take(APP_NAMES.len()).collect())
            .collect()
    })
}

fn geomean_makespan(row: &[RunResult]) -> f64 {
    geomean(
        &row.iter()
            .map(|r| r.makespan.ticks() as f64)
            .collect::<Vec<_>>(),
    )
}

#[test]
fn design_ordering_on_geomean_makespan() {
    let m = run_all();
    let [c, b, w, o] = [
        geomean_makespan(&m[0]),
        geomean_makespan(&m[1]),
        geomean_makespan(&m[2]),
        geomean_makespan(&m[3]),
    ];
    // The measured chain (see module docs): B < O < W < C, geomeans
    // 138881 / 164019 / 180193 / 204209 at the time of pinning. Each
    // assertion message carries the live geomeans so a failure shows
    // exactly which link moved and by how much.
    assert!(
        b < c,
        "bridge communication must beat host forwarding: B {b:.0} !< C {c:.0}"
    );
    assert!(
        w < c,
        "work stealing over bridges must beat plain C: W {w:.0} !< C {c:.0}"
    );
    assert!(
        o < c,
        "the full design must beat plain C: O {o:.0} !< C {c:.0}"
    );
    assert!(
        o < w,
        "data-transfer-aware LB must beat naive stealing: O {o:.0} !< W {w:.0} \
         (chain C={c:.0} B={b:.0} W={w:.0} O={o:.0})"
    );
    assert!(
        b < o,
        "at reduced scale naive stealing's gather traffic still outweighs its \
         balance gains, so B leads the chain: B {b:.0} !< O {o:.0} \
         (chain C={c:.0} B={b:.0} W={w:.0} O={o:.0}; if an LB improvement \
         legitimately lifted O past B, update the pinned chain in this file)"
    );
}

#[test]
fn energy_breakdown_is_internally_consistent() {
    for row in run_all() {
        for r in row {
            let e = &r.energy;
            for (name, v) in [
                ("core_sram", e.core_sram_pj),
                ("dram_local", e.dram_local_pj),
                ("dram_comm", e.dram_comm_pj),
                ("static", e.static_pj),
            ] {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "{}/{}: {name} energy {v} out of range",
                    r.app,
                    r.design
                );
            }
            let sum = e.core_sram_pj + e.dram_local_pj + e.dram_comm_pj + e.static_pj;
            assert_eq!(
                sum.to_bits(),
                e.total_pj().to_bits(),
                "{}/{}: components must sum to total",
                r.app,
                r.design
            );
            assert!(e.total_pj() > 0.0, "{}/{}: zero energy", r.app, r.design);
            let fsum: f64 = e.fractions().iter().sum();
            assert!(
                (fsum - 1.0).abs() < 1e-9,
                "{}/{}: fractions sum to {fsum}",
                r.app,
                r.design
            );
        }
    }
}

#[test]
fn busy_time_statistics_are_consistent() {
    for row in run_all() {
        for r in row {
            let ctx = format!("{}/{}", r.app, r.design);
            assert!(
                r.max_unit_time >= r.avg_unit_time,
                "{ctx}: max < avg busy time"
            );
            assert!(
                r.makespan >= r.max_unit_time,
                "{ctx}: a unit was busy past the makespan"
            );
            assert_eq!(
                r.per_unit_busy.iter().copied().max().unwrap_or(0),
                r.max_unit_time.ticks(),
                "{ctx}: max_unit_time must be the max of per_unit_busy"
            );
            let mean =
                r.per_unit_busy.iter().sum::<u64>() as f64 / r.per_unit_busy.len().max(1) as f64;
            assert!(
                (mean - r.avg_unit_time.ticks() as f64).abs() <= 1.0,
                "{ctx}: avg_unit_time {} disagrees with per_unit_busy mean {mean}",
                r.avg_unit_time.ticks()
            );
            assert!(
                (0.0..=1.0).contains(&r.wait_fraction),
                "{ctx}: wait_fraction {}",
                r.wait_fraction
            );
            assert!(
                r.balance > 0.0 && r.balance <= 1.0,
                "{ctx}: balance {}",
                r.balance
            );
            assert!(r.tasks_executed > 0, "{ctx}: no work done");
        }
    }
}

#[test]
fn checksums_agree_across_designs() {
    // Scheduling and migration change *where* tasks run, never the
    // application-level result.
    let m = run_all();
    for (i, app) in APP_NAMES.iter().enumerate() {
        let reference = m[0][i].checksum;
        for row in m {
            assert_eq!(
                row[i].checksum, reference,
                "{app}: checksum diverged across designs"
            );
        }
    }
}
