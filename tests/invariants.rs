//! Cross-design invariants on a reduced Table-I configuration.
//!
//! These pin *semantic* relationships between the design points, where
//! the golden tests pin exact numbers: orderings on geomean makespan,
//! gather-traffic ratios, the internal consistency of the energy
//! breakdown, and the busy-time statistics every run must satisfy.
//!
//! Orderings are pinned per **tier** in the `TIERS` table below, keyed
//! by (scale, design chain). Each tier lists its designs fastest →
//! slowest on geomean makespan as last measured, so a legitimate
//! ordering flip re-pins as a one-line reorder of that tier's `chain`
//! (update the measured geomeans in the comment alongside). The
//! re-pin procedure is documented in EXPERIMENTS.md ("Re-pinning the
//! ordering invariants").
//!
//! Measured chains (geomean ticks over all eight applications, reduced
//! 4-rank geometry, seed 11):
//!
//! ```text
//! Tiny :  B 138881 < W+GA 149502 < O 164019 < W 180193 < C 204209
//! Small:  W+GA 813720 < O 866440 < B 1043613 < W 1214844 < C 1496095
//! ```
//!
//! * **C is the slowest design at every tier** — host-forwarded
//!   communication with no load balancing loses to every bridge
//!   variant;
//! * **O is strictly faster than W** — the hierarchical
//!   data-transfer-aware balancer beats naive work stealing;
//! * **W+GA (gather-cost-aware stealing, DESIGN.md §10) closes the
//!   Fig 10 ordering at Small scale**: the paper's claim that load
//!   balancing beats plain bridges reproduces once steals are
//!   byte-budgeted — W+GA and O both drop below B, leaving only naive
//!   W above it. At Tiny scale the problem is still too small for
//!   *any* balancer to beat B, matching the paper's own caveat that
//!   W can hurt (e.g. on tree);
//! * **W+GA moves ≥2x fewer gather bytes than W at both tiers** (6.6x
//!   at Tiny, 2.4x at Small, geomean over apps) with strictly better
//!   geomean makespan — the tentpole acceptance bar, pinned here.

use ndpbridge::bench::{Column, SweepPoint, Sweeper};
use ndpbridge::core::config::SystemConfig;
use ndpbridge::core::design::DesignPoint;
use ndpbridge::core::result::geomean;
use ndpbridge::core::RunResult;
use ndpbridge::dram::Geometry;
use ndpbridge::workloads::{Scale, APP_NAMES};

/// Reduced Table-I config: 4 ranks (256 units), fixed seed.
fn reduced_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(4));
    cfg.seed = 11;
    cfg
}

/// One measured tier: a scale plus its pinned makespan ordering.
struct Tier {
    name: &'static str,
    scale: Scale,
    /// Designs fastest → slowest on geomean makespan, as measured at
    /// pin time (geomeans in the module docs). Re-pinning after a
    /// legitimate flip = reordering this list.
    chain: &'static [DesignPoint],
    /// Small-scale runs are ~12x Tiny; keep them out of debug builds
    /// (the tier-1 `cargo test` lane) and let release CI cover them.
    release_only: bool,
}

const TIERS: &[Tier] = &[
    Tier {
        name: "tiny",
        scale: Scale::Tiny,
        chain: &[
            DesignPoint::B,
            DesignPoint::WGather,
            DesignPoint::O,
            DesignPoint::W,
            DesignPoint::C,
        ],
        release_only: false,
    },
    Tier {
        name: "small",
        scale: Scale::Small,
        chain: &[
            DesignPoint::WGather,
            DesignPoint::O,
            DesignPoint::B,
            DesignPoint::W,
            DesignPoint::C,
        ],
        release_only: true,
    },
];

/// All of a tier's designs × all apps through the sweep engine;
/// `[design][app]`, rows in `chain` order. Simulated once per tier and
/// shared across the test functions (the harness runs them in threads
/// of one process).
fn run_tier(tier: &Tier) -> Vec<Vec<RunResult>> {
    let points = tier
        .chain
        .iter()
        .flat_map(|&d| {
            APP_NAMES
                .iter()
                .map(move |&app| SweepPoint::new(app, Column::Ndp(d), reduced_cfg(), tier.scale))
        })
        .collect();
    let mut flat = Sweeper::new(8).run(points).into_iter();
    tier.chain
        .iter()
        .map(|_| flat.by_ref().take(APP_NAMES.len()).collect())
        .collect()
}

fn tiny_runs() -> &'static Vec<Vec<RunResult>> {
    static ALL: std::sync::OnceLock<Vec<Vec<RunResult>>> = std::sync::OnceLock::new();
    ALL.get_or_init(|| run_tier(&TIERS[0]))
}

fn small_runs() -> &'static Vec<Vec<RunResult>> {
    static ALL: std::sync::OnceLock<Vec<Vec<RunResult>>> = std::sync::OnceLock::new();
    ALL.get_or_init(|| run_tier(&TIERS[1]))
}

fn runs_for(tier: &Tier) -> &'static Vec<Vec<RunResult>> {
    match tier.name {
        "tiny" => tiny_runs(),
        "small" => small_runs(),
        other => panic!("unknown tier {other}"),
    }
}

fn geomean_makespan(row: &[RunResult]) -> f64 {
    geomean(
        &row.iter()
            .map(|r| r.makespan.ticks() as f64)
            .collect::<Vec<_>>(),
    )
}

/// Geomean `ledger/comm/gather` bytes over a design's apps (the row is
/// always registered, audit on or off; zero-traffic apps clamp to 1).
fn geomean_gather(row: &[RunResult]) -> f64 {
    geomean(
        &row.iter()
            .map(|r| {
                r.metrics
                    .final_value("ledger/comm/gather")
                    .unwrap_or(0)
                    .max(1) as f64
            })
            .collect::<Vec<_>>(),
    )
}

fn design_row<'a>(tier: &Tier, rows: &'a [Vec<RunResult>], d: DesignPoint) -> &'a [RunResult] {
    let i = tier
        .chain
        .iter()
        .position(|&c| c == d)
        .unwrap_or_else(|| panic!("{d} not in tier {}", tier.name));
    &rows[i]
}

#[test]
fn design_ordering_on_geomean_makespan() {
    for tier in TIERS {
        if tier.release_only && cfg!(debug_assertions) {
            continue;
        }
        let rows = runs_for(tier);
        let geomeans: Vec<(DesignPoint, f64)> = tier
            .chain
            .iter()
            .zip(rows)
            .map(|(&d, row)| (d, geomean_makespan(row)))
            .collect();
        let live = geomeans
            .iter()
            .map(|(d, g)| format!("{d}={g:.0}"))
            .collect::<Vec<_>>()
            .join(" < ");
        // Consecutive pairs pin the whole chain by transitivity. A
        // failure names the tier and carries every live geomean, so a
        // legitimate flip re-pins by reordering the tier's `chain`
        // (see EXPERIMENTS.md, "Re-pinning the ordering invariants").
        for pair in geomeans.windows(2) {
            let [(da, ga), (db, gb)] = pair else {
                unreachable!()
            };
            assert!(
                ga < gb,
                "tier {}: pinned ordering {da} < {db} flipped \
                 ({da} {ga:.0} !< {db} {gb:.0}; live chain {live})",
                tier.name
            );
        }
    }
}

#[test]
fn gather_aware_stealing_halves_gather_traffic() {
    // The tentpole acceptance bar: W+GA must move at most half of W's
    // gather bytes (geomean over apps) while being no slower on
    // geomean makespan. Measured at pin time: 6.6x fewer bytes at
    // Tiny, 2.4x at Small, faster at both.
    for tier in TIERS {
        if tier.release_only && cfg!(debug_assertions) {
            continue;
        }
        let rows = runs_for(tier);
        let w = design_row(tier, rows, DesignPoint::W);
        let ga = design_row(tier, rows, DesignPoint::WGather);
        let (gw, gga) = (geomean_gather(w), geomean_gather(ga));
        assert!(
            gga * 2.0 <= gw,
            "tier {}: W+GA must move <= half of W's gather bytes \
             (W {gw:.0}, W+GA {gga:.0}, reduction {:.2}x)",
            tier.name,
            gw / gga
        );
        let (mw, mga) = (geomean_makespan(w), geomean_makespan(ga));
        assert!(
            mga <= mw,
            "tier {}: the gather savings must not cost makespan \
             (W {mw:.0}, W+GA {mga:.0})",
            tier.name
        );
    }
}

#[test]
fn energy_breakdown_is_internally_consistent() {
    for row in tiny_runs() {
        for r in row {
            let e = &r.energy;
            for (name, v) in [
                ("core_sram", e.core_sram_pj),
                ("dram_local", e.dram_local_pj),
                ("dram_comm", e.dram_comm_pj),
                ("static", e.static_pj),
            ] {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "{}/{}: {name} energy {v} out of range",
                    r.app,
                    r.design
                );
            }
            let sum = e.core_sram_pj + e.dram_local_pj + e.dram_comm_pj + e.static_pj;
            assert_eq!(
                sum.to_bits(),
                e.total_pj().to_bits(),
                "{}/{}: components must sum to total",
                r.app,
                r.design
            );
            assert!(e.total_pj() > 0.0, "{}/{}: zero energy", r.app, r.design);
            let fsum: f64 = e.fractions().iter().sum();
            assert!(
                (fsum - 1.0).abs() < 1e-9,
                "{}/{}: fractions sum to {fsum}",
                r.app,
                r.design
            );
        }
    }
}

#[test]
fn busy_time_statistics_are_consistent() {
    for row in tiny_runs() {
        for r in row {
            let ctx = format!("{}/{}", r.app, r.design);
            assert!(
                r.max_unit_time >= r.avg_unit_time,
                "{ctx}: max < avg busy time"
            );
            assert!(
                r.makespan >= r.max_unit_time,
                "{ctx}: a unit was busy past the makespan"
            );
            assert_eq!(
                r.per_unit_busy.iter().copied().max().unwrap_or(0),
                r.max_unit_time.ticks(),
                "{ctx}: max_unit_time must be the max of per_unit_busy"
            );
            let mean =
                r.per_unit_busy.iter().sum::<u64>() as f64 / r.per_unit_busy.len().max(1) as f64;
            assert!(
                (mean - r.avg_unit_time.ticks() as f64).abs() <= 1.0,
                "{ctx}: avg_unit_time {} disagrees with per_unit_busy mean {mean}",
                r.avg_unit_time.ticks()
            );
            assert!(
                (0.0..=1.0).contains(&r.wait_fraction),
                "{ctx}: wait_fraction {}",
                r.wait_fraction
            );
            assert!(
                r.balance > 0.0 && r.balance <= 1.0,
                "{ctx}: balance {}",
                r.balance
            );
            assert!(r.tasks_executed > 0, "{ctx}: no work done");
        }
    }
}

#[test]
fn checksums_agree_across_designs() {
    // Scheduling and migration change *where* tasks run, never the
    // application-level result.
    let m = tiny_runs();
    for (i, app) in APP_NAMES.iter().enumerate() {
        let reference = m[0][i].checksum;
        for row in m {
            assert_eq!(
                row[i].checksum, reference,
                "{app}: checksum diverged across designs"
            );
        }
    }
}
