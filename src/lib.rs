//! # ndpbridge
//!
//! A from-scratch Rust reproduction of **NDPBridge: Enabling Cross-Bank
//! Coordination in Near-DRAM-Bank Processing Architectures** (Tian, Li,
//! Jiang, Cai, Gao — ISCA 2024).
//!
//! DRAM-bank NDP systems (e.g. UPMEM) put a wimpy core next to every
//! DRAM bank, but banks cannot talk to each other and the thousands of
//! units suffer severe load imbalance. NDPBridge adds hierarchical
//! *bridges* along the DRAM hierarchy that gather/scatter messages
//! between per-bank mailboxes using standard DDR commands, and builds a
//! hierarchical, data-transfer-aware load balancer on top.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — discrete-event kernel (time, events, RNG, stats);
//! * [`dram`] — DRAM geometry/timing/bank/bus/energy substrates;
//! * [`proto`] — message formats, mailboxes, bridge DDR commands;
//! * [`sketch`] — hot-data sketch + reserved queue;
//! * [`tasks`] — the task-based message-passing programming model;
//! * [`trace`] — event tracing (Chrome `trace_event` output) and the
//!   hierarchical metrics registry;
//! * [`core`] — the full system model, design points and baselines;
//! * [`workloads`] — synthetic datasets and the eight applications;
//! * [`bench`] — the reproduction harness: the parallel sweep engine
//!   with its content-addressed result cache, plus the table/figure
//!   aggregation helpers behind the `repro` binary.
//!
//! # Quickstart
//!
//! ```
//! use ndpbridge::core::{config::SystemConfig, design::DesignPoint, System};
//! use ndpbridge::dram::Geometry;
//! use ndpbridge::workloads::{build_app, Scale};
//!
//! // A small system: one rank, 64 NDP units.
//! let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(1));
//! cfg.seed = 7;
//! let app = build_app("tree", &cfg.geometry, Scale::Tiny, 7);
//! let result = System::new(cfg, DesignPoint::O, app).run();
//! assert!(result.tasks_executed > 0);
//! println!("{}", result.row());
//! ```

#![warn(missing_docs)]

pub use ndpb_bench as bench;
pub use ndpb_core as core;
pub use ndpb_dram as dram;
pub use ndpb_proto as proto;
pub use ndpb_sim as sim;
pub use ndpb_sketch as sketch;
pub use ndpb_tasks as tasks;
pub use ndpb_trace as trace;
pub use ndpb_workloads as workloads;
