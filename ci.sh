#!/usr/bin/env bash
# Repository CI gate. Run from the workspace root:
#
#   ./ci.sh
#
# Everything here works fully offline (the workspace has no external
# dependencies, dev-dependencies included).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "CI OK"
