#!/usr/bin/env bash
# Repository CI gate. Run from the workspace root:
#
#   ./ci.sh
#
# Everything here works fully offline (the workspace has no external
# dependencies, dev-dependencies included).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== golden + determinism + invariant suites (incl. Small tier) =="
# Also part of the workspace run above; named here so a regression in
# the reference results fails with these suites' messages up front.
# Release profile: they re-simulate the reference configurations, and
# — release only — the Small-scale tier: the small_tree_* goldens and
# the Small ordering/gather-ratio invariants (debug builds skip those
# to keep the tier-1 `cargo test` lane fast).
cargo test --release -q --test golden_runs --test determinism --test invariants

echo "== windowed parallel equality matrix (release, incl. Small tier) =="
# DESIGN.md §9b: the windowed engine must actually execute parallel
# windows (not silently fall back) AND stay byte-identical to the
# serial engine — shards {1,2,4} × five bridge designs × two apps,
# plus the release-only Small-scale case and the non-admissible
# fallback case.
cargo test --release -q --test parallel_eq

echo "== repro fig10 smoke: --jobs determinism and warm cache =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
REPRO=target/release/repro
SMOKE_ARGS=(fig10 --tiny --apps tree,spmv)
# Cold run with the cache enabled, then: a 2-worker cache-less run must
# print byte-identical output, and a warm cached run must simulate 0
# points (the stderr sweep summary carries the counters).
"$REPRO" "${SMOKE_ARGS[@]}" --jobs 1 --cache-dir "$SMOKE_DIR/cache" > "$SMOKE_DIR/j1.txt" 2>/dev/null
"$REPRO" "${SMOKE_ARGS[@]}" --jobs 2 --no-cache > "$SMOKE_DIR/j2.txt" 2>/dev/null
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/j2.txt"
"$REPRO" "${SMOKE_ARGS[@]}" --jobs 2 --cache-dir "$SMOKE_DIR/cache" > "$SMOKE_DIR/warm.txt" 2> "$SMOKE_DIR/warm.err"
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/warm.txt"
grep -q "8 cache hits, 0 simulated" "$SMOKE_DIR/warm.err"

echo "== repro fig10 smoke: --shards determinism and cache compatibility =="
# Sharding one run across per-shard timer wheels (DESIGN.md §9) is
# observationally invisible: a --shards 2 run must print byte-identical
# output, and — because shard count is excluded from the config
# fingerprint — it must be served entirely from the cache the serial
# run above populated (gating).
"$REPRO" "${SMOKE_ARGS[@]}" --shards 2 --no-cache > "$SMOKE_DIR/s2.txt" 2>/dev/null
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/s2.txt"
"$REPRO" "${SMOKE_ARGS[@]}" --shards 4 --no-cache > "$SMOKE_DIR/s4.txt" 2>/dev/null
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/s4.txt"
"$REPRO" "${SMOKE_ARGS[@]}" --shards 2 --cache-dir "$SMOKE_DIR/cache" > "$SMOKE_DIR/s2warm.txt" 2> "$SMOKE_DIR/s2warm.err"
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/s2warm.txt"
grep -q "8 cache hits, 0 simulated" "$SMOKE_DIR/s2warm.err"

echo "== repro audit smoke: conservation laws under --audit =="
# A fully-audited sweep (every epoch checks message conservation,
# toArrive balance, dataBorrowed inclusivity, ledger totals, bus
# sanity) aborts non-zero on any violation; release builds default the
# auditor off, so --audit is what engages it here. Audited points key
# the cache differently, so this cannot be satisfied by the entries
# the smoke above just wrote. The breakdown must also balance: the
# `audit` subcommand asserts ledger-rows == comm totals internally and
# prints the zero-violations line only after all points complete.
"$REPRO" "${SMOKE_ARGS[@]}" --audit --jobs 2 --cache-dir "$SMOKE_DIR/cache" > "$SMOKE_DIR/audited.txt" 2>/dev/null
cmp "$SMOKE_DIR/j1.txt" "$SMOKE_DIR/audited.txt"   # auditor is observational
"$REPRO" audit --tiny --apps tree,spmv --jobs 2 --no-cache > "$SMOKE_DIR/ledger.txt" 2>/dev/null
grep -q "auditor: zero violations" "$SMOKE_DIR/ledger.txt"

echo "== repro gather smoke: gather-cost-aware stealing ablation =="
# The fig10-analog ablation sweep behind DESIGN.md §10 (B, the W
# ladder, O±GA) must run end-to-end and report the headline metric.
# Tiny scale and two apps keep it in the seconds; the *measured* claim
# (>= 2x fewer gather bytes at Small) is gated by the release
# invariants suite above, not re-measured here.
"$REPRO" gather --tiny --apps tree,spmv --no-cache > "$SMOKE_DIR/gather.txt" 2>/dev/null
grep -q "gather reduction W+GA vs W:" "$SMOKE_DIR/gather.txt"
grep -q "W+Byte" "$SMOKE_DIR/gather.txt"

echo "== repro bench smoke: engine throughput + Small tier (non-gating timings) =="
# The timings themselves are machine-dependent and NOT gated; what is
# checked is that the bench harness runs, its repetitions agree on the
# event count (it asserts determinism internally), and the JSON report
# is well-formed with all six design columns present.
"$REPRO" bench --quick --shards 2 --small-tier --profile > "$SMOKE_DIR/bench.txt" 2>&1
test -s BENCH_repro.json
# Structure IS gated: a report missing any of the six design columns —
# or the shards ladder / profile sections below — means the harness
# silently dropped coverage, which must fail CI even though the wall
# times themselves stay non-gating.
for d in C B W O H R; do
    grep -q "\"design\":\"$d\"" BENCH_repro.json
done
# The shards scaling array must be present and well-formed (the harness
# itself gates event-count equality AND window-structure determinism
# across shard counts; the speedup value is machine-dependent and not
# gated here). Each rung carries the windowed-engine counters and the
# report records the host's parallelism so sub-1.0 single-core numbers
# stay interpretable.
grep -q '"shards":\[' BENCH_repro.json
grep -q '"speedup_over_serial":' BENCH_repro.json
grep -q '"windows":' BENCH_repro.json
grep -q '"serial_fallback_steps":' BENCH_repro.json
grep -q '"barrier_stall_ns":' BENCH_repro.json
grep -q '"host_parallelism":' BENCH_repro.json
# Non-gating scaling smoke: surface the measured speedups next to the
# committed baseline (docs/repro/BENCH_repro.json) so a scaling
# regression is visible in the CI log without gating on wall-clock.
grep -q "baseline speedup_over_serial at" "$SMOKE_DIR/bench.txt"
echo "-- scaling smoke (non-gating, machine-dependent) --"
grep -o '{"shards":[^}]*}' BENCH_repro.json || true
grep "baseline speedup_over_serial at" "$SMOKE_DIR/bench.txt" || true
# The Small-tier section must be present with both designs, and the
# harness must have printed the delta against the committed baseline
# (docs/repro/BENCH_repro.json). The values are deterministic byte
# counts, but the delta stays non-gating here so a deliberate policy
# change fails in the invariants suite (with a re-pin message), not as
# an opaque grep.
grep -q '"small_tier":{"scale":"Small"' BENCH_repro.json
grep -q '"design":"W+GA"' BENCH_repro.json
grep -q "baseline small-tier gather reduction" "$SMOKE_DIR/bench.txt"
# --profile smoke: the phase profiler must attribute the event loop
# (queue vs. dispatch vs. finalize) for every design and emit the
# events-per-pop histogram; attribution percentages are wall-clock and
# stay non-gating, but the section's presence and shape are gated.
grep -q '"profile":\[' BENCH_repro.json
for k in queue_ns dispatch_ns finalize_ns events_per_batch run_len_hist; do
    grep -q "\"$k\":" BENCH_repro.json
done
grep -q "events-per-pop histogram" "$SMOKE_DIR/bench.txt"
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool BENCH_repro.json > /dev/null
fi

echo "== repro serve smoke: run / dedup-cache / metrics / graceful shutdown =="
# Drives the resident service over its line protocol (same port as
# HTTP, one command per connection) through bash's /dev/tcp — no curl
# or netcat needed. The sequence asserts the service pipeline
# end-to-end: submit a Tiny point, poll the job to completion, resubmit
# the identical request (must be a cache hit, not a second simulation),
# check /metrics reflects that, then shut down gracefully and require a
# clean exit.
"$REPRO" serve --port 0 --jobs 2 --cache-dir "$SMOKE_DIR/serve-cache" \
    2> "$SMOKE_DIR/serve.log" &
SRV=$!
SERVE_PORT=""
for _ in $(seq 1 100); do
    SERVE_PORT=$(grep -o 'listening on 127\.0\.0\.1:[0-9]*' "$SMOKE_DIR/serve.log" 2>/dev/null | grep -o '[0-9]*$' || true)
    [ -n "$SERVE_PORT" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "serve exited early:"; cat "$SMOKE_DIR/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$SERVE_PORT" ] || { echo "serve never reported its port"; cat "$SMOKE_DIR/serve.log"; exit 1; }
serve_cmd() {  # one line-protocol command, prints the one-line JSON reply
    exec 3<>"/dev/tcp/127.0.0.1/$SERVE_PORT"
    printf '%s\n' "$1" >&3
    IFS= read -r REPLY <&3
    exec 3<&- 3>&-
    printf '%s\n' "$REPLY"
}
serve_cmd 'run {"app":"ll","design":"C","scale":"tiny"}' | grep -q '"id":1'
for _ in $(seq 1 600); do
    JOB=$(serve_cmd 'job 1')
    case "$JOB" in *'"status":"done"'*) break ;; esac
    sleep 0.2
done
case "$JOB" in *'"status":"done"'*) ;; *) echo "job 1 never finished: $JOB"; exit 1 ;; esac
serve_cmd 'run {"app":"ll","design":"C","scale":"tiny"}' | grep -q '"status":"done"'
serve_cmd 'metrics' | grep -q '"cache_hits":1'
# The completed run must surface its throughput snapshot (events and
# events/sec are machine-dependent; presence and non-zero are gated).
serve_cmd 'metrics' | grep -q '"completed":1'
serve_cmd 'metrics' | grep -qv '"last_run":{"events":0'
serve_cmd 'shutdown' | grep -q '"draining":true'
wait "$SRV"   # graceful shutdown must exit 0 (set -e gates this)
grep -q "drained, exiting" "$SMOKE_DIR/serve.log"

echo "CI OK"
