//! Message formats (Figure 5).

use ndpb_dram::{BlockAddr, UnitId};
use ndpb_tasks::Task;

/// Maximum size of one (sub-)message on the wire, including its header.
pub const MAX_MESSAGE_BYTES: u32 = 64;

/// Header bytes of every message: type + index fields (Figure 5).
pub const MESSAGE_HEADER_BYTES: u32 = 2;

/// A data message: one `G_xfer`-sized block being lent to another unit
/// for data-first load balancing. On the wire it is split into
/// `ceil(payload / (64 - header))` sub-messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataMessage {
    /// The migrating block (identified by its *original* address; the
    /// receiver remaps it into its borrowed data region).
    pub block: BlockAddr,
    /// Payload bytes (normally `G_xfer`).
    pub bytes: u32,
    /// Cumulative workload of the tasks associated with this block, as
    /// reported by the giver's sketch; lets the bridge debit budgets.
    pub workload: u64,
}

/// A state message: the per-unit status the bridge collects with
/// STATE-GATHER (Section V-B). State is maintained in the unit
/// controller, not the mailbox, so it is never blocked behind other
/// messages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateMessage {
    /// Bytes currently waiting in the mailbox region (`L_mailbox`).
    pub mailbox_bytes: u64,
    /// Workload (estimated cycles) waiting in the task queue
    /// (`W_queue`).
    pub queue_workload: u64,
    /// Workload finished since the previous state gather (`W_finish`).
    pub finished_workload: u64,
    /// When responding to a SCHEDULE round: the blocks chosen to be lent
    /// out with their workloads (step ③ of Figure 6).
    pub scheduled_out: Vec<(BlockAddr, u64)>,
}

impl StateMessage {
    /// Wire size: fixed fields plus 10 bytes per scheduled-out entry.
    pub fn wire_bytes(&self) -> u32 {
        MESSAGE_HEADER_BYTES + 6 + 6 + 6 + self.scheduled_out.len() as u32 * 10
    }
}

/// Any message travelling between units and bridges.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A task pushed to the unit holding its data element.
    /// `Some(receiver)` marks tasks moved by load balancing toward that
    /// intended receiver, whose workload is tracked by the bridges'
    /// `toArrive` correction counters (Section VI-C) until first
    /// delivery; `None` for ordinary spawns and reroutes.
    Task(Task, Option<UnitId>),
    /// A block being lent for load balancing, with an explicit receiver
    /// chosen by the bridge (step ④ of Figure 6). `None` until the
    /// bridge assigns it.
    Data(DataMessage, Option<UnitId>),
    /// A state report (only travels child → parent).
    State(StateMessage),
}

impl Message {
    /// Total bytes this message occupies on the wire, including the
    /// headers of all sub-messages it is split into.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Message::Task(t, _) => t.wire_bytes().min(MAX_MESSAGE_BYTES),
            Message::Data(d, _) => {
                let payload_per_sub = MAX_MESSAGE_BYTES - MESSAGE_HEADER_BYTES - 8;
                let subs = d.bytes.div_ceil(payload_per_sub).max(1);
                d.bytes + subs * (MESSAGE_HEADER_BYTES + 8)
            }
            Message::State(s) => s.wire_bytes(),
        }
    }

    /// Whether this is a task message.
    pub fn is_task(&self) -> bool {
        matches!(self, Message::Task(..))
    }

    /// Whether this is a data (block-lending) message.
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::DataAddr;
    use ndpb_tasks::{TaskArgs, TaskFnId, Timestamp};

    fn task() -> Task {
        Task::new(
            TaskFnId(1),
            Timestamp(0),
            DataAddr(64),
            10,
            TaskArgs::one(5),
        )
    }

    #[test]
    fn task_message_fits_64_bytes() {
        let m = Message::Task(task(), None);
        assert!(m.wire_bytes() <= MAX_MESSAGE_BYTES);
        assert!(m.is_task());
        assert!(!m.is_data());
    }

    #[test]
    fn data_message_counts_sub_headers() {
        let m = Message::Data(
            DataMessage {
                block: BlockAddr(1),
                bytes: 256,
                workload: 40,
            },
            None,
        );
        // 256 B payload at 54 B per sub-message = 5 subs, each with a
        // 10 B header+address overhead.
        assert_eq!(m.wire_bytes(), 256 + 5 * 10);
    }

    #[test]
    fn small_data_message_single_sub() {
        let m = Message::Data(
            DataMessage {
                block: BlockAddr(0),
                bytes: 16,
                workload: 1,
            },
            Some(UnitId(3)),
        );
        assert_eq!(m.wire_bytes(), 16 + 10);
    }

    #[test]
    fn state_message_grows_with_schedule_list() {
        let mut s = StateMessage::default();
        let empty = s.wire_bytes();
        s.scheduled_out.push((BlockAddr(3), 17));
        assert_eq!(s.wire_bytes(), empty + 10);
        assert!(Message::State(s).wire_bytes() >= empty);
    }
}
