//! Communication protocol structures for NDPBridge.
//!
//! Section V-B of the paper defines three message types — *task*,
//! *data* and *state* messages (Figure 5), each at most 64 bytes with
//! larger payloads split into indexed sub-messages — and four bridge
//! commands forged from standard DDR commands on reserved row/column
//! addresses:
//!
//! | Command | DDR encoding | Purpose |
//! |---|---|---|
//! | `STATE-GATHER` | ACTIVATE to `R_ROW` | collect a child's state message |
//! | `GATHER` | READ to `R_COL` | drain `G_xfer` bytes from a child's mailbox |
//! | `SCATTER` | WRITE to `R_COL` | deliver `G_xfer` bytes of messages to a child |
//! | `SCHEDULE` | ACTIVATE with budget in the row address | start load balancing at a giver |
//!
//! This crate models those wire formats ([`message`]), the per-unit and
//! per-bridge mailbox ring buffers ([`mailbox`]), and the command
//! encodings with their C/A timing cost ([`commands`]).

#![warn(missing_docs)]

pub mod commands;
pub mod mailbox;
pub mod message;

pub use commands::BridgeCommand;
pub use mailbox::{Mailbox, MailboxFull};
pub use message::{DataMessage, Message, StateMessage, MAX_MESSAGE_BYTES};
