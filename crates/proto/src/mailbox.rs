//! Mailbox ring buffers.
//!
//! Each NDP unit statically reserves a *mailbox region* in its local DRAM
//! bank (1 MB in Table I) holding outgoing messages as a ring buffer; the
//! unit controller keeps the head/tail pointers. When the region is full
//! the next enqueue stalls the core (Section V-A). Level-1 bridges keep a
//! similar (128 kB SRAM) mailbox for messages headed to other ranks.

use std::collections::VecDeque;

use ndpb_sim::SimTime;
use ndpb_trace::{ComponentId, TraceEvent, TraceRecord, TraceSink};

use crate::message::Message;

/// Error returned when a mailbox has no room for a message; the caller
/// (core or bridge) must stall and retry after the next gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxFull {
    /// Bytes the rejected message needed.
    pub needed: u32,
    /// Bytes currently free.
    pub free: u64,
}

impl std::fmt::Display for MailboxFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mailbox full: message needs {} bytes, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for MailboxFull {}

/// A bounded FIFO of outgoing messages, accounted in wire bytes.
///
/// # Example
///
/// ```
/// use ndpb_proto::{Mailbox, Message};
/// use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
/// use ndpb_dram::DataAddr;
///
/// let mut mb = Mailbox::new(1 << 20);
/// let task = Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY);
/// mb.push(Message::Task(task, None))?;
/// assert!(mb.bytes_used() > 0);
/// # Ok::<(), ndpb_proto::MailboxFull>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    queue: VecDeque<Message>,
    capacity_bytes: u64,
    used_bytes: u64,
    /// High-water mark of used bytes, for buffer-sizing reports.
    peak_bytes: u64,
    /// Count of enqueues rejected because the region was full.
    stalls: u64,
    /// Latch for the full-mailbox trace event: set on the first rejected
    /// enqueue of a full episode, cleared when space frees. Keeps the
    /// traced paths from emitting one event per retry.
    full_latched: bool,
}

impl Mailbox {
    /// Creates a mailbox of `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        Mailbox {
            queue: VecDeque::new(),
            capacity_bytes,
            used_bytes: 0,
            peak_bytes: 0,
            stalls: 0,
            full_latched: false,
        }
    }

    /// Appends a message to the tail.
    ///
    /// # Errors
    ///
    /// Returns [`MailboxFull`] (and records a stall) if the message does
    /// not fit; the mailbox is unchanged.
    pub fn push(&mut self, msg: Message) -> Result<(), MailboxFull> {
        let needed = msg.wire_bytes();
        let free = self.capacity_bytes - self.used_bytes;
        if (needed as u64) > free {
            self.stalls += 1;
            self.full_latched = true;
            return Err(MailboxFull { needed, free });
        }
        self.used_bytes += needed as u64;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.queue.push_back(msg);
        self.full_latched = false;
        Ok(())
    }

    /// [`push`](Self::push) with a trace hook: emits
    /// [`TraceEvent::MailboxEnqueue`] on success, and on failure a
    /// [`TraceEvent::MailboxFull`] — but only for the *first* rejection
    /// of a full episode (latched until space frees), so one stall
    /// produces exactly one event no matter how often it is retried.
    pub fn push_traced(
        &mut self,
        msg: Message,
        now: SimTime,
        comp: ComponentId,
        trace: Option<&mut dyn TraceSink>,
    ) -> Result<(), MailboxFull> {
        let was_latched = self.full_latched;
        let needed = msg.wire_bytes();
        let res = self.push(msg);
        if let Some(t) = trace {
            match &res {
                Ok(()) => t.record(TraceRecord::instant(
                    now,
                    comp,
                    TraceEvent::MailboxEnqueue {
                        bytes: needed,
                        used: self.used_bytes,
                    },
                )),
                Err(_) if !was_latched => t.record(TraceRecord::instant(
                    now,
                    comp,
                    TraceEvent::MailboxFull {
                        needed,
                        used: self.used_bytes,
                    },
                )),
                Err(_) => {}
            }
        }
        res
    }

    /// Like [`Mailbox::push`], but hands the message back on failure
    /// instead of an error (for callers that park it elsewhere).
    pub fn try_push(&mut self, msg: Message) -> Option<Message> {
        let needed = msg.wire_bytes();
        if (needed as u64) > self.capacity_bytes - self.used_bytes {
            self.stalls += 1;
            self.full_latched = true;
            return Some(msg);
        }
        self.used_bytes += needed as u64;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.queue.push_back(msg);
        self.full_latched = false;
        None
    }

    /// [`try_push`](Self::try_push) with a trace hook; same once-per-stall
    /// latching as [`push_traced`](Self::push_traced).
    pub fn try_push_traced(
        &mut self,
        msg: Message,
        now: SimTime,
        comp: ComponentId,
        trace: Option<&mut dyn TraceSink>,
    ) -> Option<Message> {
        let was_latched = self.full_latched;
        let needed = msg.wire_bytes();
        let res = self.try_push(msg);
        if let Some(t) = trace {
            match &res {
                None => t.record(TraceRecord::instant(
                    now,
                    comp,
                    TraceEvent::MailboxEnqueue {
                        bytes: needed,
                        used: self.used_bytes,
                    },
                )),
                Some(_) if !was_latched => t.record(TraceRecord::instant(
                    now,
                    comp,
                    TraceEvent::MailboxFull {
                        needed,
                        used: self.used_bytes,
                    },
                )),
                Some(_) => {}
            }
        }
        res
    }

    /// Pops messages from the head until up to `budget_bytes` have been
    /// drained (at least one message if any is pending, matching the
    /// fixed `G_xfer` gather granularity which always moves a full slot).
    pub fn drain_up_to(&mut self, budget_bytes: u32) -> Vec<Message> {
        let mut out = Vec::new();
        self.drain_up_to_into(budget_bytes, &mut out);
        out
    }

    /// Like [`drain_up_to`](Self::drain_up_to), but appends into a
    /// caller-provided buffer so the hot gather path can recycle one
    /// allocation across rounds. Returns the number of messages drained.
    pub fn drain_up_to_into(&mut self, budget_bytes: u32, out: &mut Vec<Message>) -> usize {
        let start = out.len();
        let mut drained = 0u32;
        while let Some(front) = self.queue.front() {
            let sz = front.wire_bytes();
            if drained != 0 && drained + sz > budget_bytes {
                break;
            }
            drained += sz;
            self.used_bytes -= sz as u64;
            out.push(self.queue.pop_front().expect("front exists"));
            if drained >= budget_bytes {
                break;
            }
        }
        if drained != 0 {
            self.full_latched = false;
        }
        out.len() - start
    }

    /// Bytes currently queued (the paper's `L_mailbox`).
    pub fn bytes_used(&self) -> u64 {
        self.used_bytes
    }

    /// Peak bytes ever queued.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of rejected enqueues.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over queued messages head-first (for tests/inspection).
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::DataMessage;
    use ndpb_dram::{BlockAddr, DataAddr};
    use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};

    fn task_msg() -> Message {
        Message::Task(
            Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY),
            None,
        )
    }

    fn data_msg(bytes: u32) -> Message {
        Message::Data(
            DataMessage {
                block: BlockAddr(0),
                bytes,
                workload: 1,
            },
            None,
        )
    }

    #[test]
    fn push_and_drain_fifo() {
        let mut mb = Mailbox::new(4096);
        mb.push(task_msg()).unwrap();
        mb.push(data_msg(64)).unwrap();
        let all = mb.drain_up_to(4096);
        assert_eq!(all.len(), 2);
        assert!(all[0].is_task());
        assert!(all[1].is_data());
        assert!(mb.is_empty());
        assert_eq!(mb.bytes_used(), 0);
    }

    #[test]
    fn full_mailbox_rejects_and_counts_stall() {
        let sz = task_msg().wire_bytes() as u64;
        let mut mb = Mailbox::new(sz);
        mb.push(task_msg()).unwrap();
        let err = mb.push(task_msg()).unwrap_err();
        assert_eq!(err.free, 0);
        assert_eq!(mb.stalls(), 1);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn drain_respects_budget_but_moves_at_least_one() {
        let mut mb = Mailbox::new(1 << 20);
        for _ in 0..10 {
            mb.push(task_msg()).unwrap();
        }
        let one_size = task_msg().wire_bytes();
        // A budget smaller than one message still drains one (the gather
        // slot always moves a full G_xfer window).
        let got = mb.drain_up_to(1);
        assert_eq!(got.len(), 1);
        // A budget of 3 messages drains exactly 3.
        let got = mb.drain_up_to(3 * one_size);
        assert_eq!(got.len(), 3);
        assert_eq!(mb.len(), 6);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut mb = Mailbox::new(1 << 20);
        mb.push(data_msg(256)).unwrap();
        let peak = mb.bytes_used();
        mb.drain_up_to(u32::MAX);
        assert_eq!(mb.peak_bytes(), peak);
        assert_eq!(mb.bytes_used(), 0);
    }

    #[test]
    fn display_of_full_error() {
        let mut mb = Mailbox::new(1);
        let err = mb.push(task_msg()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("mailbox full"), "{s}");
    }

    #[test]
    fn iter_sees_queue_order() {
        let mut mb = Mailbox::new(1 << 20);
        mb.push(task_msg()).unwrap();
        mb.push(data_msg(8)).unwrap();
        let kinds: Vec<bool> = mb.iter().map(|m| m.is_task()).collect();
        assert_eq!(kinds, vec![true, false]);
    }
}
