//! Bridge command encodings.
//!
//! NDPBridge introduces no new DDR commands: the bridge's command
//! generator *forges* standard ACTIVATE/READ/WRITE commands targeting a
//! reserved row (`R_ROW`) and column (`R_COL`) outside the physical
//! array range, which the unit controller's command handler decodes
//! (Section V-B). We model each command's C/A-link occupancy and the
//! payload it moves.

use ndpb_sim::{SimTime, TICKS_PER_BUS_CYCLE};

/// Reserved row address used by the forged commands (beyond the 64 MB
/// bank's real rows; 1 kB rows ⇒ 65536 real rows per bank).
pub const R_ROW: u64 = 1 << 20;

/// Reserved column address for GATHER/SCATTER.
pub const R_COL: u64 = 1 << 12;

/// The four bridge commands of Section V-B / VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeCommand {
    /// ACTIVATE to `R_ROW`: the child replies with one state message.
    StateGather,
    /// READ to `R_COL`: drain up to `G_xfer` bytes from the child's
    /// mailbox head.
    Gather,
    /// WRITE to `R_COL`: deliver up to `G_xfer` bytes of messages to the
    /// child (task queue / borrowed data region / lower bridge).
    Scatter,
    /// ACTIVATE with the workload budget encoded into the (reserved
    /// prefix of the) row address: tells a giver how much workload to
    /// schedule out.
    Schedule {
        /// Workload (estimated cycles) the giver should lend out.
        budget: u64,
    },
}

impl BridgeCommand {
    /// C/A-link occupancy of issuing this command: one DDR command slot
    /// (one bus clock). Commands to the same bank position of all chips
    /// in a rank are issued once and decoded by every chip in parallel.
    pub fn ca_time(&self) -> SimTime {
        SimTime::from_ticks(TICKS_PER_BUS_CYCLE)
    }

    /// Whether this command moves data on the DQ links (GATHER/SCATTER)
    /// or only commands/state.
    pub fn moves_payload(&self) -> bool {
        matches!(self, BridgeCommand::Gather | BridgeCommand::Scatter)
    }

    /// The DDR row address this command is encoded onto, demonstrating
    /// that budgets fit the reserved row-address space.
    pub fn encoded_row(&self) -> u64 {
        match self {
            BridgeCommand::StateGather => R_ROW,
            BridgeCommand::Gather | BridgeCommand::Scatter => R_ROW,
            BridgeCommand::Schedule { budget } => R_ROW | (budget & (R_ROW - 1)),
        }
    }

    /// Decodes a row address back into a SCHEDULE budget, as the unit
    /// controller's command handler does.
    pub fn decode_budget(row: u64) -> Option<u64> {
        if row & R_ROW != 0 {
            Some(row & (R_ROW - 1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_slot_is_one_bus_cycle() {
        assert_eq!(
            BridgeCommand::Gather.ca_time(),
            SimTime::from_ticks(TICKS_PER_BUS_CYCLE)
        );
    }

    #[test]
    fn payload_classification() {
        assert!(BridgeCommand::Gather.moves_payload());
        assert!(BridgeCommand::Scatter.moves_payload());
        assert!(!BridgeCommand::StateGather.moves_payload());
        assert!(!BridgeCommand::Schedule { budget: 5 }.moves_payload());
    }

    #[test]
    fn budget_round_trips_through_row_address() {
        for budget in [0u64, 1, 1000, R_ROW - 1] {
            let cmd = BridgeCommand::Schedule { budget };
            let row = cmd.encoded_row();
            assert!(row >= R_ROW, "reserved prefix set");
            assert_eq!(BridgeCommand::decode_budget(row), Some(budget));
        }
    }

    #[test]
    fn real_rows_do_not_decode_as_budget() {
        assert_eq!(BridgeCommand::decode_budget(1234), None);
    }

    #[test]
    fn reserved_row_is_outside_real_array() {
        // 64 MB bank with 1 kB rows has 65536 rows; R_ROW is far above.
        const { assert!(R_ROW > (64 << 20) / 1024) }
    }
}
