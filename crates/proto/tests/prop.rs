//! Randomized tests for mailboxes and message accounting, driven by the
//! in-repo deterministic `SimRng`.

use ndpb_dram::{BlockAddr, DataAddr};
use ndpb_proto::message::DataMessage;
use ndpb_proto::{Mailbox, Message};
use ndpb_sim::SimRng;
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};

const CASES: usize = 64;

fn arb_message(rng: &mut SimRng) -> Message {
    if rng.chance(0.5) {
        Message::Task(
            Task::new(
                TaskFnId(rng.next_below(8) as u16),
                Timestamp(rng.next_below(4) as u32),
                DataAddr(rng.next_below(1 << 30)),
                rng.next_below(1000) as u32,
                TaskArgs::one(7),
            ),
            None,
        )
    } else {
        Message::Data(
            DataMessage {
                block: BlockAddr(rng.next_below(1000)),
                bytes: 1 + rng.next_below(1023) as u32,
                workload: rng.next_below(100),
            },
            None,
        )
    }
}

fn arb_messages(rng: &mut SimRng, max: usize) -> Vec<Message> {
    let n = 1 + rng.next_index(max - 1);
    (0..n).map(|_| arb_message(rng)).collect()
}

/// Byte accounting is conserved: used = pushed − drained, and never
/// exceeds capacity.
#[test]
fn mailbox_conserves_bytes() {
    let mut rng = SimRng::new(0x9070_0001);
    for _ in 0..CASES {
        let msgs = arb_messages(&mut rng, 100);
        let n_budgets = 1 + rng.next_index(49);
        let budgets: Vec<u32> = (0..n_budgets)
            .map(|_| 1 + rng.next_below(2047) as u32)
            .collect();
        let mut mb = Mailbox::new(64 << 10);
        let mut pushed = 0u64;
        let mut accepted = 0u64;
        for m in msgs {
            let sz = m.wire_bytes() as u64;
            if mb.push(m).is_ok() {
                pushed += sz;
                accepted += 1;
            }
            assert!(mb.bytes_used() <= mb.capacity());
        }
        let mut drained_bytes = 0u64;
        let mut drained = 0u64;
        for b in budgets {
            for m in mb.drain_up_to(b) {
                drained_bytes += m.wire_bytes() as u64;
                drained += 1;
            }
        }
        assert_eq!(mb.bytes_used(), pushed - drained_bytes);
        assert_eq!(mb.len() as u64, accepted - drained);
    }
}

/// Drain order equals push order (FIFO), regardless of budgets.
#[test]
fn mailbox_is_fifo() {
    let mut rng = SimRng::new(0x9070_0002);
    for _ in 0..CASES {
        let msgs = arb_messages(&mut rng, 60);
        let budget = 1 + rng.next_below(511) as u32;
        let mut mb = Mailbox::new(1 << 20);
        for m in &msgs {
            mb.push(m.clone()).unwrap();
        }
        let mut out = Vec::new();
        while !mb.is_empty() {
            out.extend(mb.drain_up_to(budget));
        }
        assert_eq!(out, msgs);
    }
}

/// try_push never loses a message: it is either queued or returned.
#[test]
fn try_push_never_drops() {
    let mut rng = SimRng::new(0x9070_0003);
    for _ in 0..CASES {
        let msgs = arb_messages(&mut rng, 100);
        let mut mb = Mailbox::new(512);
        let mut kept = 0usize;
        let mut returned = 0usize;
        for m in msgs.clone() {
            match mb.try_push(m.clone()) {
                None => kept += 1,
                Some(back) => {
                    assert_eq!(back, m);
                    returned += 1;
                }
            }
        }
        assert_eq!(kept + returned, msgs.len());
        assert_eq!(mb.len(), kept);
    }
}

/// FIFO order and byte conservation hold under random *interleavings*
/// of enqueue and dequeue against a small (frequently wrapping, often
/// full) ring: every accepted message comes out exactly once, in
/// acceptance order, and `bytes_used` always equals the sum of the
/// queued messages' wire sizes.
#[test]
fn interleaved_enqueue_dequeue_is_fifo_and_conserving() {
    let mut rng = SimRng::new(0x9070_0005);
    for case in 0..CASES {
        // Small capacity so backpressure and wraparound both occur.
        let mut mb = Mailbox::new(256 + rng.next_below(768));
        let mut accepted: std::collections::VecDeque<Message> = std::collections::VecDeque::new();
        let mut stalls = 0u64;
        for _step in 0..400 {
            if rng.chance(0.6) {
                let m = arb_message(&mut rng);
                let sz = m.wire_bytes() as u64;
                match mb.try_push(m.clone()) {
                    None => accepted.push_back(m),
                    Some(back) => {
                        assert_eq!(back, m, "rejected message must come back intact");
                        assert!(sz > mb.capacity() - mb.bytes_used());
                        stalls += 1;
                    }
                }
            } else {
                let budget = 1 + rng.next_below(511) as u32;
                for got in mb.drain_up_to(budget) {
                    let expect = accepted.pop_front().expect("drained more than accepted");
                    assert_eq!(got, expect, "case {case}: FIFO violated");
                }
            }
            let queued: u64 = mb.iter().map(|m| m.wire_bytes() as u64).sum();
            assert_eq!(mb.bytes_used(), queued);
            assert_eq!(mb.len(), accepted.len());
            assert!(mb.bytes_used() <= mb.capacity());
        }
        assert_eq!(mb.stalls(), stalls);
        // Final drain returns the exact remainder in order.
        while !mb.is_empty() {
            for got in mb.drain_up_to(u32::MAX) {
                assert_eq!(got, accepted.pop_front().expect("remainder"));
            }
        }
        assert!(accepted.is_empty());
    }
}

/// Wire sizes respect the 64 B sub-message format: task messages fit
/// one message, data messages cost payload plus per-sub-message
/// headers.
#[test]
fn wire_bytes_bounds() {
    let mut rng = SimRng::new(0x9070_0004);
    for _ in 0..512 {
        let m = arb_message(&mut rng);
        let sz = m.wire_bytes();
        match &m {
            Message::Task(..) => assert!(sz <= 64),
            Message::Data(d, _) => {
                assert!(sz > d.bytes);
                // Overhead is bounded by one header per 54-byte chunk.
                let subs = d.bytes.div_ceil(54).max(1);
                assert!(sz <= d.bytes + subs * 10);
            }
            Message::State(_) => {}
        }
    }
}
