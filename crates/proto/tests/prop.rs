//! Property-based tests for mailboxes and message accounting.

use ndpb_dram::{BlockAddr, DataAddr};
use ndpb_proto::message::DataMessage;
use ndpb_proto::{Mailbox, Message};
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0u16..8, 0u32..4, 0u64..(1 << 30), 0u32..1000).prop_map(|(f, ts, addr, wl)| {
            Message::Task(
                Task::new(
                    TaskFnId(f),
                    Timestamp(ts),
                    DataAddr(addr),
                    wl,
                    TaskArgs::one(7),
                ),
                false,
            )
        }),
        (0u64..1000, 1u32..1024, 0u64..100).prop_map(|(b, bytes, wl)| {
            Message::Data(
                DataMessage {
                    block: BlockAddr(b),
                    bytes,
                    workload: wl,
                },
                None,
            )
        }),
    ]
}

proptest! {
    /// Byte accounting is conserved: used = pushed − drained, and never
    /// exceeds capacity.
    #[test]
    fn mailbox_conserves_bytes(
        msgs in prop::collection::vec(arb_message(), 1..100),
        budgets in prop::collection::vec(1u32..2048, 1..50),
    ) {
        let mut mb = Mailbox::new(64 << 10);
        let mut pushed = 0u64;
        let mut accepted = 0u64;
        for m in msgs {
            let sz = m.wire_bytes() as u64;
            if mb.push(m).is_ok() {
                pushed += sz;
                accepted += 1;
            }
            prop_assert!(mb.bytes_used() <= mb.capacity());
        }
        let mut drained_bytes = 0u64;
        let mut drained = 0u64;
        for b in budgets {
            for m in mb.drain_up_to(b) {
                drained_bytes += m.wire_bytes() as u64;
                drained += 1;
            }
        }
        prop_assert_eq!(mb.bytes_used(), pushed - drained_bytes);
        prop_assert_eq!(mb.len() as u64, accepted - drained);
    }

    /// Drain order equals push order (FIFO), regardless of budgets.
    #[test]
    fn mailbox_is_fifo(
        msgs in prop::collection::vec(arb_message(), 1..60),
        budget in 1u32..512,
    ) {
        let mut mb = Mailbox::new(1 << 20);
        for m in &msgs {
            mb.push(m.clone()).unwrap();
        }
        let mut out = Vec::new();
        while !mb.is_empty() {
            out.extend(mb.drain_up_to(budget));
        }
        prop_assert_eq!(out, msgs);
    }

    /// try_push never loses a message: it is either queued or returned.
    #[test]
    fn try_push_never_drops(msgs in prop::collection::vec(arb_message(), 1..100)) {
        let mut mb = Mailbox::new(512);
        let mut kept = 0usize;
        let mut returned = 0usize;
        for m in msgs.iter().cloned() {
            match mb.try_push(m.clone()) {
                None => kept += 1,
                Some(back) => {
                    prop_assert_eq!(back, m);
                    returned += 1;
                }
            }
        }
        prop_assert_eq!(kept + returned, msgs.len());
        prop_assert_eq!(mb.len(), kept);
    }

    /// Wire sizes respect the 64 B sub-message format: task messages fit
    /// one message, data messages cost payload plus per-sub-message
    /// headers.
    #[test]
    fn wire_bytes_bounds(m in arb_message()) {
        let sz = m.wire_bytes();
        match &m {
            Message::Task(..) => prop_assert!(sz <= 64),
            Message::Data(d, _) => {
                prop_assert!(sz > d.bytes);
                // Overhead is bounded by one header per 54-byte chunk.
                let subs = d.bytes.div_ceil(54).max(1);
                prop_assert!(sz <= d.bytes + subs * 10);
            }
            Message::State(_) => {}
        }
    }
}
