//! Mailbox edge cases: ring wrap-around accounting, enqueue-on-full
//! backpressure, and the once-per-stall `mailbox-full` trace latch.

use ndpb_dram::{BlockAddr, DataAddr};
use ndpb_proto::{DataMessage, Mailbox, Message};
use ndpb_sim::SimTime;
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
use ndpb_trace::{ComponentId, RingRecorder, TraceEvent, TraceSink};

fn task_msg() -> Message {
    Message::Task(
        Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY),
        None,
    )
}

fn data_msg(bytes: u32, block: u64) -> Message {
    Message::Data(
        DataMessage {
            block: BlockAddr(block),
            bytes,
            workload: 1,
        },
        None,
    )
}

/// The ring's byte accounting must survive many fill/drain cycles: after
/// wrapping the region hundreds of times, `bytes_used` still equals the
/// sum of the queued messages' wire sizes, the peak never exceeds the
/// capacity, and FIFO order is preserved across the wrap point.
#[test]
fn wraparound_keeps_accounting_and_fifo_order() {
    let msg_sz = task_msg().wire_bytes() as u64;
    // Room for exactly four task messages: every refill wraps the ring.
    let mut mb = Mailbox::new(4 * msg_sz);
    let mut next_block = 0u64;
    let mut expect_front = 0u64;
    // Seed with data messages of the same wire size as a task message so
    // the block addresses give us a sequence number to check order with.
    let data_payload = task_msg().wire_bytes() - (data_msg(0, 0).wire_bytes());
    for _round in 0..300 {
        while mb.bytes_used() + msg_sz <= mb.capacity() {
            mb.push(data_msg(data_payload, next_block)).unwrap();
            next_block += 1;
        }
        assert_eq!(mb.bytes_used(), mb.len() as u64 * msg_sz);
        assert!(mb.peak_bytes() <= mb.capacity());
        // Drain half (two messages) and check they come out in order.
        for got in mb.drain_up_to(2 * msg_sz as u32) {
            match got {
                Message::Data(d, _) => assert_eq!(d.block.0, expect_front),
                other => panic!("unexpected message {other:?}"),
            }
            expect_front += 1;
        }
        assert_eq!(mb.bytes_used(), mb.len() as u64 * msg_sz);
    }
    // The ring wrapped many times: far more messages flowed through than
    // ever fit at once.
    assert!(next_block > 500);
    assert_eq!(mb.peak_bytes(), mb.capacity());
}

/// A full mailbox must exert backpressure without losing anything: the
/// rejected message is handed back intact, the queue is untouched, the
/// stall is counted, and the retry succeeds once a drain frees space.
#[test]
fn enqueue_on_full_backpressure_preserves_state() {
    let msg_sz = task_msg().wire_bytes() as u64;
    // Capacity sized so the two seed messages fill the region exactly.
    let mut mb = Mailbox::new(data_msg(0, 10).wire_bytes() as u64 + msg_sz);
    mb.push(data_msg(0, 10)).unwrap();
    mb.push(task_msg()).unwrap();
    let used_before = mb.bytes_used();
    assert_eq!(used_before, mb.capacity());

    // `try_push` hands the message back unchanged...
    let bounced = mb
        .try_push(data_msg(0, 99))
        .expect("mailbox should be full");
    match bounced {
        Message::Data(d, _) => assert_eq!(d.block.0, 99),
        other => panic!("bounced message mutated: {other:?}"),
    }
    // ...and the mailbox is exactly as it was.
    assert_eq!(mb.bytes_used(), used_before);
    assert_eq!(mb.len(), 2);
    assert_eq!(mb.stalls(), 1);

    // `push` reports the same condition as an error with the free bytes.
    let err = mb.push(task_msg()).unwrap_err();
    assert_eq!(err.free, 0);
    assert_eq!(mb.stalls(), 2);

    // After a drain frees space the retry goes through.
    assert_eq!(mb.drain_up_to(u32::MAX).len(), 2);
    mb.push(task_msg()).expect("space was freed");
    assert_eq!(mb.len(), 1);
}

fn count_events(recs: &[ndpb_trace::TraceRecord], name: &str) -> usize {
    recs.iter().filter(|r| r.event.name() == name).count()
}

/// The traced push paths must emit `mailbox-full` exactly once per
/// contiguous full episode — retries while still full stay silent, and
/// only a drain re-arms the latch for the next episode.
#[test]
fn full_event_emitted_once_per_stall_episode() {
    let msg_sz = task_msg().wire_bytes() as u64;
    let mut mb = Mailbox::new(msg_sz);
    let mut rec = RingRecorder::new(64);
    let comp = ComponentId::Unit(7);
    let t = |ticks| SimTime::from_ticks(ticks);

    mb.push_traced(task_msg(), t(0), comp, Some(&mut rec))
        .unwrap();
    // First rejection of the episode: one mailbox-full event...
    mb.push_traced(task_msg(), t(1), comp, Some(&mut rec))
        .unwrap_err();
    // ...retries while still full (either push flavour) add nothing.
    mb.push_traced(task_msg(), t(2), comp, Some(&mut rec))
        .unwrap_err();
    assert!(mb
        .try_push_traced(task_msg(), t(3), comp, Some(&mut rec))
        .is_some());
    let recs = rec.take_records();
    assert_eq!(count_events(&recs, "mailbox-enqueue"), 1);
    assert_eq!(count_events(&recs, "mailbox-full"), 1, "{recs:?}");
    assert_eq!(mb.stalls(), 3, "every retry still counts as a stall");

    // Draining ends the episode; the next full period emits exactly one
    // more event.
    assert_eq!(mb.drain_up_to(u32::MAX).len(), 1);
    mb.push_traced(task_msg(), t(4), comp, Some(&mut rec))
        .unwrap();
    mb.push_traced(task_msg(), t(5), comp, Some(&mut rec))
        .unwrap_err();
    mb.push_traced(task_msg(), t(6), comp, Some(&mut rec))
        .unwrap_err();
    let recs = rec.take_records();
    assert_eq!(count_events(&recs, "mailbox-full"), 1);
    let full = recs
        .iter()
        .find(|r| r.event.name() == "mailbox-full")
        .unwrap();
    assert_eq!(full.at.ticks(), 5, "event stamps the first rejection");
    match full.event {
        TraceEvent::MailboxFull { needed, used } => {
            assert_eq!(needed, task_msg().wire_bytes());
            assert_eq!(used, msg_sz);
        }
        other => panic!("wrong payload {other:?}"),
    }
}

/// A successful enqueue also clears the latch (space may be freed by the
/// consumer side between retries), so the next full period is a new
/// episode even without an intervening drain call.
#[test]
fn successful_push_rearms_full_latch() {
    let msg_sz = task_msg().wire_bytes() as u64;
    let mut mb = Mailbox::new(msg_sz);
    let mut rec = RingRecorder::new(64);
    let comp = ComponentId::Bridge(0);
    let t = |ticks| SimTime::from_ticks(ticks);

    mb.push_traced(task_msg(), t(0), comp, Some(&mut rec))
        .unwrap();
    mb.push_traced(task_msg(), t(1), comp, Some(&mut rec))
        .unwrap_err();
    mb.drain_up_to(u32::MAX);
    // Episode 2: fill, reject.
    mb.push_traced(task_msg(), t(2), comp, Some(&mut rec))
        .unwrap();
    mb.push_traced(task_msg(), t(3), comp, Some(&mut rec))
        .unwrap_err();
    let recs = rec.take_records();
    assert_eq!(count_events(&recs, "mailbox-full"), 2);
    assert_eq!(count_events(&recs, "mailbox-enqueue"), 2);
}
