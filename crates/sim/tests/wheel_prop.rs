//! Property tests for the two-tier timer-wheel event queue.
//!
//! The queue's determinism contract — pops come out in strictly
//! nondecreasing `(time, seq)` order, where `seq` is global schedule
//! order — is checked against a deliberately dumb reference model (a
//! flat list scanned for its minimum) over randomized workloads that
//! exercise every storage path: same-tick bucket FIFO, near-horizon
//! buckets, far-future overflow-heap entries, events landing exactly at
//! `now`, and interleaved pops that slide the wheel window mid-stream.

use ndpb_sim::wheel::WHEEL_SLOTS;
use ndpb_sim::{EventQueue, SimRng, SimTime};

/// Reference model: every scheduled event in a flat list; popping scans
/// for the minimum `(time, seq)`. Obviously correct, O(n) per pop.
#[derive(Default)]
struct RefModel {
    pending: Vec<(u64, u64, u32)>, // (ticks, seq, id)
    seq: u64,
}

impl RefModel {
    fn schedule(&mut self, at: u64, id: u32) {
        self.pending.push((at, self.seq, id));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)?;
        let (t, _, id) = self.pending.swap_remove(i);
        Some((t, id))
    }
}

/// One random offset, mixing all tiers of the queue:
/// same-tick (`0`), near horizon, just-past-horizon, and far future.
fn random_offset(rng: &mut SimRng) -> u64 {
    match rng.next_below(10) {
        0 => 0,                                                                // lands at `now`
        1..=4 => rng.next_below(64),                                           // near bucket
        5..=7 => rng.next_below(WHEEL_SLOTS as u64),                           // anywhere in window
        8 => WHEEL_SLOTS as u64 + rng.next_below(64),                          // just past horizon
        _ => WHEEL_SLOTS as u64 * rng.next_below(5) + rng.next_below(100_000), // far
    }
}

#[test]
fn random_schedules_pop_identically_to_reference_model() {
    for seed in 0..8u64 {
        let mut rng = SimRng::new(0xF00D + seed);
        let mut q = EventQueue::new();
        let mut model = RefModel::default();
        let mut id = 0u32;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..4_000 {
            // Bias toward scheduling so the queue stays populated, but
            // interleave enough pops to advance `now` through several
            // wheel revolutions.
            if rng.chance(0.6) || model.pending.is_empty() {
                // Duplicate ticks on purpose: reuse the previous offset
                // sometimes so bucket FIFO order is exercised.
                let at = q.now().ticks() + random_offset(&mut rng);
                let copies = if rng.chance(0.2) { 3 } else { 1 };
                for _ in 0..copies {
                    q.schedule(SimTime::from_ticks(at), id);
                    model.schedule(at, id);
                    id += 1;
                }
            } else {
                popped.push(q.pop().map(|(t, e)| (t.ticks(), e)));
                expected.push(model.pop());
            }
        }
        // Drain both completely.
        loop {
            let got = q.pop().map(|(t, e)| (t.ticks(), e));
            let want = model.pop();
            let done = got.is_none() && want.is_none();
            popped.push(got);
            expected.push(want);
            if done {
                break;
            }
        }
        assert_eq!(popped, expected, "divergence from reference (seed {seed})");
    }
}

#[test]
fn pop_order_is_nondecreasing_time_and_fifo_within_tick() {
    let mut rng = SimRng::new(99);
    let mut q = EventQueue::new();
    for id in 0..2_000u64 {
        q.schedule(
            SimTime::from_ticks(q.now().ticks() + random_offset(&mut rng)),
            id,
        );
        if rng.chance(0.3) {
            q.pop();
        }
    }
    let mut prev: Option<(SimTime, u64)> = None;
    let mut last_per_tick: Option<(SimTime, u64)> = None;
    while let Some((t, e)) = q.pop() {
        if let Some((pt, _)) = prev {
            assert!(t >= pt, "time went backwards: {t:?} after {pt:?}");
        }
        // Within one tick, ids that were scheduled in order must pop in
        // order (FIFO). Ids scheduled later *while draining* can have
        // larger values; the reference-model test covers full ordering,
        // this one just pins the monotone-time invariant plus per-tick
        // monotone seq.
        if let Some((lt, le)) = last_per_tick {
            if lt == t {
                assert!(e > le, "same-tick FIFO violated: {e} after {le}");
            }
        }
        last_per_tick = Some((t, e));
        prev = Some((t, e));
    }
}

#[test]
fn horizon_wraparound_keeps_revolutions_apart() {
    // Two events WHEEL_SLOTS ticks apart map to the same wheel slot.
    // The earlier one sits in the near window; the later one must wait
    // in the overflow tier (never the same bucket) and pop second, even
    // after the window slides across the slot multiple times.
    let mut q = EventQueue::new();
    let slots = WHEEL_SLOTS as u64;
    for rev in 0..4u64 {
        q.schedule(SimTime::from_ticks(17 + rev * slots), rev);
    }
    // Interleave filler so pops slide `now` through whole revolutions.
    for i in 0..4 * WHEEL_SLOTS as u64 {
        q.schedule(SimTime::from_ticks(i), 100 + i);
    }
    let mut revs_seen = Vec::new();
    while let Some((t, e)) = q.pop() {
        if e < 100 {
            assert_eq!(t.ticks(), 17 + e * slots, "revolution event mistimed");
            revs_seen.push(e);
        }
    }
    assert_eq!(revs_seen, [0, 1, 2, 3]);
}

#[test]
fn schedule_exactly_at_horizon_boundary() {
    // `now + WHEEL_SLOTS` is the first tick the near window cannot
    // hold; one tick earlier is the last it can. Both must round-trip.
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_ticks(50), 0u32); // advance now to 50 first
    assert_eq!(q.pop().unwrap().1, 0);
    let now = q.now().ticks();
    q.schedule(SimTime::from_ticks(now + WHEEL_SLOTS as u64), 2);
    q.schedule(SimTime::from_ticks(now + WHEEL_SLOTS as u64 - 1), 1);
    assert_eq!(q.pop().unwrap().1, 1);
    assert_eq!(q.pop().unwrap().1, 2);
    assert!(q.pop().is_none());
}

#[test]
#[should_panic(expected = "scheduled event in the past")]
fn scheduling_before_now_panics() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_ticks(10), ());
    q.pop();
    q.schedule(SimTime::from_ticks(9), ());
}

// ---- batched same-tick drains (`pop_run`) ------------------------------
//
// The batched dispatch loop replaces repeated `pop` calls with
// `pop_run`, so these properties pin the tentpole contract: draining a
// queue through runs yields the byte-identical event sequence, run
// timestamps match the events they carry, and a run never spans ticks —
// over randomized schedules that cross the horizon (wrap-around) and
// migrate events from the overflow heap into the near window.

/// Builds two identically-scheduled queues from one random script,
/// returning (batched queue, single-pop queue).
fn twin_queues(seed: u64, ops: usize) -> (EventQueue<u32>, EventQueue<u32>) {
    let mut rng = SimRng::new(seed);
    let mut a = EventQueue::new();
    let mut b = EventQueue::new();
    let mut id = 0u32;
    for _ in 0..ops {
        let at = a.now().ticks() + random_offset(&mut rng);
        let copies = if rng.chance(0.25) { 4 } else { 1 };
        for _ in 0..copies {
            a.schedule(SimTime::from_ticks(at), id);
            b.schedule(SimTime::from_ticks(at), id);
            id += 1;
        }
        // Interleaved draining slides the window so later schedules
        // exercise wrap-around and overflow→near migration in both.
        if rng.chance(0.3) {
            let mut run = Vec::new();
            a.pop_run(&mut run);
            for _ in 0..run.len() {
                b.pop();
            }
        }
    }
    (a, b)
}

#[test]
fn batched_drain_is_byte_identical_to_single_pops() {
    for seed in 0..8u64 {
        let (mut a, mut b) = twin_queues(0xBA7C + seed, 3_000);
        let mut batched = Vec::new();
        let mut run = Vec::new();
        while let Some(at) = a.pop_run(&mut run) {
            for &e in &run {
                batched.push((at.ticks(), e));
            }
            run.clear();
        }
        let mut single = Vec::new();
        while let Some((t, e)) = b.pop() {
            single.push((t.ticks(), e));
        }
        assert_eq!(batched, single, "pop_run diverged from pop (seed {seed})");
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a.popped(), b.popped());
    }
}

#[test]
fn runs_never_span_ticks_and_clock_matches() {
    for seed in 0..4u64 {
        let (mut q, _) = twin_queues(0x5EED + seed, 2_000);
        let mut run = Vec::new();
        let mut prev: Option<u64> = None;
        while let Some(at) = q.pop_run(&mut run) {
            assert!(!run.is_empty(), "empty run returned Some");
            assert_eq!(q.now(), at, "clock must land on the run's tick");
            if let Some(p) = prev {
                assert!(at.ticks() >= p, "run time went backwards");
            }
            // All events of one run share one tick by construction; ids
            // within it are strictly increasing (same-tick FIFO).
            for w in run.windows(2) {
                assert!(w[0] < w[1], "same-tick FIFO violated inside a run");
            }
            prev = Some(at.ticks());
            run.clear();
        }
    }
}

#[test]
fn split_tick_runs_continue_on_the_next_call() {
    // An event just inside the horizon and one far beyond it can share
    // a tick once the window slides; the near/overflow split means one
    // tick may take several runs. The concatenation must still be the
    // FIFO order.
    let slots = WHEEL_SLOTS as u64;
    let mut q = EventQueue::new();
    let tick = slots + 40;
    q.schedule(SimTime::from_ticks(3), 0u32); // advances the window
    q.schedule(SimTime::from_ticks(tick), 1); // overflow at schedule time
    q.schedule(SimTime::from_ticks(3), 2);
    q.schedule(SimTime::from_ticks(tick), 3); // also overflow
    let mut order = Vec::new();
    let mut run = Vec::new();
    while let Some(at) = q.pop_run(&mut run) {
        for &e in &run {
            order.push((at.ticks(), e));
        }
        run.clear();
    }
    assert_eq!(order, [(3, 0), (3, 2), (tick, 1), (tick, 3)]);
}

#[test]
fn sharded_batched_drain_matches_sharded_single_pops() {
    use ndpb_sim::ShardedEventQueue;
    for &shards in &[1usize, 2, 3, 4] {
        for seed in 0..4u64 {
            let mut rng = SimRng::new(0xD0_0D + seed);
            let mut a = ShardedEventQueue::new(shards);
            let mut b = ShardedEventQueue::new(shards);
            for id in 0..2_000u32 {
                let at = a.now().ticks() + random_offset(&mut rng);
                let shard = rng.next_below(shards as u64) as usize;
                a.schedule(SimTime::from_ticks(at), shard, id);
                b.schedule(SimTime::from_ticks(at), shard, id);
                if rng.chance(0.3) {
                    let mut run = Vec::new();
                    a.pop_run(&mut run);
                    for _ in 0..run.len() {
                        b.pop();
                    }
                }
            }
            let mut batched = Vec::new();
            let mut run = Vec::new();
            while let Some(at) = a.pop_run(&mut run) {
                for &e in &run {
                    batched.push((at.ticks(), e));
                }
                run.clear();
            }
            let mut single = Vec::new();
            while let Some((t, e)) = b.pop() {
                single.push((t.ticks(), e));
            }
            assert_eq!(
                batched, single,
                "sharded pop_run diverged (shards {shards}, seed {seed})"
            );
            assert_eq!(a.popped(), b.popped());
        }
    }
}
