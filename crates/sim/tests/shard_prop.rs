//! Property tests for the sharded conservative parallel-DES engine
//! (DESIGN.md §9), mirroring `wheel_prop.rs`'s differential style:
//!
//! * [`ShardedEventQueue`] under random cross-shard schedules pops
//!   byte-identically to a deliberately dumb scan-minimum single-list
//!   reference — the exact-merge contract the system simulator rides.
//! * [`WindowedEngine`] under random message cascades produces the same
//!   per-shard handle logs as an independently written *serial*
//!   implementation of the same windowed protocol, across shard counts
//!   and reruns.
//! * The reference asserts the conservative invariants on every step:
//!   no cross-shard message is delivered before the minimum hop latency
//!   (the lookahead), every window contains the globally earliest
//!   pending event (no shard starves, no empty window spins), and every
//!   spawned message is eventually handled.

use ndpb_sim::shard::{Outbox, ShardLogic, ShardedEventQueue, WindowedEngine};
use ndpb_sim::wheel::WHEEL_SLOTS;
use ndpb_sim::{SimRng, SimTime};

// ---- exact-merge mode: ShardedEventQueue vs scan-minimum list -----------

/// Reference model: every scheduled event in one flat list; popping
/// scans for the minimum `(time, seq)`. Shard assignment is ignored —
/// which is the point: it must be invisible.
#[derive(Default)]
struct RefQueue {
    pending: Vec<(u64, u64, u32)>, // (ticks, seq, id)
    seq: u64,
}

impl RefQueue {
    fn schedule(&mut self, at: u64, id: u32) {
        self.pending.push((at, self.seq, id));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)?;
        let (t, _, id) = self.pending.swap_remove(i);
        Some((t, id))
    }
}

/// One random offset mixing all wheel tiers (same shape as
/// `wheel_prop::random_offset`).
fn random_offset(rng: &mut SimRng) -> u64 {
    match rng.next_below(10) {
        0 => 0,
        1..=4 => rng.next_below(64),
        5..=7 => rng.next_below(WHEEL_SLOTS as u64),
        8 => WHEEL_SLOTS as u64 + rng.next_below(64),
        _ => WHEEL_SLOTS as u64 * rng.next_below(5) + rng.next_below(100_000),
    }
}

#[test]
fn random_cross_shard_schedules_pop_identically_to_reference_model() {
    for &shards in &[1usize, 2, 3, 5] {
        for seed in 0..4u64 {
            let mut rng = SimRng::new(0x5AD ^ (seed << 8) ^ shards as u64);
            let mut q = ShardedEventQueue::new(shards);
            let mut model = RefQueue::default();
            let mut id = 0u32;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..3_000 {
                if rng.chance(0.6) || model.pending.is_empty() {
                    let at = q.now().ticks() + random_offset(&mut rng);
                    let copies = if rng.chance(0.2) { 3 } else { 1 };
                    for _ in 0..copies {
                        // Ties on purpose: equal-time events spread over
                        // different shards must still pop in global
                        // schedule order.
                        q.schedule(
                            SimTime::from_ticks(at),
                            rng.next_below(shards as u64) as usize,
                            id,
                        );
                        model.schedule(at, id);
                        id += 1;
                    }
                } else {
                    popped.push(q.pop().map(|(t, e)| (t.ticks(), e)));
                    expected.push(model.pop());
                }
            }
            loop {
                let got = q.pop().map(|(t, e)| (t.ticks(), e));
                let want = model.pop();
                let done = got.is_none() && want.is_none();
                popped.push(got);
                expected.push(want);
                if done {
                    break;
                }
            }
            assert_eq!(
                popped, expected,
                "divergence from reference (shards={shards} seed={seed})"
            );
        }
    }
}

/// The system simulator places every parallel window from two queue
/// primitives: [`ShardedEventQueue::min_head_key`] — the safe horizon,
/// the earliest `(time, seq)` key any lane could execute — and
/// [`ShardedEventQueue::shards_with_head_below`] — how many lanes
/// would be busy before a stop key. Pin both against a deliberately
/// dumb serial scan over a flat mirror list, under schedules with
/// randomized hop latencies (same-tick through wheel-overflow
/// offsets), interleaved pops, and external pops (the windowed
/// engine's heap/staging dispatches).
#[test]
fn safe_horizon_matches_serial_scan_minimum() {
    for &shards in &[1usize, 2, 4, 8] {
        for seed in 0..4u64 {
            let mut rng = SimRng::new(0x5AFE ^ (seed << 8) ^ shards as u64);
            let mut q = ShardedEventQueue::new(shards);
            let mut mirror: Vec<(u64, u64, usize)> = Vec::new(); // (ticks, seq, shard)
            for _ in 0..2_000 {
                let scan_min = mirror.iter().map(|&(t, s, _)| (t, s)).min();
                assert_eq!(
                    q.min_head_key().map(|(t, s)| (t.ticks(), s)),
                    scan_min,
                    "horizon diverged from the scan minimum (shards={shards} seed={seed})"
                );
                // Any prospective stop key — including keys below, at,
                // and above the horizon — must count exactly the
                // shards whose scan-minimum head precedes it.
                let stop_t = q.now().ticks() + random_offset(&mut rng);
                let stop = (SimTime::from_ticks(stop_t), rng.next_below(u64::MAX));
                let want = (0..shards)
                    .filter(|&sh| {
                        mirror
                            .iter()
                            .filter(|&&(_, _, s)| s == sh)
                            .map(|&(t, s, _)| (t, s))
                            .min()
                            .is_some_and(|k| (SimTime::from_ticks(k.0), k.1) < stop)
                    })
                    .count();
                assert_eq!(
                    q.shards_with_head_below(stop),
                    want,
                    "busy-lane count diverged (shards={shards} seed={seed})"
                );
                match rng.next_below(10) {
                    // Schedule with a random hop latency.
                    0..=5 => {
                        let at = q.now().ticks() + random_offset(&mut rng);
                        let sh = rng.next_below(shards as u64) as usize;
                        mirror.push((at, q.seq(), sh));
                        q.schedule(SimTime::from_ticks(at), sh, ());
                    }
                    // Pop through the wheels.
                    6..=8 => {
                        if let Some((t, ())) = q.pop() {
                            let i = mirror
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, &(t, s, _))| (t, s))
                                .map(|(i, _)| i)
                                .expect("mirror tracks the queue");
                            let (mt, _, _) = mirror.swap_remove(i);
                            assert_eq!(mt, t.ticks(), "popped time diverged");
                        }
                    }
                    // External pop at the horizon (a staged/heap
                    // dispatch): clock advances, heads untouched.
                    _ => {
                        if let Some((t, _)) = q.min_head_key() {
                            q.note_external_pop(t);
                        }
                    }
                }
            }
        }
    }
}

// ---- windowed mode: WindowedEngine vs serial windowed reference ---------

const LOOKAHEAD: u64 = 16;
const FANOUT: u64 = 3;
const FUEL: u32 = 5;

/// A message in the random cascade. `id` is a tree address (child `i`
/// of `p` is `p * (FANOUT + 1) + i + 1`; roots are `1..=shards ≤ 4`, so
/// addresses are globally unique) and everything a message does —
/// child count, destinations, delays — is a pure function of
/// `(run_seed, id)`. Behavior therefore cannot depend on execution
/// interleaving, only on which messages exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Msg {
    id: u64,
    fuel: u32,
}

/// The cascade rule shared verbatim by the parallel logic and the
/// serial reference. Returns `(local, remote)` emissions for handling
/// `msg` on shard `me` at time `now`.
#[allow(clippy::type_complexity)]
fn children(
    run_seed: u64,
    me: usize,
    n: usize,
    now: u64,
    msg: Msg,
) -> (Vec<(u64, Msg)>, Vec<(u64, usize, Msg)>) {
    let (mut local, mut remote) = (Vec::new(), Vec::new());
    if msg.fuel == 0 {
        return (local, remote);
    }
    let mut rng = SimRng::new(run_seed ^ msg.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for i in 0..rng.next_below(FANOUT + 1) {
        let child = Msg {
            id: msg.id * (FANOUT + 1) + i + 1,
            fuel: msg.fuel - 1,
        };
        let dst = rng.next_below(n as u64) as usize;
        let off = rng.next_below(3 * LOOKAHEAD);
        if dst == me {
            local.push((now + off, child));
        } else {
            remote.push((now + LOOKAHEAD + off, dst, child));
        }
    }
    (local, remote)
}

struct Node {
    me: usize,
    n: usize,
    run_seed: u64,
    log: Vec<(u64, u64)>, // (time, id)
}

impl ShardLogic for Node {
    type Event = Msg;
    fn handle(&mut self, now: SimTime, msg: Msg, out: &mut Outbox<'_, Msg>) {
        self.log.push((now.ticks(), msg.id));
        let (local, remote) = children(self.run_seed, self.me, self.n, now.ticks(), msg);
        for (at, m) in local {
            out.local(SimTime::from_ticks(at), m);
        }
        for (at, dst, m) in remote {
            out.remote(SimTime::from_ticks(at), dst, m);
        }
    }
}

struct RefEnv {
    at: u64,
    src: usize,
    dst: usize,
    seq: u64,
    emitted_at: u64,
    msg: Msg,
}

/// A from-scratch serial implementation of the windowed protocol:
/// flat scan-minimum pending lists instead of timer wheels, one thread,
/// explicit round loop. Checks the conservative invariants inline.
struct SerialRef {
    run_seed: u64,
    pending: Vec<Vec<(u64, u64, Msg)>>, // per shard: (at, seq, msg)
    now: Vec<u64>,
    seq: Vec<u64>,
    emit_seq: Vec<u64>,
    inflight: Vec<RefEnv>,
    logs: Vec<Vec<(u64, u64)>>,
    spawned: u64,
    handled: u64,
}

impl SerialRef {
    fn new(run_seed: u64, n: usize) -> Self {
        SerialRef {
            run_seed,
            pending: vec![Vec::new(); n],
            now: vec![0; n],
            seq: vec![0; n],
            emit_seq: vec![0; n],
            inflight: Vec::new(),
            logs: vec![Vec::new(); n],
            spawned: 0,
            handled: 0,
        }
    }

    fn seed(&mut self, shard: usize, at: u64, msg: Msg) {
        let s = self.seq[shard];
        self.seq[shard] += 1;
        self.pending[shard].push((at, s, msg));
        self.spawned += 1;
    }

    fn run(&mut self) {
        let n = self.pending.len();
        loop {
            // Window placement: the globally earliest pending time over
            // wheel contents AND undelivered envelopes.
            let gmin = self
                .pending
                .iter()
                .flatten()
                .map(|&(t, _, _)| t)
                .chain(self.inflight.iter().map(|e| e.at))
                .min();
            let Some(gmin) = gmin else { break };
            let ws = gmin / LOOKAHEAD * LOOKAHEAD;
            let we = ws + LOOKAHEAD;
            assert!(
                ws <= gmin && gmin < we,
                "window [{ws},{we}) must contain the global minimum {gmin}"
            );
            // Deliver last round's envelopes in canonical per-destination
            // (time, src_shard, seq) order, stamping local seqs.
            let mut deliver = std::mem::take(&mut self.inflight);
            deliver.sort_by_key(|e| (e.dst, e.at, e.src, e.seq));
            for e in deliver {
                assert!(
                    e.at >= e.emitted_at + LOOKAHEAD,
                    "cross-shard message beat the hop latency: emitted {} delivered {}",
                    e.emitted_at,
                    e.at
                );
                let s = self.seq[e.dst];
                self.seq[e.dst] += 1;
                self.pending[e.dst].push((e.at, s, e.msg));
            }
            // Execute every shard's slice of the window.
            for me in 0..n {
                loop {
                    let next = self.pending[me]
                        .iter()
                        .enumerate()
                        .filter(|(_, &(t, _, _))| t < we)
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, _)| i);
                    let Some(i) = next else { break };
                    let (at, _, msg) = self.pending[me].swap_remove(i);
                    assert!(at >= self.now[me], "shard {me} time went backwards");
                    assert!(at >= ws, "event at {at} predates its window start {ws}");
                    self.now[me] = at;
                    self.logs[me].push((at, msg.id));
                    self.handled += 1;
                    let (local, remote) = children(self.run_seed, me, n, at, msg);
                    for (lat, m) in local {
                        let s = self.seq[me];
                        self.seq[me] += 1;
                        self.pending[me].push((lat, s, m));
                        self.spawned += 1;
                    }
                    for (rat, dst, m) in remote {
                        let es = self.emit_seq[me];
                        self.emit_seq[me] += 1;
                        self.inflight.push(RefEnv {
                            at: rat,
                            src: me,
                            dst,
                            seq: es,
                            emitted_at: at,
                            msg: m,
                        });
                        self.spawned += 1;
                    }
                }
            }
        }
        assert_eq!(
            self.handled, self.spawned,
            "starvation: a spawned message was never handled"
        );
    }
}

fn cascade(run_seed: u64, n: usize) -> WindowedEngine<Node> {
    let logics = (0..n)
        .map(|me| Node {
            me,
            n,
            run_seed,
            log: Vec::new(),
        })
        .collect();
    let mut eng = WindowedEngine::new(logics, SimTime::from_ticks(LOOKAHEAD));
    for j in 0..n {
        // Roots 1..=n stay outside the child address space (children of
        // any live id are ≥ FANOUT + 2) as long as n ≤ FANOUT + 1.
        eng.seed(
            j,
            SimTime::from_ticks(3 * j as u64 + 1),
            Msg {
                id: j as u64 + 1,
                fuel: FUEL,
            },
        );
    }
    eng
}

#[test]
fn windowed_engine_matches_the_serial_reference() {
    for &n in &[1usize, 2, 3, 4] {
        for seed in 0..6u64 {
            let run_seed = 0xCA5CADE ^ (seed << 16) ^ n as u64;
            let parallel: Vec<Vec<(u64, u64)>> = cascade(run_seed, n)
                .run()
                .into_iter()
                .map(|l| l.log)
                .collect();
            let mut reference = SerialRef::new(run_seed, n);
            for j in 0..n {
                reference.seed(
                    j,
                    3 * j as u64 + 1,
                    Msg {
                        id: j as u64 + 1,
                        fuel: FUEL,
                    },
                );
            }
            reference.run();
            assert!(
                reference.handled >= n as u64,
                "every seeded shard must handle at least its root"
            );
            assert_eq!(
                parallel, reference.logs,
                "parallel/serial divergence (n={n} seed={seed}, {} events)",
                reference.handled
            );
        }
    }
}

#[test]
fn windowed_engine_is_deterministic_across_reruns() {
    for &n in &[2usize, 4] {
        let run_seed = 0xD5 ^ n as u64;
        let first: Vec<Vec<(u64, u64)>> = cascade(run_seed, n)
            .run()
            .into_iter()
            .map(|l| l.log)
            .collect();
        for _ in 0..3 {
            let again: Vec<Vec<(u64, u64)>> = cascade(run_seed, n)
                .run()
                .into_iter()
                .map(|l| l.log)
                .collect();
            assert_eq!(again, first, "rerun drifted (n={n})");
        }
    }
}
