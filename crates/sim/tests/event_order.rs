//! Regression tests pinning the event queue's same-tick ordering
//! contract.
//!
//! The simulator relies on two properties for determinism:
//!
//! 1. events at the same `SimTime` pop in first-scheduled order (FIFO),
//!    regardless of how the timer wheel stores them (bucket FIFO or
//!    overflow heap);
//! 2. an event scheduled *at* `now()` from inside a handler (i.e. while
//!    popping another event of the same tick) neither panics nor jumps
//!    ahead of events already pending at that tick.
//!
//! Property 2 is the subtle one: a naive `at > now` guard would panic,
//! and a queue without a sequence tie-break could pop the late arrival
//! before earlier same-tick events.

use ndpb_sim::{EventQueue, SimTime};

#[test]
fn same_tick_events_pop_fifo_under_interleaved_scheduling() {
    let mut q = EventQueue::new();
    // Interleave two ticks; FIFO must hold per tick, time order across.
    q.schedule(SimTime::from_ticks(20), "t20-a");
    q.schedule(SimTime::from_ticks(10), "t10-a");
    q.schedule(SimTime::from_ticks(20), "t20-b");
    q.schedule(SimTime::from_ticks(10), "t10-b");
    q.schedule(SimTime::from_ticks(10), "t10-c");
    let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
    assert_eq!(order, ["t10-a", "t10-b", "t10-c", "t20-a", "t20-b"]);
}

#[test]
fn scheduling_at_now_during_pop_does_not_panic() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_ticks(5), ());
    q.pop().unwrap();
    assert_eq!(q.now(), SimTime::from_ticks(5));
    // At exactly now(): legal (a handler chaining a zero-latency event).
    q.schedule(q.now(), ());
    q.schedule_after(SimTime::ZERO, ());
    assert_eq!(q.pop().unwrap().0, SimTime::from_ticks(5));
    assert_eq!(q.pop().unwrap().0, SimTime::from_ticks(5));
}

#[test]
fn handler_spawned_same_tick_events_run_after_pending_ones() {
    // Drive a miniature event loop: popping event 0 at tick 7 schedules
    // a new event at tick 7. The new event must run after the events
    // that were already queued for tick 7, and before tick 8.
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_ticks(7), 0u32);
    q.schedule(SimTime::from_ticks(7), 1);
    q.schedule(SimTime::from_ticks(7), 2);
    q.schedule(SimTime::from_ticks(8), 3);
    let mut order = Vec::new();
    while let Some((t, ev)) = q.pop() {
        order.push((t.ticks(), ev));
        if ev == 0 {
            // Same-tick chain, scheduled while now() == 7.
            q.schedule(q.now(), 100);
            q.schedule(q.now(), 101);
        }
    }
    assert_eq!(
        order,
        [(7, 0), (7, 1), (7, 2), (7, 100), (7, 101), (8, 3)],
        "same-tick arrivals must not overtake pending same-tick events"
    );
}

#[test]
fn recursive_same_tick_chains_stay_fifo() {
    // Each popped event at tick 3 spawns one follow-up at tick 3 until a
    // depth limit: the chain must interleave in schedule order and the
    // clock must never move backwards.
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_ticks(3), 0u32);
    let mut seen = Vec::new();
    while let Some((t, depth)) = q.pop() {
        assert_eq!(t, SimTime::from_ticks(3));
        assert!(t >= q.now());
        seen.push(depth);
        if depth < 9 {
            q.schedule(q.now(), depth + 1);
        }
    }
    assert_eq!(seen, (0..10).collect::<Vec<u32>>());
    assert_eq!(q.popped(), 10);
}

#[test]
fn fifo_survives_bucket_stress() {
    // Enough same-tick events to grow the per-tick bucket well past its
    // initial capacity; a tie-break by storage position instead of
    // sequence number would shuffle these.
    let mut q = EventQueue::new();
    for wave in 0..3u64 {
        for i in 0..500u64 {
            q.schedule(SimTime::from_ticks(wave), wave * 1000 + i);
        }
    }
    let mut prev = None;
    while let Some((_, v)) = q.pop() {
        if let Some(p) = prev {
            assert!(v > p, "popped {v} after {p}");
        }
        prev = Some(v);
    }
}
