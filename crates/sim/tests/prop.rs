//! Randomized property tests for the simulation kernel, driven by the
//! in-repo deterministic `SimRng` (no external dependencies, so the
//! workspace builds offline).

use ndpb_sim::{EventQueue, SimRng, SimTime};

const CASES: usize = 64;

/// The queue pops events in (time, insertion) order — i.e. exactly
/// a stable sort by timestamp.
#[test]
fn event_queue_matches_stable_sort() {
    let mut rng = SimRng::new(0x5EED_0001);
    for _ in 0..CASES {
        let n = 1 + rng.next_index(199);
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut expected: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.ticks(), i));
        }
        assert_eq!(got, expected);
    }
}

/// The clock never moves backwards.
#[test]
fn clock_is_monotone() {
    let mut rng = SimRng::new(0x5EED_0002);
    for _ in 0..CASES {
        let n = 1 + rng.next_index(199);
        let mut q = EventQueue::new();
        for _ in 0..n {
            q.schedule(SimTime::from_ticks(rng.next_below(10_000)), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}

/// `next_below` stays in range for arbitrary seeds and bounds.
#[test]
fn rng_next_below_in_range() {
    let mut meta = SimRng::new(0x5EED_0003);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(u64::MAX - 1);
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            assert!(rng.next_below(bound) < bound);
        }
    }
}

/// Shuffling preserves the multiset.
#[test]
fn shuffle_is_permutation() {
    let mut meta = SimRng::new(0x5EED_0004);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let len = meta.next_index(100);
        let mut v: Vec<u32> = (0..len).map(|_| meta.next_u64() as u32).collect();
        let mut rng = SimRng::new(seed);
        let mut orig = v.clone();
        rng.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        assert_eq!(orig, v);
    }
}

/// Time conversions: core cycles round-trip through ticks.
#[test]
fn core_cycle_round_trip() {
    let mut rng = SimRng::new(0x5EED_0005);
    for _ in 0..256 {
        let cycles = rng.next_below(1 << 40);
        let t = SimTime::from_core_cycles(cycles);
        assert_eq!(t.core_cycles(), cycles);
    }
    // Edges.
    assert_eq!(SimTime::from_core_cycles(0).core_cycles(), 0);
}

/// ns conversion never under-estimates (rounds up).
#[test]
fn ns_ceil_is_conservative() {
    let mut rng = SimRng::new(0x5EED_0006);
    for _ in 0..256 {
        let ns = rng.next_below(1 << 40);
        let t = SimTime::from_ns_ceil(ns);
        assert!(t.as_ns() >= ns as f64 - 1e-6);
        // And overshoots by less than one tick.
        assert!(t.as_ns() < ns as f64 + 0.42);
    }
}
