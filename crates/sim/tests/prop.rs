//! Property-based tests for the simulation kernel.

use ndpb_sim::{EventQueue, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The queue pops events in (time, insertion) order — i.e. exactly
    /// a stable sort by timestamp.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.ticks(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// The clock never moves backwards.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_ticks(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// `next_below` stays in range for arbitrary seeds and bounds.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut rng = SimRng::new(seed);
        let mut orig = v.clone();
        rng.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(orig, v);
    }

    /// Time conversions: core cycles round-trip through ticks.
    #[test]
    fn core_cycle_round_trip(cycles in 0u64..(1 << 40)) {
        let t = SimTime::from_core_cycles(cycles);
        prop_assert_eq!(t.core_cycles(), cycles);
    }

    /// ns conversion never under-estimates (rounds up).
    #[test]
    fn ns_ceil_is_conservative(ns in 0u64..(1 << 40)) {
        let t = SimTime::from_ns_ceil(ns);
        prop_assert!(t.as_ns() >= ns as f64 - 1e-6);
        // And overshoots by less than one tick.
        prop_assert!(t.as_ns() < ns as f64 + 0.42);
    }
}
