//! Sharded event queues: conservative parallel-DES building blocks.
//!
//! Two pieces live here, one per determinism regime:
//!
//! * [`ShardedEventQueue`] — N per-shard [`TimerWheel`]s merged through
//!   one global `(time, seq)` key. `seq` is assigned globally in
//!   schedule order and every pop takes the minimum `(time, seq)` over
//!   cached per-shard head keys, so the pop sequence is *identical* to
//!   a single [`EventQueue`](crate::EventQueue) for any shard count, by
//!   construction. This is the exact-merge (degenerate-window) mode the
//!   system simulator runs in: shard count is observationally invisible
//!   and results stay byte-identical to the serial engine.
//! * [`WindowedEngine`] — a lock-step windowed conservative engine
//!   (YAWNS/CMB-style). Shards advance in windows bounded by the
//!   minimum cross-shard hop latency (the *lookahead*), execute their
//!   windows on parallel threads, and exchange cross-shard messages at
//!   window barriers through per-`(src, dst)` FIFO channels merged in
//!   canonical `(time, src_shard, seq)` order. Differentially tested
//!   against a scan-minimum serial reference in
//!   `crates/sim/tests/shard_prop.rs`.
//!
//! See `DESIGN.md` §9 for the lookahead derivation and the merge-order
//! contract both pieces share.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// An event queue partitioned into per-shard timer wheels whose pop
/// order is byte-for-byte identical to a single [`EventQueue`].
///
/// Each event is scheduled onto a caller-chosen shard (in the system
/// simulator: the rank the event touches). Scheduling stamps a *global*
/// sequence number; popping compares the cached head key `(time, seq)`
/// of every shard and takes the minimum. Since a single queue pops in
/// exactly nondecreasing `(time, seq)` order, the merged sequence is
/// the same no matter how events are distributed across shards — the
/// property `tests/determinism.rs` pins end-to-end.
///
/// [`EventQueue`]: crate::EventQueue
///
/// # Example
///
/// ```
/// use ndpb_sim::shard::ShardedEventQueue;
/// use ndpb_sim::SimTime;
///
/// let mut q = ShardedEventQueue::new(2);
/// q.schedule(SimTime::from_ticks(5), 1, 'b');
/// q.schedule(SimTime::from_ticks(5), 0, 'c');
/// q.schedule(SimTime::from_ticks(1), 1, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    wheels: Vec<TimerWheel<E>>,
    /// Cached `(time, seq)` of each shard's earliest pending event.
    /// Maintained incrementally: a schedule can only improve its own
    /// shard's head, and a pop re-peeks only the shard it popped from.
    heads: Vec<Option<(SimTime, u64)>>,
    seq: u64,
    now: SimTime,
    /// Per-wheel scan clocks: the timestamp of each wheel's last pop.
    /// A wheel's circular near-tier scan is only correct from a base
    /// that is ≤ every event pending in *that* wheel; under windowed
    /// execution the wheels advance at different rates, so the global
    /// clock alone is not a valid base for every wheel. Insert/pop on
    /// wheel `s` always use `max(now, nows[s])` — in exact-merge mode
    /// `now >= nows[s]` holds and behavior is identical to a single
    /// global clock.
    nows: Vec<SimTime>,
    popped: u64,
}

impl<E> ShardedEventQueue<E> {
    /// Creates an empty queue with `shards` wheels and the clock at
    /// [`SimTime::ZERO`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::build(shards, TimerWheel::new)
    }

    /// Creates an empty queue whose wheels' near tiers initially cover
    /// at least `horizon` ticks (see [`TimerWheel::with_horizon`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_horizon(shards: usize, horizon: u64) -> Self {
        Self::build(shards, || TimerWheel::with_horizon(horizon))
    }

    fn build(shards: usize, mk: impl Fn() -> TimerWheel<E>) -> Self {
        assert!(shards > 0, "a sharded queue needs at least one shard");
        ShardedEventQueue {
            wheels: (0..shards).map(|_| mk()).collect(),
            heads: vec![None; shards],
            seq: 0,
            now: SimTime::ZERO,
            nows: vec![SimTime::ZERO; shards],
            popped: 0,
        }
    }

    /// Number of shards (fixed at construction).
    #[inline]
    pub fn shards(&self) -> usize {
        self.wheels.len()
    }

    /// Current simulation time: the timestamp of the most recently
    /// popped event (zero before the first pop). Global — all shards
    /// share one clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far across all shards.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending events across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheels.iter().map(TimerWheel::len).sum()
    }

    /// Whether no events are pending on any shard.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wheels.iter().all(TimerWheel::is_empty)
    }

    /// Schedules `event` at absolute time `at` on `shard`.
    ///
    /// The sequence number is global, so ties at one timestamp break in
    /// schedule order even across shards — exactly the single-queue
    /// FIFO contract.
    ///
    /// # Panics
    ///
    /// Panics if `at` is strictly earlier than the current time, or if
    /// `shard` is out of range.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, shard: usize, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let base = self.now.max(self.nows[shard]);
        self.wheels[shard].insert(base, at, seq, event);
        // Later seq: this event only becomes the shard head on a
        // strictly earlier timestamp.
        match self.heads[shard] {
            Some((t, _)) if t <= at => {}
            _ => self.heads[shard] = Some((at, seq)),
        }
    }

    /// Pops the globally next event — minimum `(time, seq)` over all
    /// shard heads — advancing the shared clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (s, head) in self.heads.iter().enumerate() {
            if let Some((t, q)) = *head {
                if best.is_none_or(|(bt, bq, _)| (t, q) < (bt, bq)) {
                    best = Some((t, q, s));
                }
            }
        }
        let (_, _, s) = best?;
        let base = self.now.max(self.nows[s]);
        let ((at, _seq, event), next) = self.wheels[s]
            .pop_with_key(base)
            .expect("cached head vanished");
        debug_assert!(at >= self.now);
        self.now = at;
        self.nows[s] = at;
        self.popped += 1;
        self.heads[s] = next;
        Some((at, event))
    }

    /// Pops a maximal run of globally-consecutive events from one
    /// shard — in exactly the order repeated [`pop`](Self::pop) calls
    /// would yield them — appending the events to `out` and advancing
    /// the shared clock to their common timestamp, which is returned.
    ///
    /// One scan over the cached heads finds both the winning shard
    /// *and* the best key on any other shard; the winner's wheel then
    /// drains its front bucket up to that bound
    /// ([`TimerWheel::pop_run`]), so the per-event cost of the batch is
    /// one `VecDeque` pop instead of a head scan + bitmap walk + heap
    /// peek. Equivalence with single pops holds because keys are
    /// globally unique and every event scheduled *during* the batch's
    /// dispatch gets a strictly larger seq at `at >= now`, i.e. it
    /// cannot order before anything already in the batch.
    #[inline]
    pub fn pop_run(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let mut best: Option<((SimTime, u64), usize)> = None;
        let mut second: Option<(SimTime, u64)> = None;
        for (s, head) in self.heads.iter().enumerate() {
            let Some(k) = *head else { continue };
            match best {
                Some((bk, _)) if bk < k => {
                    if second.is_none_or(|sk| k < sk) {
                        second = Some(k);
                    }
                }
                _ => {
                    second = best.map(|(bk, _)| bk);
                    best = Some((k, s));
                }
            }
        }
        let (_, s) = best?;
        let base = self.now.max(self.nows[s]);
        let before = out.len();
        let (at, next) = self.wheels[s]
            .pop_run(base, second, out)
            .expect("cached head vanished");
        debug_assert!(at >= self.now);
        self.now = at;
        self.nows[s] = at;
        self.popped += (out.len() - before) as u64;
        self.heads[s] = next;
        Some(at)
    }

    /// Timestamp of the next pending event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heads.iter().flatten().min().map(|&(t, _)| t)
    }

    /// Minimum `(time, seq)` key over all shard heads — the key the
    /// next [`pop`](Self::pop) would take, without popping it.
    #[inline]
    pub fn min_head_key(&self) -> Option<(SimTime, u64)> {
        self.heads.iter().flatten().min().copied()
    }

    /// How many shards have a pending event with key strictly below
    /// `key`. The windowed engine uses this to skip opening a parallel
    /// window (and paying its barrier) when at most one lane would have
    /// any work before the stop key.
    #[inline]
    pub fn shards_with_head_below(&self, key: (SimTime, u64)) -> usize {
        self.heads.iter().flatten().filter(|&&k| k < key).count()
    }

    /// Next global sequence number to be assigned (without consuming
    /// it). Every event already scheduled has a strictly smaller seq.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Consumes and returns the next global sequence number, exactly as
    /// [`schedule`](Self::schedule) would stamp it. Used by callers that
    /// keep time-equal events *outside* the wheels (the windowed
    /// engine's global-class heap) but must preserve the single
    /// schedule-order tie-break across both populations.
    #[inline]
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Records a pop that happened outside the wheels (an event the
    /// caller stored externally, e.g. on the windowed engine's
    /// global-class heap): advances the shared clock and the popped
    /// counter exactly as [`pop`](Self::pop) would have.
    #[inline]
    pub fn note_external_pop(&mut self, at: SimTime) {
        debug_assert!(at >= self.now, "external pop in the past");
        self.now = at;
        self.popped += 1;
    }

    /// Splits the queue into one pop-only [`ShardLane`] per shard, for
    /// a parallel window. Each lane independently drains *its own*
    /// wheel (it can never insert); when the window closes, fold the
    /// [`LaneOutcome`]s back with [`absorb_lanes`](Self::absorb_lanes).
    pub fn lane_views(&mut self) -> Vec<ShardLane<'_, E>> {
        let now = self.now;
        let heads = &self.heads;
        let nows = &self.nows;
        self.wheels
            .iter_mut()
            .enumerate()
            .map(|(s, wheel)| ShardLane {
                wheel,
                now: now.max(nows[s]),
                head: heads[s],
                popped: 0,
                shard: s,
            })
            .collect()
    }

    /// Folds parallel-window [`LaneOutcome`]s back into the queue:
    /// per-wheel clocks and cached heads take the lanes' final values
    /// and the popped counter absorbs the lanes' pops. The global clock
    /// is *not* advanced — the next leader pop does that.
    pub fn absorb_lanes(&mut self, outcomes: impl IntoIterator<Item = LaneOutcome>) {
        for o in outcomes {
            self.nows[o.shard] = o.now;
            self.heads[o.shard] = o.head;
            self.popped += o.popped;
        }
    }
}

/// A pop-only view of one shard's wheel, handed out by
/// [`ShardedEventQueue::lane_views`] for the duration of one parallel
/// window. The lane can peek and pop its own wheel but never insert —
/// window-created events stay in lane-local storage until the barrier,
/// which is what keeps the global sequence numbering serial-exact.
pub struct ShardLane<'a, E> {
    wheel: &'a mut TimerWheel<E>,
    /// This wheel's clock: timestamp of its last pop (the insert/scan
    /// base for the underlying wheel).
    pub now: SimTime,
    head: Option<(SimTime, u64)>,
    /// Events popped by this lane during the window.
    pub popped: u64,
    /// The shard index this lane drains.
    pub shard: usize,
}

impl<E> ShardLane<'_, E> {
    /// `(time, seq)` key of this wheel's earliest pending event.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.head
    }

    /// Pops this wheel's earliest event, advancing the lane clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.head?;
        let ((at, seq, event), next) = self
            .wheel
            .pop_with_key(self.now)
            .expect("cached lane head vanished");
        debug_assert!(at >= self.now);
        self.now = at;
        self.head = next;
        self.popped += 1;
        Some((at, seq, event))
    }

    /// Closes the lane, returning the state [`ShardedEventQueue::absorb_lanes`]
    /// folds back in.
    #[inline]
    pub fn finish(self) -> LaneOutcome {
        LaneOutcome {
            shard: self.shard,
            now: self.now,
            head: self.head,
            popped: self.popped,
        }
    }
}

/// Final state of a [`ShardLane`] after one parallel window.
#[derive(Debug, Clone, Copy)]
pub struct LaneOutcome {
    /// Shard index the lane drained.
    pub shard: usize,
    /// The wheel's clock after the lane's last pop.
    pub now: SimTime,
    /// The wheel's head key after the lane's last pop.
    pub head: Option<(SimTime, u64)>,
    /// Events the lane popped.
    pub popped: u64,
}

/// Places the next conservative window from per-shard minimum pending
/// times: the window is `lookahead` wide, aligned to multiples of it,
/// and chosen so it contains the globally earliest pending event —
/// `start = floor(min/lookahead) * lookahead`, `end = start + lookahead`.
///
/// Returns `None` when no shard has anything pending (the run is done).
/// This is the YAWNS-style horizon rule both [`WindowedEngine`] and the
/// system simulator's windowed mode share; the property suite pins it
/// against a serial scan-minimum reference with randomized hop
/// latencies.
///
/// # Panics
///
/// Panics if `lookahead` is zero.
pub fn safe_horizon(
    mins: impl IntoIterator<Item = Option<SimTime>>,
    lookahead: SimTime,
) -> Option<(SimTime, SimTime)> {
    assert!(
        lookahead > SimTime::ZERO,
        "safe horizon needs a positive lookahead"
    );
    let gmin = mins.into_iter().flatten().min()?;
    let la = lookahead.ticks();
    let start = SimTime::from_ticks(gmin.ticks() / la * la);
    Some((start, start + lookahead))
}

/// Per-shard behavior driven by the [`WindowedEngine`].
pub trait ShardLogic: Send {
    /// Event payload delivered to [`handle`](Self::handle).
    type Event: Send;

    /// Handles one event at `now`, emitting follow-up events through
    /// `out` ([`Outbox::local`] for same-shard, [`Outbox::remote`] for
    /// cross-shard).
    fn handle(&mut self, now: SimTime, ev: Self::Event, out: &mut Outbox<'_, Self::Event>);
}

/// A cross-shard message in flight: emitted during one window, merged
/// into the destination's wheel at the next window barrier.
#[derive(Debug)]
struct Envelope<E> {
    at: SimTime,
    src: usize,
    dst: usize,
    /// Per-source emission counter: the canonical-merge tie-breaker.
    seq: u64,
    ev: E,
}

/// Handler-side view of a shard's outgoing schedule during one event.
///
/// Local events may land at any time at or after the current event.
/// Cross-shard events must arrive at least one *lookahead* later — that
/// bound is exactly what makes the lock-step window safe to execute in
/// parallel (no message emitted inside a window can be due inside it).
pub struct Outbox<'a, E> {
    src: usize,
    now: SimTime,
    lookahead: SimTime,
    local: &'a mut Vec<(SimTime, E)>,
    remote: &'a mut Vec<Envelope<E>>,
    emit_seq: &'a mut u64,
    min_remote: &'a mut Option<SimTime>,
}

impl<E> Outbox<'_, E> {
    /// Timestamp of the event being handled.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` on this shard at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current event.
    pub fn local(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "local event scheduled in the past: at={:?} now={:?}",
            at,
            self.now
        );
        self.local.push((at, ev));
    }

    /// Sends `ev` to shard `dst`, arriving at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this shard, or if `at` violates the engine's
    /// lookahead — a cross-shard message may never arrive sooner than
    /// its minimum hop latency.
    pub fn remote(&mut self, at: SimTime, dst: usize, ev: E) {
        assert!(dst != self.src, "remote() to own shard {dst}; use local()");
        assert!(
            at >= self.now + self.lookahead,
            "cross-shard message under the lookahead: at={:?} now={:?} lookahead={:?}",
            at,
            self.now,
            self.lookahead
        );
        let seq = *self.emit_seq;
        *self.emit_seq += 1;
        *self.min_remote = Some(match *self.min_remote {
            Some(m) => m.min(at),
            None => at,
        });
        self.remote.push(Envelope {
            at,
            src: self.src,
            dst,
            seq,
            ev,
        });
    }
}

/// A lock-step windowed conservative parallel-DES engine.
///
/// Each shard owns a [`ShardLogic`] and a [`TimerWheel`] and runs on
/// its own thread. Execution proceeds in global windows of width
/// `lookahead`, aligned to multiples of it: a window starts at
/// `floor(min pending time / lookahead) * lookahead`, so the window
/// containing the globally earliest pending event is always executed
/// next (no shard is ever starved, and empty stretches of virtual time
/// are skipped in one hop). Within a window every shard pops and
/// handles its own events independently — safe because cross-shard
/// messages arrive at least one lookahead after emission, i.e. never
/// inside the window they were emitted in.
///
/// At the window barrier, emitted envelopes move through per-
/// `(src, dst)` FIFO channels and each destination merges its inbound
/// batch in canonical `(time, src_shard, seq)` order before stamping
/// destination-local sequence numbers. That single rule makes the
/// parallel schedule deterministic: reruns and the serial reference
/// produce identical per-shard handle logs.
pub struct WindowedEngine<L: ShardLogic> {
    shards: Vec<ShardState<L>>,
    lookahead: SimTime,
}

struct ShardState<L: ShardLogic> {
    logic: L,
    wheel: TimerWheel<L::Event>,
    now: SimTime,
    /// Local insertion order — the FIFO tie-break within this wheel.
    seq: u64,
    /// Emission counter for outbound envelopes (canonical-merge key).
    emit_seq: u64,
}

impl<L: ShardLogic> WindowedEngine<L> {
    /// Creates an engine with one shard per element of `logics`.
    ///
    /// `lookahead` is the minimum cross-shard hop latency: the engine's
    /// window width and the bound [`Outbox::remote`] enforces.
    ///
    /// # Panics
    ///
    /// Panics if `logics` is empty or `lookahead` is zero.
    pub fn new(logics: Vec<L>, lookahead: SimTime) -> Self {
        assert!(
            !logics.is_empty(),
            "windowed engine needs at least one shard"
        );
        assert!(
            lookahead > SimTime::ZERO,
            "windowed engine needs a positive lookahead"
        );
        WindowedEngine {
            shards: logics
                .into_iter()
                .map(|logic| ShardState {
                    logic,
                    wheel: TimerWheel::new(),
                    now: SimTime::ZERO,
                    seq: 0,
                    emit_seq: 0,
                })
                .collect(),
            lookahead,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Seeds an initial event on `shard` at absolute time `at`.
    pub fn seed(&mut self, shard: usize, at: SimTime, ev: L::Event) {
        let st = &mut self.shards[shard];
        let seq = st.seq;
        st.seq += 1;
        st.wheel.insert(st.now, at, seq, ev);
    }

    /// Runs every shard to completion in parallel and returns the
    /// logics (in shard order) for inspection.
    ///
    /// Deterministic: the per-shard sequence of handled events is a
    /// pure function of the seeds and the logics, independent of thread
    /// scheduling. A panic inside a [`ShardLogic::handle`] is caught,
    /// the engine winds down at the next barrier, and the first panic
    /// payload is re-raised on the calling thread.
    pub fn run(self) -> Vec<L> {
        let WindowedEngine { shards, lookahead } = self;
        let n = shards.len();
        // Per-(src, dst) FIFO channels, double-buffered by round parity
        // so a destination drains round r-1's envelopes while round r's
        // writes land in the other buffer — no ordering race.
        type Channel<E> = [Mutex<Vec<Envelope<E>>>; 2];
        let chan: Vec<Vec<Channel<L::Event>>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                    .collect()
            })
            .collect();
        // Each shard's earliest pending time (wheel head or undelivered
        // emission), republished every round; the barrier leader takes
        // the global minimum to place the next window.
        let mins: Vec<Mutex<Option<SimTime>>> = shards
            .iter()
            .map(|st| Mutex::new(st.wheel.peek(st.now)))
            .collect();
        let window = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let panicked = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let barrier = Barrier::new(n);

        let logics = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(me, mut st)| {
                    let (chan, mins, window, done, panicked, panic_slot, barrier) = (
                        &chan,
                        &mins,
                        &window,
                        &done,
                        &panicked,
                        &panic_slot,
                        &barrier,
                    );
                    scope.spawn(move || {
                        let mut round: usize = 0;
                        let mut local: Vec<(SimTime, L::Event)> = Vec::new();
                        let mut remote: Vec<Envelope<L::Event>> = Vec::new();
                        loop {
                            if barrier.wait().is_leader() {
                                let horizon = safe_horizon(
                                    mins.iter().map(|m| *m.lock().unwrap()),
                                    lookahead,
                                );
                                match horizon {
                                    Some((ws, _)) if !panicked.load(Ordering::SeqCst) => {
                                        window.store(ws.ticks(), Ordering::SeqCst);
                                    }
                                    _ => done.store(true, Ordering::SeqCst),
                                }
                            }
                            barrier.wait();
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                            let ws = SimTime::from_ticks(window.load(Ordering::SeqCst));
                            let we = ws + lookahead;
                            // Merge last round's inbound envelopes in
                            // canonical order, stamping local seqs.
                            let mut inbox: Vec<Envelope<L::Event>> = Vec::new();
                            for from_src in chan {
                                inbox.append(&mut from_src[me][round & 1].lock().unwrap());
                            }
                            inbox.sort_by_key(|e| (e.at, e.src, e.seq));
                            for env in inbox {
                                let seq = st.seq;
                                st.seq += 1;
                                st.wheel.insert(st.now, env.at, seq, env.ev);
                            }
                            // Execute everything due inside [ws, we).
                            let mut min_remote: Option<SimTime> = None;
                            let caught = catch_unwind(AssertUnwindSafe(|| {
                                while let Some(t) = st.wheel.peek(st.now) {
                                    if t >= we {
                                        break;
                                    }
                                    let (at, _, ev) =
                                        st.wheel.pop(st.now).expect("peeked event vanished");
                                    st.now = at;
                                    let mut out = Outbox {
                                        src: me,
                                        now: at,
                                        lookahead,
                                        local: &mut local,
                                        remote: &mut remote,
                                        emit_seq: &mut st.emit_seq,
                                        min_remote: &mut min_remote,
                                    };
                                    st.logic.handle(at, ev, &mut out);
                                    for (lat, lev) in local.drain(..) {
                                        let seq = st.seq;
                                        st.seq += 1;
                                        st.wheel.insert(st.now, lat, seq, lev);
                                    }
                                }
                            }));
                            if let Err(payload) = caught {
                                panicked.store(true, Ordering::SeqCst);
                                let mut slot = panic_slot.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                            }
                            // Hand this round's emissions to their
                            // destinations for the next round's drain
                            // (push order preserves per-(src,dst) FIFO).
                            for env in remote.drain(..) {
                                let dst = env.dst;
                                chan[me][dst][(round + 1) & 1].lock().unwrap().push(env);
                            }
                            *mins[me].lock().unwrap() = match (st.wheel.peek(st.now), min_remote) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                (a, b) => a.or(b),
                            };
                            round += 1;
                        }
                        st
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(st) => st.logic,
                    Err(payload) => resume_unwind(payload),
                })
                .collect()
        });
        if let Some(payload) = panic_slot.lock().unwrap().take() {
            resume_unwind(payload);
        }
        logics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;
    use crate::rng::SimRng;
    use crate::wheel::WHEEL_SLOTS;

    /// The headline contract: for ANY shard assignment, the merged pop
    /// sequence equals a single queue's, byte for byte.
    #[test]
    fn sharded_pop_order_matches_single_queue() {
        for &shards in &[1usize, 2, 3, 4, 7] {
            let mut rng = SimRng::new(0xBEEF + shards as u64);
            let mut single = EventQueue::new();
            let mut sharded = ShardedEventQueue::with_horizon(shards, 128);
            let mut id = 0u32;
            let mut got = Vec::new();
            let mut want = Vec::new();
            for _ in 0..4_000 {
                if rng.chance(0.6) || single.is_empty() {
                    let off = match rng.next_below(8) {
                        0 => 0,
                        1..=4 => rng.next_below(64),
                        5..=6 => rng.next_below(WHEEL_SLOTS as u64),
                        _ => WHEEL_SLOTS as u64 * rng.next_below(4) + rng.next_below(10_000),
                    };
                    let at = SimTime::from_ticks(single.now().ticks() + off);
                    let shard = rng.next_below(shards as u64) as usize;
                    single.schedule(at, id);
                    sharded.schedule(at, shard, id);
                    id += 1;
                } else {
                    want.push(single.pop());
                    got.push(sharded.pop());
                }
            }
            loop {
                let w = single.pop();
                let g = sharded.pop();
                let end = w.is_none() && g.is_none();
                want.push(w);
                got.push(g);
                if end {
                    break;
                }
            }
            assert_eq!(got, want, "divergence at shards={shards}");
            assert_eq!(sharded.popped(), single.popped());
            assert_eq!(sharded.now(), single.now());
        }
    }

    #[test]
    fn counters_and_peek() {
        let mut q = ShardedEventQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ticks(9), 1, 'a');
        q.schedule(SimTime::from_ticks(4), 0, 'b');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(4), 'b')));
        assert_eq!(q.now(), SimTime::from_ticks(4));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(9), 'a')));
        assert_eq!(q.popped(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_time_ties_break_by_global_schedule_order_across_shards() {
        let mut q = ShardedEventQueue::new(3);
        for i in 0..30u32 {
            q.schedule(SimTime::from_ticks(7), (i % 3) as usize, i);
        }
        for i in 0..30 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_before_now_panics() {
        let mut q = ShardedEventQueue::new(2);
        q.schedule(SimTime::from_ticks(10), 0, ());
        q.pop();
        q.schedule(SimTime::from_ticks(5), 1, ());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedEventQueue::<()>::new(0);
    }

    // ---- windowed engine smoke tests (the property suite lives in
    // tests/shard_prop.rs) ------------------------------------------------

    /// Logs every handled event; forwards a token around the ring a
    /// fixed number of hops.
    #[derive(Clone)]
    struct Ring {
        me: usize,
        n: usize,
        log: Vec<(u64, u32)>,
    }

    impl ShardLogic for Ring {
        type Event = u32;
        fn handle(&mut self, now: SimTime, hop: u32, out: &mut Outbox<'_, u32>) {
            self.log.push((now.ticks(), hop));
            if hop == 0 {
                return;
            }
            let dst = (self.me + 1) % self.n;
            if dst == self.me {
                out.local(now + SimTime::from_ticks(10), hop - 1);
            } else {
                out.remote(now + SimTime::from_ticks(10), dst, hop - 1);
            }
        }
    }

    fn ring(n: usize, hops: u32) -> WindowedEngine<Ring> {
        let logics = (0..n)
            .map(|me| Ring {
                me,
                n,
                log: Vec::new(),
            })
            .collect();
        let mut eng = WindowedEngine::new(logics, SimTime::from_ticks(10));
        eng.seed(0, SimTime::from_ticks(3), hops);
        eng
    }

    #[test]
    fn ring_token_visits_every_shard_in_order() {
        let n = 4;
        let hops = 11;
        let logics = ring(n, hops).run();
        let all: Vec<(usize, u64, u32)> = {
            let mut v: Vec<_> = logics
                .iter()
                .enumerate()
                .flat_map(|(s, l)| l.log.iter().map(move |&(t, h)| (s, t, h)))
                .collect();
            v.sort_by_key(|&(_, t, _)| t);
            v
        };
        assert_eq!(all.len(), hops as usize + 1);
        for (i, &(s, t, h)) in all.iter().enumerate() {
            assert_eq!(s, i % n);
            assert_eq!(t, 3 + 10 * i as u64);
            assert_eq!(h, hops - i as u32);
        }
    }

    #[test]
    fn engine_is_deterministic_across_runs() {
        let a: Vec<Vec<(u64, u32)>> = ring(3, 20).run().into_iter().map(|l| l.log).collect();
        let b: Vec<Vec<(u64, u32)>> = ring(3, 20).run().into_iter().map(|l| l.log).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cross-shard message under the lookahead")]
    fn lookahead_violation_panics_on_the_calling_thread() {
        struct Bad;
        impl ShardLogic for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), out: &mut Outbox<'_, ()>) {
                out.remote(now + SimTime::from_ticks(1), 1, ());
            }
        }
        let mut eng = WindowedEngine::new(vec![Bad, Bad], SimTime::from_ticks(100));
        eng.seed(0, SimTime::ZERO, ());
        eng.run();
    }
}
