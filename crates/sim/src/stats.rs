//! Statistics primitives: counters, busy-time accumulators and histograms.
//!
//! The paper's evaluation reports, per design point: total execution time
//! (slowest unit), average unit time, wait (non-execution) time, message
//! and traffic counts, and an energy breakdown. These small accumulators
//! are the building blocks for all of that.

use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event/byte counter.
///
/// # Example
///
/// ```
/// use ndpb_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Accumulates disjoint busy intervals, e.g. the total time an NDP core
/// spent executing tasks or a bus spent transferring data.
///
/// Intervals are added as `(start, end)` pairs; the accumulator does not
/// check for overlap (components that own a resource serialize their own
/// intervals by construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct BusyTime {
    total: SimTime,
    intervals: u64,
}

impl BusyTime {
    /// Records a busy interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `end < start`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        debug_assert!(end >= start);
        self.total += end - start;
        self.intervals += 1;
    }

    /// Records a busy duration directly.
    pub fn record_duration(&mut self, d: SimTime) {
        self.total += d;
        self.intervals += 1;
    }

    /// Total accumulated busy time.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// Number of intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Utilization over a window `[0, horizon)`, in `[0, 1]`.
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.total.ticks() as f64 / horizon.ticks() as f64
        }
    }
}

/// A time-weighted average of a piecewise-constant quantity (queue
/// depth, buffer occupancy): each recorded value is weighted by how
/// long it persisted.
///
/// # Example
///
/// ```
/// use ndpb_sim::stats::TimeWeighted;
/// use ndpb_sim::SimTime;
/// let mut tw = TimeWeighted::new();
/// tw.record(SimTime::ZERO, 10);           // value 10 from t=0
/// tw.record(SimTime::from_ticks(4), 2);   // value 2 from t=4
/// let avg = tw.mean(SimTime::from_ticks(8));
/// assert!((avg - 6.0).abs() < 1e-9);      // (10*4 + 2*4) / 8
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeWeighted {
    weighted_sum: u128,
    last_at: SimTime,
    last_value: u64,
    started: bool,
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the tracked quantity became `value` at time `at`.
    /// Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `at` precedes the previous record.
    pub fn record(&mut self, at: SimTime, value: u64) {
        debug_assert!(at >= self.last_at, "time went backwards");
        if self.started {
            let dt = (at - self.last_at).ticks() as u128;
            self.weighted_sum += dt * self.last_value as u128;
        }
        self.last_at = at;
        self.last_value = value;
        self.started = true;
    }

    /// The current value.
    pub fn current(&self) -> u64 {
        self.last_value
    }

    /// Time-weighted mean over `[0, horizon)`, extending the last value
    /// to the horizon. Returns 0 if nothing was recorded or the horizon
    /// is zero.
    pub fn mean(&self, horizon: SimTime) -> f64 {
        if !self.started || horizon == SimTime::ZERO {
            return 0.0;
        }
        let mut sum = self.weighted_sum;
        if horizon > self.last_at {
            sum += (horizon - self.last_at).ticks() as u128 * self.last_value as u128;
        }
        sum as f64 / horizon.ticks() as f64
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples (latencies,
/// queue lengths). Bucket `i` holds samples in `[2^(i-1), 2^i)`, bucket 0
/// holds zero/one.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (64 - sample.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-quantile (`q` in `[0,1]`) from the bucket boundaries;
    /// returns the upper bound of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// Helper summarizing a set of per-unit finish times into the paper's
/// "maximum" and "average" bars (Figures 2 and 10).
#[derive(Debug, Clone, Default)]
pub struct FinishTimes {
    times: Vec<SimTime>,
}

impl FinishTimes {
    /// Records one unit's finish (or total-busy) time.
    pub fn push(&mut self, t: SimTime) {
        self.times.push(t);
    }

    /// The slowest unit — the paper's "overall time".
    pub fn max(&self) -> SimTime {
        self.times.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }

    /// Arithmetic mean across units.
    pub fn mean(&self) -> SimTime {
        if self.times.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u128 = self.times.iter().map(|t| t.ticks() as u128).sum();
        SimTime::from_ticks((sum / self.times.len() as u128) as u64)
    }

    /// Mean/max ratio — the paper's load-balance quality metric
    /// (e.g. 22.4% for B, 59.0% for O).
    pub fn balance(&self) -> f64 {
        let max = self.max();
        if max == SimTime::ZERO {
            1.0
        } else {
            self.mean().ticks() as f64 / max.ticks() as f64
        }
    }

    /// Number of recorded units.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no times have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.add(10);
        c.inc();
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn busy_time_totals() {
        let mut b = BusyTime::default();
        b.record(SimTime::from_ticks(10), SimTime::from_ticks(30));
        b.record_duration(SimTime::from_ticks(5));
        assert_eq!(b.total(), SimTime::from_ticks(25));
        assert_eq!(b.intervals(), 2);
        assert!((b.utilization(SimTime::from_ticks(100)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn busy_time_zero_horizon() {
        let b = BusyTime::default();
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::ZERO, 4);
        tw.record(SimTime::from_ticks(10), 0);
        // 4 for 10 ticks, then 0 for 10 ticks.
        assert!((tw.mean(SimTime::from_ticks(20)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 0);
    }

    #[test]
    fn time_weighted_extends_last_value() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::ZERO, 6);
        assert!((tw.mean(SimTime::from_ticks(100)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(SimTime::from_ticks(5)), 0.0);
        assert_eq!(tw.mean(SimTime::ZERO), 0.0);
    }

    #[test]
    fn histogram_mean_max_count() {
        let mut h = Histogram::new();
        for s in [1u64, 2, 3, 4] {
            h.record(s);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        // Median of 0..1000 is ~500; the bucket upper bound must be >= it
        // and within one power of two.
        let q50 = h.quantile(0.5);
        assert!((512..=1024).contains(&q50), "q50 {q50}");
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn finish_times_summary() {
        let mut f = FinishTimes::default();
        f.push(SimTime::from_ticks(100));
        f.push(SimTime::from_ticks(50));
        f.push(SimTime::from_ticks(150));
        assert_eq!(f.max(), SimTime::from_ticks(150));
        assert_eq!(f.mean(), SimTime::from_ticks(100));
        assert!((f.balance() - 100.0 / 150.0).abs() < 1e-9);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn finish_times_empty() {
        let f = FinishTimes::default();
        assert!(f.is_empty());
        assert_eq!(f.mean(), SimTime::ZERO);
        assert_eq!(f.balance(), 1.0);
    }
}
