//! Two-tier timer wheel: the storage backend of [`EventQueue`].
//!
//! Nearly every event in this simulator is scheduled a bounded DRAM or bus
//! latency ahead of the clock — tens to a few thousand ticks (CAS ≈ 41
//! ticks, a gather round ≈ `I_min` = 4096 ticks at Table I geometry). A
//! comparison-based heap pays `O(log n)` per operation and a cache miss per
//! level for what is almost always a "schedule a few hundred ticks out"
//! pattern. The wheel turns that common case into `O(1)`:
//!
//! * **Near tier** — a calendar of per-tick FIFO buckets, one revolution
//!   wide. An event at absolute tick `t` with `t - now < horizon` lands in
//!   bucket `t % horizon`. Because the live window is exactly one
//!   revolution wide, a non-empty bucket always holds a single tick's
//!   events, in insertion order — FIFO within the bucket *is* the
//!   `(time, seq)` order. A two-level occupancy bitmap (summary words over
//!   slot words) finds the next non-empty bucket with a handful of bit
//!   operations instead of a scan.
//! * **Far tier** — a sorted overflow heap for events at or beyond the
//!   horizon (periodic `I_state` timers, congested bus grants). Overflow
//!   entries are never migrated into the wheel during steady state;
//!   [`TimerWheel::pop`] compares the wheel front against the heap front
//!   by `(time, seq)` and takes the smaller, so an old far-future event
//!   still pops before a younger same-tick event that was scheduled
//!   directly into the wheel.
//!
//! # Horizon configuration and auto-tuning
//!
//! The near-tier horizon defaults to [`WHEEL_SLOTS`] ticks, which covers
//! every DRAM/bus latency of the NDP designs. Some schedules are
//! *far-heavy* — the host-only baseline accumulates multi-revolution
//! completion times under channel contention, pushing most inserts into
//! the overflow heap and losing the wheel's O(1) advantage (the H-design
//! regression noted after the wheel landed). Two mechanisms address this:
//!
//! * [`TimerWheel::with_horizon`] / [`EventQueue::with_horizon`] pick a
//!   larger initial horizon when the caller knows its latency profile.
//! * **Auto-tuning:** the wheel counts overflow inserts whose delta would
//!   fit under [`MAX_WHEEL_SLOTS`]; once [`GROW_TRIGGER`] such inserts
//!   accumulate, the horizon doubles (at least) to cover the largest of
//!   them, re-bucketing pending near-tier events and pulling newly
//!   capturable overflow entries into the wheel. Growth is bounded by
//!   [`MAX_WHEEL_SLOTS`], so a stray far-future timer cannot balloon the
//!   calendar.
//!
//! Re-tiering never reorders anything: pop order is defined purely by
//! `(time, seq)`, independent of which tier an event happens to sit in,
//! so results are byte-identical for any horizon (the golden suites pin
//! this).
//!
//! The determinism contract is exactly the one the old `BinaryHeap`
//! implementation had: events pop in strictly nondecreasing `(time, seq)`
//! order, where `seq` is the global schedule order. `crates/sim/tests/`
//! pins this against a reference heap model with randomized schedules.
//!
//! [`EventQueue`]: crate::EventQueue
//! [`EventQueue::with_horizon`]: crate::EventQueue::with_horizon

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Default number of per-tick buckets in the near tier. Events scheduled
/// fewer than this many ticks ahead of the clock go to the wheel;
/// everything else goes to the overflow heap (until auto-tuning widens
/// the window).
///
/// 4096 ticks ≈ 1.7 µs covers every DRAM/bus latency and the Table I
/// gather interval; only the coarse periodic timers (`I_state` = 12000
/// ticks) and heavily congested bus grants overflow, and those are rare
/// enough in the NDP designs that heap cost on them is noise.
pub const WHEEL_SLOTS: usize = 4096;

/// Upper bound on the auto-tuned horizon (2^17 ticks ≈ 55 µs). Bounds
/// the calendar's memory: a far-future outlier beyond this never
/// triggers growth.
pub const MAX_WHEEL_SLOTS: usize = 1 << 17;

/// Capturable overflow inserts tolerated before the horizon grows. Each
/// pre-growth overflow insert costs one heap push — a few thousand of
/// them are noise, while a persistent far-heavy schedule (millions of
/// events) amortizes the one-off re-bucketing instantly.
const GROW_TRIGGER: u64 = 2048;

/// A two-tier calendar queue ordering `(time, seq, event)` triples by
/// `(time, seq)`.
///
/// The wheel does not own the clock or the sequence counter — the caller
/// ([`EventQueue`]) passes `now` into [`insert`](Self::insert),
/// [`pop`](Self::pop) and [`peek`](Self::peek) and guarantees that
/// * every inserted `at` is `>= now`,
/// * `seq` values are inserted in strictly increasing order, and
/// * `now` only advances to timestamps returned by `pop` (so no pending
///   event is ever earlier than `now`).
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// Current near-tier width in ticks; always a power of two in
    /// `[64, MAX_WHEEL_SLOTS]`.
    slots: usize,
    buckets: Vec<Bucket<E>>,
    /// Bit `i % 64` of word `i / 64` set ⇔ bucket `i` is non-empty.
    words: Vec<u64>,
    /// Bit `w % 64` of summary word `w / 64` set ⇔ `words[w] != 0`.
    summary: Vec<u64>,
    /// Events currently in the near tier.
    wheel_len: usize,
    overflow: BinaryHeap<Overflow<E>>,
    /// Overflow inserts since the last growth that a `MAX_WHEEL_SLOTS`
    /// wheel would have captured, and the widest such delta.
    capturable: u64,
    capturable_max: u64,
    /// Times the horizon grew (observability for tests/tuning).
    grows: u32,
}

#[derive(Debug)]
struct Bucket<E> {
    /// `(at, seq, event)` in insertion (= `seq`) order; all live entries
    /// share the same `at`.
    items: VecDeque<(SimTime, u64, E)>,
}

#[derive(Debug)]
struct Overflow<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // surfaces first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the default [`WHEEL_SLOTS`] horizon.
    /// Buckets are lazily allocated: an untouched bucket is an empty
    /// `VecDeque`, which holds no heap memory.
    pub fn new() -> Self {
        Self::with_horizon(WHEEL_SLOTS as u64)
    }

    /// Creates an empty wheel whose near tier covers at least `horizon`
    /// ticks (rounded up to a power of two, clamped to
    /// `[64, MAX_WHEEL_SLOTS]`). Auto-tuning can still widen it later.
    pub fn with_horizon(horizon: u64) -> Self {
        let slots = horizon
            .clamp(64, MAX_WHEEL_SLOTS as u64)
            .next_power_of_two() as usize;
        TimerWheel {
            slots,
            buckets: (0..slots)
                .map(|_| Bucket {
                    items: VecDeque::new(),
                })
                .collect(),
            words: vec![0; slots / 64],
            summary: vec![0; (slots / 64).div_ceil(64)],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            capturable: 0,
            capturable_max: 0,
            grows: 0,
        }
    }

    /// Current near-tier width in ticks.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.slots
    }

    /// How many times auto-tuning widened the horizon.
    #[inline]
    pub fn grows(&self) -> u32 {
        self.grows
    }

    /// Total pending events across both tiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot_mask(&self) -> u64 {
        self.slots as u64 - 1
    }

    /// Places an event that is known to fall inside the near window.
    #[inline]
    fn insert_near(&mut self, at: SimTime, seq: u64, event: E) {
        let idx = (at.ticks() & self.slot_mask()) as usize;
        let bucket = &mut self.buckets[idx];
        // The live window is exactly one wheel revolution wide, so a
        // live bucket holds a single tick.
        debug_assert!(bucket.items.front().is_none_or(|&(t, _, _)| t == at));
        bucket.items.push_back((at, seq, event));
        self.words[idx >> 6] |= 1 << (idx & 63);
        self.summary[idx >> 12] |= 1 << ((idx >> 6) & 63);
        self.wheel_len += 1;
    }

    /// Inserts `event` at `(at, seq)`. The caller guarantees `at >= now`
    /// and that `seq` is strictly greater than every previously inserted
    /// sequence number.
    #[inline]
    pub fn insert(&mut self, now: SimTime, at: SimTime, seq: u64, event: E) {
        debug_assert!(at >= now);
        let delta = at.ticks() - now.ticks();
        if delta < self.slots as u64 {
            self.insert_near(at, seq, event);
            return;
        }
        if delta < MAX_WHEEL_SLOTS as u64 && self.slots < MAX_WHEEL_SLOTS {
            self.capturable += 1;
            self.capturable_max = self.capturable_max.max(delta);
            if self.capturable >= GROW_TRIGGER {
                let target = self.capturable_max + 1;
                self.capturable = 0;
                self.capturable_max = 0;
                self.grow(now, target);
                if delta < self.slots as u64 {
                    self.insert_near(at, seq, event);
                    return;
                }
            }
        }
        self.overflow.push(Overflow { at, seq, event });
    }

    /// Widens the near tier to cover at least `target` ticks,
    /// re-bucketing pending near-tier events and pulling newly
    /// capturable overflow entries in. Pop order is unaffected — it is
    /// defined by `(time, seq)` regardless of tier.
    fn grow(&mut self, now: SimTime, target: u64) {
        let new_slots = target
            .min(MAX_WHEEL_SLOTS as u64)
            .next_power_of_two()
            .clamp(self.slots as u64 * 2, MAX_WHEEL_SLOTS as u64) as usize;
        if new_slots <= self.slots {
            return;
        }
        let old_slots = self.slots;
        let mut old_buckets = std::mem::replace(
            &mut self.buckets,
            (0..new_slots)
                .map(|_| Bucket {
                    items: VecDeque::new(),
                })
                .collect(),
        );
        self.slots = new_slots;
        self.words = vec![0; new_slots / 64];
        self.summary = vec![0; (new_slots / 64).div_ceil(64)];
        self.wheel_len = 0;
        self.grows += 1;
        // Collect everything that belongs in the widened window: the old
        // near tier plus overflow entries now inside it (the heap front
        // carries the minimum time, so the first non-capturable entry
        // means the rest are non-capturable too). An overflow entry can
        // share a tick with near-tier events while carrying a *smaller*
        // seq — see `overflow_interleaves_with_wheel_by_seq` — so the
        // merged set is sorted by (time, seq) before re-bucketing to
        // keep FIFO-within-bucket equal to seq order.
        let mut pending: Vec<(SimTime, u64, E)> = Vec::new();
        for bucket in old_buckets.iter_mut().take(old_slots) {
            pending.extend(bucket.items.drain(..));
        }
        while let Some(o) = self.overflow.peek() {
            if o.at.ticks() - now.ticks() >= new_slots as u64 {
                break;
            }
            let o = self.overflow.pop().expect("peeked entry vanished");
            pending.push((o.at, o.seq, o.event));
        }
        pending.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        for (at, seq, event) in pending {
            self.insert_near(at, seq, event);
        }
    }

    /// Removes and returns the pending event with the smallest
    /// `(time, seq)`, or `None` if the wheel is empty.
    #[inline]
    pub fn pop(&mut self, now: SimTime) -> Option<(SimTime, u64, E)> {
        let wheel_front = self.front_bucket(now);
        let take_overflow = match (wheel_front, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((at, seq, _)), Some(o)) => (o.at, o.seq) < (at, seq),
        };
        if take_overflow {
            let o = self.overflow.pop().expect("peeked entry vanished");
            return Some((o.at, o.seq, o.event));
        }
        let (_, _, idx) = wheel_front.expect("non-overflow pop with empty wheel");
        let bucket = &mut self.buckets[idx];
        let entry = bucket.items.pop_front().expect("occupied bucket was empty");
        self.wheel_len -= 1;
        if bucket.items.is_empty() {
            self.words[idx >> 6] &= !(1 << (idx & 63));
            if self.words[idx >> 6] == 0 {
                self.summary[idx >> 12] &= !(1 << ((idx >> 6) & 63));
            }
        }
        Some(entry)
    }

    /// Timestamp of the next pending event, without removing it.
    #[inline]
    pub fn peek(&self, now: SimTime) -> Option<SimTime> {
        let wheel = self.front_bucket(now).map(|(at, _, _)| at);
        let heap = self.overflow.peek().map(|o| o.at);
        match (wheel, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// `(timestamp, seq)` of the next pending event, without removing
    /// it. This is the full pop key: two wheels can be merged
    /// deterministically by comparing `peek_key` results, because
    /// [`pop`](Self::pop) always returns exactly this pair next.
    #[inline]
    pub fn peek_key(&self, now: SimTime) -> Option<(SimTime, u64)> {
        let wheel = self.front_bucket(now).map(|(at, seq, _)| (at, seq));
        let heap = self.overflow.peek().map(|o| (o.at, o.seq));
        match (wheel, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// [`pop`](Self::pop) fused with the follow-up
    /// [`peek_key`](Self::peek_key): returns the popped entry plus the
    /// key of the *new* front. When the popped bucket still holds a
    /// same-tick successor — the common case in burst-heavy schedules —
    /// that key is read straight off the bucket, skipping the second
    /// occupancy-bitmap scan a separate `peek_key` call would pay.
    /// `ShardedEventQueue` re-peeks after every pop, so it rides this.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn pop_with_key(
        &mut self,
        now: SimTime,
    ) -> Option<((SimTime, u64, E), Option<(SimTime, u64)>)> {
        let wheel_front = self.front_bucket(now);
        let take_overflow = match (wheel_front, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((at, seq, _)), Some(o)) => (o.at, o.seq) < (at, seq),
        };
        if take_overflow {
            let o = self.overflow.pop().expect("peeked entry vanished");
            // Overflow pops are rare; re-scanning here is fine. All
            // remaining events are >= o.at, so o.at is a valid clock.
            let key = self.peek_key(o.at);
            return Some(((o.at, o.seq, o.event), key));
        }
        let (_, _, idx) = wheel_front.expect("non-overflow pop with empty wheel");
        let bucket = &mut self.buckets[idx];
        let entry = bucket.items.pop_front().expect("occupied bucket was empty");
        self.wheel_len -= 1;
        let next_near = match bucket.items.front() {
            Some(&(at, seq, _)) => Some((at, seq)),
            None => {
                self.words[idx >> 6] &= !(1 << (idx & 63));
                if self.words[idx >> 6] == 0 {
                    self.summary[idx >> 12] &= !(1 << ((idx >> 6) & 63));
                }
                // Every remaining event is >= the popped time, so the
                // popped time is a valid scan origin.
                self.front_bucket(entry.0).map(|(at, seq, _)| (at, seq))
            }
        };
        let key = match (next_near, self.overflow.peek().map(|o| (o.at, o.seq))) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Some((entry, key))
    }

    /// Drains the *run* at the head of the queue — the maximal prefix of
    /// same-tick events whose `(time, seq)` keys are strictly below
    /// `limit` (and below this wheel's own overflow front) — appending
    /// the events to `out` in pop order.
    ///
    /// A live bucket holds exactly one tick's events in seq order, so
    /// the run is a `VecDeque` prefix: one occupancy-bitmap scan and one
    /// overflow compare cover the whole batch, where a pop-at-a-time
    /// loop re-pays both per event. When the overflow front is the
    /// global minimum (rare — far-future timers), the run is that
    /// single heap entry.
    ///
    /// Returns the run's timestamp and the key of the new front (the
    /// same pair [`pop_with_key`](Self::pop_with_key) would report after
    /// the last pop of the run), or `None` if the wheel is empty. The
    /// caller guarantees the current front key is below `limit`; pop
    /// order over repeated calls is byte-identical to single pops
    /// because the run boundary only ever *stops early* at keys that
    /// must interleave with another tier or another wheel.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn pop_run(
        &mut self,
        now: SimTime,
        limit: Option<(SimTime, u64)>,
        out: &mut Vec<E>,
    ) -> Option<(SimTime, Option<(SimTime, u64)>)> {
        let wheel_front = self.front_bucket(now);
        let overflow_key = self.overflow.peek().map(|o| (o.at, o.seq));
        let take_overflow = match (wheel_front, overflow_key) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((at, seq, _)), Some(ok)) => ok < (at, seq),
        };
        if take_overflow {
            // Overflow pops are rare; a one-event run keeps them on the
            // same proven path as `pop_with_key`.
            let o = self.overflow.pop().expect("peeked entry vanished");
            out.push(o.event);
            let key = self.peek_key(o.at);
            return Some((o.at, key));
        }
        let (at, _, idx) = wheel_front.expect("non-overflow pop with empty wheel");
        // The run must stop at the caller's limit and at this wheel's
        // overflow front: an overflow entry can share the tick with a
        // *smaller* seq (see `overflow_interleaves_with_wheel_by_seq`).
        let cap = match (limit, overflow_key) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let cap_seq = match cap {
            None => u64::MAX,
            Some((ct, _)) if ct > at => u64::MAX,
            Some((ct, cs)) => {
                debug_assert!(ct == at, "pop_run limit precedes the front key");
                cs
            }
        };
        let bucket = &mut self.buckets[idx];
        let mut popped = 0usize;
        while let Some(&(_, seq, _)) = bucket.items.front() {
            if seq >= cap_seq {
                break;
            }
            let (_, _, ev) = bucket.items.pop_front().expect("front vanished");
            out.push(ev);
            popped += 1;
        }
        debug_assert!(popped > 0, "pop_run front key was not below the limit");
        self.wheel_len -= popped;
        let next_near = match bucket.items.front() {
            Some(&(t, s, _)) => Some((t, s)),
            None => {
                self.words[idx >> 6] &= !(1 << (idx & 63));
                if self.words[idx >> 6] == 0 {
                    self.summary[idx >> 12] &= !(1 << ((idx >> 6) & 63));
                }
                // Every remaining event is >= the drained tick, so it
                // is a valid scan origin.
                self.front_bucket(at).map(|(t, s, _)| (t, s))
            }
        };
        let key = match (next_near, overflow_key) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Some((at, key))
    }

    /// `(at, seq, bucket_index)` of the earliest near-tier event, if any.
    #[inline]
    fn front_bucket(&self, now: SimTime) -> Option<(SimTime, u64, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let idx = self.next_occupied((now.ticks() & self.slot_mask()) as usize);
        let &(at, seq, _) = self.buckets[idx]
            .items
            .front()
            .expect("occupancy bit set on empty bucket");
        Some((at, seq, idx))
    }

    /// First word index `>= w` whose occupancy word is non-empty, if any
    /// (no wrap-around).
    #[inline]
    fn next_word_at_or_after(&self, w: usize) -> Option<usize> {
        let sw = w >> 6;
        if sw >= self.summary.len() {
            return None;
        }
        let first = self.summary[sw] & (!0u64 << (w & 63));
        if first != 0 {
            return Some((sw << 6) | first.trailing_zeros() as usize);
        }
        for (i, &s) in self.summary.iter().enumerate().skip(sw + 1) {
            if s != 0 {
                return Some((i << 6) | s.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the first non-empty bucket at or after `start` in circular
    /// slot order. Requires `wheel_len > 0`.
    ///
    /// Circular order from `now % slots` is tick order: every pending
    /// near-tier event lies in `[now, now + slots)`, and that window maps
    /// one-to-one onto the slots.
    #[inline]
    fn next_occupied(&self, start: usize) -> usize {
        debug_assert!(self.wheel_len > 0);
        let sw = start >> 6;
        let sb = start & 63;
        // Bits of the start word at or after the start slot.
        let hi = self.words[sw] & (!0u64 << sb);
        if hi != 0 {
            return (sw << 6) | hi.trailing_zeros() as usize;
        }
        // Whole words strictly after the start word.
        if let Some(w) = self.next_word_at_or_after(sw + 1) {
            return (w << 6) | self.words[w].trailing_zeros() as usize;
        }
        // Wrapped: whole words before (or at) the start word…
        if let Some(w) = self.next_word_at_or_after(0) {
            if w != sw {
                return (w << 6) | self.words[w].trailing_zeros() as usize;
            }
        }
        // …then the low bits of the start word itself.
        let lo = self.words[sw] & !(!0u64 << sb);
        debug_assert!(lo != 0, "wheel_len > 0 but no occupancy bit set");
        (sw << 6) | lo.trailing_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(w: &mut TimerWheel<E>) -> Vec<(SimTime, u64, E)> {
        let mut now = SimTime::ZERO;
        std::iter::from_fn(|| {
            let e = w.pop(now)?;
            now = e.0;
            Some(e)
        })
        .collect()
    }

    #[test]
    fn single_bucket_is_fifo() {
        let mut w = TimerWheel::new();
        for seq in 0..10u64 {
            w.insert(SimTime::ZERO, SimTime::from_ticks(3), seq, seq);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_interleaves_with_wheel_by_seq() {
        let mut w = TimerWheel::new();
        let far = SimTime::from_ticks(2 * WHEEL_SLOTS as u64);
        // seq 0 goes far-future (overflow tier).
        w.insert(SimTime::ZERO, far, 0, "overflow");
        // Clock moves close enough that the same tick is now near-tier.
        let now = SimTime::from_ticks(far.ticks() - 10);
        w.insert(now, far, 1, "wheel");
        assert_eq!(w.len(), 2);
        let (t1, s1, e1) = w.pop(now).unwrap();
        let (t2, s2, e2) = w.pop(far).unwrap();
        assert_eq!((t1, s1, e1), (far, 0, "overflow"));
        assert_eq!((t2, s2, e2), (far, 1, "wheel"));
    }

    #[test]
    fn slot_collision_across_revolutions_is_impossible_but_ordered() {
        // Tick t and t + WHEEL_SLOTS share a slot; the second must sit in
        // the overflow tier until the window advances past t.
        let mut w = TimerWheel::new();
        let t = SimTime::from_ticks(100);
        let t2 = SimTime::from_ticks(100 + WHEEL_SLOTS as u64);
        w.insert(SimTime::ZERO, t, 0, "near");
        w.insert(SimTime::ZERO, t2, 1, "far");
        let (a, _, ea) = w.pop(SimTime::ZERO).unwrap();
        let (b, _, eb) = w.pop(a).unwrap();
        assert_eq!((a, ea), (t, "near"));
        assert_eq!((b, eb), (t2, "far"));
    }

    #[test]
    fn occupancy_bitmap_survives_sparse_times() {
        let mut w = TimerWheel::new();
        // One event per occupancy word, popped in order.
        for i in 0..(WHEEL_SLOTS / 64) as u64 {
            w.insert(SimTime::ZERO, SimTime::from_ticks(i * 64 + 7), i, i);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..(WHEEL_SLOTS / 64) as u64).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert!(w.summary.iter().all(|&s| s == 0));
    }

    #[test]
    fn horizon_is_configurable_and_clamped() {
        let w: TimerWheel<()> = TimerWheel::with_horizon(10_000);
        assert_eq!(w.horizon(), 16_384, "rounded up to a power of two");
        let w: TimerWheel<()> = TimerWheel::with_horizon(1);
        assert_eq!(w.horizon(), 64, "clamped below");
        let w: TimerWheel<()> = TimerWheel::with_horizon(u64::MAX);
        assert_eq!(w.horizon(), MAX_WHEEL_SLOTS, "clamped above");
    }

    #[test]
    fn wide_horizon_keeps_midrange_events_near_tier() {
        let mut w = TimerWheel::with_horizon(1 << 16);
        w.insert(SimTime::ZERO, SimTime::from_ticks(40_000), 0, "mid");
        assert_eq!(w.overflow.len(), 0, "inside the configured horizon");
        let (t, _, e) = w.pop(SimTime::ZERO).unwrap();
        assert_eq!((t, e), (SimTime::from_ticks(40_000), "mid"));
    }

    #[test]
    fn auto_growth_captures_far_heavy_schedules_in_order() {
        // Far-heavy, H-style: every event lands a few revolutions out.
        let mut w = TimerWheel::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut popped = Vec::new();
        for round in 0..3 * GROW_TRIGGER {
            let at = SimTime::from_ticks(now.ticks() + 3 * WHEEL_SLOTS as u64 + round % 97);
            w.insert(now, at, seq, seq);
            seq += 1;
            if round % 2 == 0 {
                let (t, s, e) = w.pop(now).unwrap();
                now = t;
                popped.push((t, s, e));
            }
        }
        while let Some((t, s, e)) = w.pop(now) {
            now = t;
            popped.push((t, s, e));
        }
        assert!(w.grows() > 0, "far-heavy schedule must trigger growth");
        assert!(w.horizon() > WHEEL_SLOTS);
        // The pop stream respects the (time, seq) contract and is
        // complete, growth or not.
        assert!(popped
            .windows(2)
            .all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)));
        let mut events: Vec<u64> = popped.iter().map(|&(_, _, e)| e).collect();
        events.sort_unstable();
        assert_eq!(events, (0..seq).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    fn growth_merges_same_tick_overflow_before_younger_near_events() {
        let mut w = TimerWheel::new();
        // seq 0 lands far-future (overflow tier) at tick t…
        let t = SimTime::from_ticks(WHEEL_SLOTS as u64 + 100);
        w.insert(SimTime::ZERO, t, 0, "old-overflow");
        // …then the clock advances until t is near-tier and seq 1 is
        // scheduled directly into the wheel at the same tick.
        let now = SimTime::from_ticks(101);
        w.insert(now, t, 1, "young-near");
        // A growth at this point merges both tiers into one bucket; the
        // overflow entry must keep its earlier-seq position.
        w.grow(now, 4 * WHEEL_SLOTS as u64);
        assert_eq!(w.overflow.len(), 0, "entry migrated into the wheel");
        let (t1, s1, e1) = w.pop(now).unwrap();
        let (t2, s2, e2) = w.pop(t).unwrap();
        assert_eq!((t1, s1, e1), (t, 0, "old-overflow"));
        assert_eq!((t2, s2, e2), (t, 1, "young-near"));
    }

    #[test]
    fn pop_with_key_matches_separate_pop_and_peek() {
        // Same schedule into twin wheels: one drained with the fused
        // pop_with_key, one with pop + peek_key. Mix same-tick bursts
        // (bucket-front fast path), sparse near-tier times, and
        // far-future overflow entries (rare-branch path).
        let mut fused = TimerWheel::new();
        let mut split = TimerWheel::new();
        let mut seq = 0u64;
        for (at, copies) in [
            (3u64, 4usize),
            (3, 1),
            (90, 2),
            (4_000, 1),
            (2 * WHEEL_SLOTS as u64, 2),
            (2 * WHEEL_SLOTS as u64, 1),
            (5, 3),
        ] {
            for _ in 0..copies {
                fused.insert(SimTime::ZERO, SimTime::from_ticks(at), seq, seq);
                split.insert(SimTime::ZERO, SimTime::from_ticks(at), seq, seq);
                seq += 1;
            }
        }
        let mut now = SimTime::ZERO;
        loop {
            let got = fused.pop_with_key(now);
            let want = split.pop(now);
            match (got, want) {
                (None, None) => break,
                (Some((entry, key)), Some(w)) => {
                    assert_eq!(entry, w);
                    now = entry.0;
                    assert_eq!(key, split.peek_key(now), "fused key diverged at {now:?}");
                }
                (g, w) => panic!("length mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn growth_is_capped_and_ignores_uncapturable_outliers() {
        let mut w = TimerWheel::new();
        for seq in 0..3 * GROW_TRIGGER {
            // Far beyond MAX_WHEEL_SLOTS: never worth growing for.
            w.insert(
                SimTime::ZERO,
                SimTime::from_ticks(10 * MAX_WHEEL_SLOTS as u64 + seq),
                seq,
                seq,
            );
        }
        assert_eq!(w.grows(), 0);
        assert_eq!(w.horizon(), WHEEL_SLOTS);
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..3 * GROW_TRIGGER).collect::<Vec<_>>());
    }
}
