//! Two-tier timer wheel: the storage backend of [`EventQueue`].
//!
//! Nearly every event in this simulator is scheduled a bounded DRAM or bus
//! latency ahead of the clock — tens to a few thousand ticks (CAS ≈ 41
//! ticks, a gather round ≈ `I_min` = 4096 ticks at Table I geometry). A
//! comparison-based heap pays `O(log n)` per operation and a cache miss per
//! level for what is almost always a "schedule a few hundred ticks out"
//! pattern. The wheel turns that common case into `O(1)`:
//!
//! * **Near tier** — a calendar of [`WHEEL_SLOTS`] per-tick FIFO buckets.
//!   An event at absolute tick `t` with `t - now < WHEEL_SLOTS` lands in
//!   bucket `t % WHEEL_SLOTS`. Because the live window is exactly
//!   [`WHEEL_SLOTS`] ticks wide, a non-empty bucket always holds a single
//!   tick's events, in insertion order — FIFO within the bucket *is* the
//!   `(time, seq)` order. A two-level occupancy bitmap (one summary word
//!   over 64 slot words) finds the next non-empty bucket with a handful of
//!   bit operations instead of a scan.
//! * **Far tier** — a sorted overflow heap for events at or beyond the
//!   horizon (periodic `I_state` timers, congested bus grants). Overflow
//!   entries are never migrated into the wheel; [`TimerWheel::pop`]
//!   compares the wheel front against the heap front by `(time, seq)` and
//!   takes the smaller, so an old far-future event still pops before a
//!   younger same-tick event that was scheduled directly into the wheel.
//!
//! The determinism contract is exactly the one the old `BinaryHeap`
//! implementation had: events pop in strictly nondecreasing `(time, seq)`
//! order, where `seq` is the global schedule order. `crates/sim/tests/`
//! pins this against a reference heap model with randomized schedules.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Number of per-tick buckets in the near tier. Events scheduled fewer
/// than this many ticks ahead of the clock go to the wheel; everything
/// else goes to the overflow heap.
///
/// 4096 ticks ≈ 1.7 µs covers every DRAM/bus latency and the Table I
/// gather interval; only the coarse periodic timers (`I_state` = 12000
/// ticks) and heavily congested bus grants overflow, and those are rare
/// enough that heap cost on them is noise.
pub const WHEEL_SLOTS: usize = 4096;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// 64 slots per occupancy word.
const WORDS: usize = WHEEL_SLOTS / 64;

/// A two-tier calendar queue ordering `(time, seq, event)` triples by
/// `(time, seq)`.
///
/// The wheel does not own the clock or the sequence counter — the caller
/// ([`EventQueue`]) passes `now` into [`insert`](Self::insert),
/// [`pop`](Self::pop) and [`peek`](Self::peek) and guarantees that
/// * every inserted `at` is `>= now`,
/// * `seq` values are inserted in strictly increasing order, and
/// * `now` only advances to timestamps returned by `pop` (so no pending
///   event is ever earlier than `now`).
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug)]
pub struct TimerWheel<E> {
    buckets: Vec<Bucket<E>>,
    /// Bit `i % 64` of word `i / 64` set ⇔ bucket `i` is non-empty.
    words: Vec<u64>,
    /// Bit `w` set ⇔ `words[w] != 0`.
    summary: u64,
    /// Events currently in the near tier.
    wheel_len: usize,
    overflow: BinaryHeap<Overflow<E>>,
}

#[derive(Debug)]
struct Bucket<E> {
    /// `(at, seq, event)` in insertion (= `seq`) order; all live entries
    /// share the same `at`.
    items: VecDeque<(SimTime, u64, E)>,
}

#[derive(Debug)]
struct Overflow<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // surfaces first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel. Buckets are lazily allocated: an untouched
    /// bucket is an empty `VecDeque`, which holds no heap memory.
    pub fn new() -> Self {
        TimerWheel {
            buckets: (0..WHEEL_SLOTS)
                .map(|_| Bucket {
                    items: VecDeque::new(),
                })
                .collect(),
            words: vec![0; WORDS],
            summary: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Total pending events across both tiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `event` at `(at, seq)`. The caller guarantees `at >= now`
    /// and that `seq` is strictly greater than every previously inserted
    /// sequence number.
    #[inline]
    pub fn insert(&mut self, now: SimTime, at: SimTime, seq: u64, event: E) {
        debug_assert!(at >= now);
        if at.ticks() - now.ticks() < WHEEL_SLOTS as u64 {
            let idx = (at.ticks() & SLOT_MASK) as usize;
            let bucket = &mut self.buckets[idx];
            // The window [now, now + WHEEL_SLOTS) is exactly one wheel
            // revolution wide, so a live bucket holds a single tick.
            debug_assert!(bucket.items.front().is_none_or(|&(t, _, _)| t == at));
            bucket.items.push_back((at, seq, event));
            self.words[idx >> 6] |= 1 << (idx & 63);
            self.summary |= 1 << (idx >> 6);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Overflow { at, seq, event });
        }
    }

    /// Removes and returns the pending event with the smallest
    /// `(time, seq)`, or `None` if the wheel is empty.
    #[inline]
    pub fn pop(&mut self, now: SimTime) -> Option<(SimTime, u64, E)> {
        let wheel_front = self.front_bucket(now);
        let take_overflow = match (wheel_front, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some((at, seq, _)), Some(o)) => (o.at, o.seq) < (at, seq),
        };
        if take_overflow {
            let o = self.overflow.pop().expect("peeked entry vanished");
            return Some((o.at, o.seq, o.event));
        }
        let (_, _, idx) = wheel_front.expect("non-overflow pop with empty wheel");
        let bucket = &mut self.buckets[idx];
        let entry = bucket.items.pop_front().expect("occupied bucket was empty");
        self.wheel_len -= 1;
        if bucket.items.is_empty() {
            self.words[idx >> 6] &= !(1 << (idx & 63));
            if self.words[idx >> 6] == 0 {
                self.summary &= !(1 << (idx >> 6));
            }
        }
        Some(entry)
    }

    /// Timestamp of the next pending event, without removing it.
    #[inline]
    pub fn peek(&self, now: SimTime) -> Option<SimTime> {
        let wheel = self.front_bucket(now).map(|(at, _, _)| at);
        let heap = self.overflow.peek().map(|o| o.at);
        match (wheel, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// `(at, seq, bucket_index)` of the earliest near-tier event, if any.
    #[inline]
    fn front_bucket(&self, now: SimTime) -> Option<(SimTime, u64, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let idx = self.next_occupied((now.ticks() & SLOT_MASK) as usize);
        let &(at, seq, _) = self.buckets[idx]
            .items
            .front()
            .expect("occupancy bit set on empty bucket");
        Some((at, seq, idx))
    }

    /// Index of the first non-empty bucket at or after `start` in circular
    /// slot order. Requires `wheel_len > 0`.
    ///
    /// Circular order from `now % WHEEL_SLOTS` is tick order: every
    /// pending near-tier event lies in `[now, now + WHEEL_SLOTS)`, and
    /// that window maps one-to-one onto the slots.
    #[inline]
    fn next_occupied(&self, start: usize) -> usize {
        debug_assert!(self.wheel_len > 0);
        let sw = start >> 6;
        let sb = start & 63;
        // Bits of the start word at or after the start slot.
        let hi = self.words[sw] & (!0u64 << sb);
        if hi != 0 {
            return (sw << 6) | hi.trailing_zeros() as usize;
        }
        // Whole words strictly after the start word.
        if sw + 1 < WORDS {
            let later = self.summary & (!0u64 << (sw + 1));
            if later != 0 {
                let w = later.trailing_zeros() as usize;
                return (w << 6) | self.words[w].trailing_zeros() as usize;
            }
        }
        // Wrapped: whole words strictly before the start word…
        let earlier = self.summary & !(!0u64 << sw);
        if earlier != 0 {
            let w = earlier.trailing_zeros() as usize;
            return (w << 6) | self.words[w].trailing_zeros() as usize;
        }
        // …then the low bits of the start word itself.
        let lo = self.words[sw] & !(!0u64 << sb);
        debug_assert!(lo != 0, "wheel_len > 0 but no occupancy bit set");
        (sw << 6) | lo.trailing_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(w: &mut TimerWheel<E>) -> Vec<(SimTime, u64, E)> {
        let mut now = SimTime::ZERO;
        std::iter::from_fn(|| {
            let e = w.pop(now)?;
            now = e.0;
            Some(e)
        })
        .collect()
    }

    #[test]
    fn single_bucket_is_fifo() {
        let mut w = TimerWheel::new();
        for seq in 0..10u64 {
            w.insert(SimTime::ZERO, SimTime::from_ticks(3), seq, seq);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_interleaves_with_wheel_by_seq() {
        let mut w = TimerWheel::new();
        let far = SimTime::from_ticks(2 * WHEEL_SLOTS as u64);
        // seq 0 goes far-future (overflow tier).
        w.insert(SimTime::ZERO, far, 0, "overflow");
        // Clock moves close enough that the same tick is now near-tier.
        let now = SimTime::from_ticks(far.ticks() - 10);
        w.insert(now, far, 1, "wheel");
        assert_eq!(w.len(), 2);
        let (t1, s1, e1) = w.pop(now).unwrap();
        let (t2, s2, e2) = w.pop(far).unwrap();
        assert_eq!((t1, s1, e1), (far, 0, "overflow"));
        assert_eq!((t2, s2, e2), (far, 1, "wheel"));
    }

    #[test]
    fn slot_collision_across_revolutions_is_impossible_but_ordered() {
        // Tick t and t + WHEEL_SLOTS share a slot; the second must sit in
        // the overflow tier until the window advances past t.
        let mut w = TimerWheel::new();
        let t = SimTime::from_ticks(100);
        let t2 = SimTime::from_ticks(100 + WHEEL_SLOTS as u64);
        w.insert(SimTime::ZERO, t, 0, "near");
        w.insert(SimTime::ZERO, t2, 1, "far");
        let (a, _, ea) = w.pop(SimTime::ZERO).unwrap();
        let (b, _, eb) = w.pop(a).unwrap();
        assert_eq!((a, ea), (t, "near"));
        assert_eq!((b, eb), (t2, "far"));
    }

    #[test]
    fn occupancy_bitmap_survives_sparse_times() {
        let mut w = TimerWheel::new();
        // One event per occupancy word, popped in order.
        for i in 0..WORDS as u64 {
            w.insert(SimTime::ZERO, SimTime::from_ticks(i * 64 + 7), i, i);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..WORDS as u64).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert_eq!(w.summary, 0);
    }
}
