//! Discrete-event simulation kernel for the NDPBridge reproduction.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! * [`SimTime`] — an integer simulation clock measured in *ticks*, where one
//!   tick is one DDR4-2400 half bus cycle (~0.4167 ns). An NDP core cycle at
//!   400 MHz is exactly [`TICKS_PER_CORE_CYCLE`] ticks, which keeps all
//!   timing arithmetic integral and deterministic.
//! * [`EventQueue`] — a generic priority queue of timestamped events with
//!   FIFO tie-breaking, the heart of the discrete-event engine. Backed by
//!   [`wheel`], a two-tier timer wheel (per-tick calendar buckets plus an
//!   overflow heap) that makes the common bounded-latency schedule/pop
//!   pattern `O(1)`.
//! * [`ShardedEventQueue`] and [`shard::WindowedEngine`] — conservative
//!   parallel-DES building blocks: per-shard timer wheels merged under a
//!   global `(time, seq)` key (pop order identical to one queue for any
//!   shard count), and a lock-step windowed engine bounded by cross-shard
//!   lookahead with canonical barrier merge order.
//! * [`rng`] — a small, seedable SplitMix64/xoshiro RNG so simulations are
//!   reproducible without depending on `rand` in the hot path.
//! * [`fingerprint`] — a stable 64-bit FNV-1a hasher used to
//!   content-address sweep results (std's `DefaultHasher` is not stable
//!   across toolchains).
//! * [`stats`] — counters, time-weighted averages and histograms used for
//!   the per-unit and system-wide statistics the paper reports.
//!
//! # Example
//!
//! ```
//! use ndpb_sim::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_ticks(10), "late");
//! q.schedule(SimTime::ZERO, "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::ZERO, "early"));
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod fingerprint;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod wheel;

pub use events::EventQueue;
pub use fingerprint::Fnv1a64;
pub use rng::SimRng;
pub use shard::{LaneOutcome, ShardLane, ShardedEventQueue};
pub use time::{SimTime, TICKS_PER_BUS_CYCLE, TICKS_PER_CORE_CYCLE};
