//! Deterministic pseudo-random number generation.
//!
//! Simulations must be bit-for-bit reproducible from a seed, across
//! platforms and workspace versions. We therefore ship a tiny
//! xoshiro256**-based generator seeded through SplitMix64, rather than
//! relying on an external crate's stream stability in the simulator hot
//! path. (Workload *generation* uses the `rand` crate where distribution
//! quality matters more than long-term stream stability.)

/// A small, fast, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// # Example
///
/// ```
/// use ndpb_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the internal state is expanded with SplitMix64 so it is
    /// never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection sampling (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each component
    /// (unit, bridge) its own stream from a master seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bin expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bin count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::new(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left identity");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut master = SimRng::new(21);
        let mut a = master.fork(0);
        let mut b = master.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }
}
