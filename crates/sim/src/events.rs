//! Generic discrete-event queue.

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// An event queue ordering events by timestamp, breaking ties in
/// first-scheduled-first-popped (FIFO) order so simulations are
/// deterministic: events pop in strictly nondecreasing `(time, seq)`
/// order, where `seq` is the global schedule order.
///
/// Storage is a two-tier [`TimerWheel`] — per-tick FIFO buckets for the
/// near horizon (`O(1)` schedule/pop for the bounded DRAM/bus latencies
/// that dominate this simulator) backed by a sorted overflow heap for
/// far-future events. The tie-break contract is independent of which tier
/// an event lands in; see [`crate::wheel`] for the geometry.
///
/// # Example
///
/// ```
/// use ndpb_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), 'b');
/// q.schedule(SimTime::from_ticks(5), 'c');
/// q.schedule(SimTime::from_ticks(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue whose timer wheel's near tier initially
    /// covers at least `horizon` ticks (see
    /// [`TimerWheel::with_horizon`]). Use when the caller knows its
    /// schedule is far-heavy — e.g. host-model completion times under
    /// channel contention — to skip the auto-tuning warm-up. Pop order
    /// is identical for any horizon.
    pub fn with_horizon(horizon: u64) -> Self {
        EventQueue {
            wheel: TimerWheel::with_horizon(horizon),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current near-tier width of the backing wheel, in ticks.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.wheel.horizon()
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far; useful as a progress/abort metric.
    #[inline]
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling at exactly [`now`](Self::now) — e.g. from inside the
    /// handler of the event that advanced the clock to `at` — is legal
    /// and ordered FIFO *after* every event already pending at that
    /// tick: ties break strictly by schedule order, never by storage
    /// internals (bucket, heap tier, or bitmap position).
    /// `crates/sim/tests/event_order.rs` pins this contract.
    ///
    /// # Panics
    ///
    /// Panics if `at` is strictly earlier than the current time: the
    /// simulation cannot travel backwards.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.wheel.insert(self.now, at, seq, event);
    }

    /// Schedules `event` `delay` after the current time.
    #[inline]
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _seq, event) = self.wheel.pop(self.now)?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.popped += 1;
        Some((at, event))
    }

    /// Pops the run of events at the head of the queue — a maximal
    /// same-tick batch, in exactly the order repeated [`pop`](Self::pop)
    /// calls would yield it — appending the events to `out` and
    /// advancing the clock to the shared timestamp.
    ///
    /// Returns that timestamp, or `None` if the queue is empty. A run
    /// never spans ticks; it may cover *less* than a full tick when the
    /// tick straddles the wheel's near/overflow tiers, in which case the
    /// next call continues the same tick. Draining a queue through
    /// `pop_run` is byte-identical to draining it through `pop`
    /// (`crates/sim/tests/wheel_prop.rs` pins this).
    #[inline]
    pub fn pop_run(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let before = out.len();
        let (at, _next) = self.wheel.pop_run(self.now, None, out)?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.popped += (out.len() - before) as u64;
        Some(at)
    }

    /// Timestamp of the next pending event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(30), 3);
        q.schedule(SimTime::from_ticks(10), 1);
        q.schedule(SimTime::from_ticks(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 'a');
        q.pop();
        q.schedule_after(SimTime::from_ticks(5), 'b');
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_ticks(15), 'b'));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_and_near_events_interleave_in_time_order() {
        use crate::wheel::WHEEL_SLOTS;
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.schedule(SimTime::from_ticks(far), 'z');
        q.schedule(SimTime::from_ticks(2), 'a');
        q.schedule(SimTime::from_ticks(far), 'y'); // same far tick, later seq
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(2)));
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(far), 'z'));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(far), 'y'));
    }

    #[test]
    fn popped_counts() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        q.pop();
        assert_eq!(q.popped(), 2);
    }
}
