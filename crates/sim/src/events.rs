//! Generic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordering events by timestamp, breaking ties in
/// first-scheduled-first-popped (FIFO) order so simulations are
/// deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use ndpb_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(5), 'b');
/// q.schedule(SimTime::from_ticks(5), 'c');
/// q.schedule(SimTime::from_ticks(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far; useful as a progress/abort metric.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling at exactly [`now`](Self::now) — e.g. from inside the
    /// handler of the event that advanced the clock to `at` — is legal
    /// and ordered FIFO *after* every event already pending at that
    /// tick: ties break strictly by schedule order, never by heap
    /// internals. `crates/sim/tests/event_order.rs` pins this contract.
    ///
    /// # Panics
    ///
    /// Panics if `at` is strictly earlier than the current time: the
    /// simulation cannot travel backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(30), 3);
        q.schedule(SimTime::from_ticks(10), 1);
        q.schedule(SimTime::from_ticks(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 'a');
        q.pop();
        q.schedule_after(SimTime::from_ticks(5), 'b');
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_ticks(15), 'b'));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(5), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn popped_counts() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        q.pop();
        q.pop();
        assert_eq!(q.popped(), 2);
    }
}
