//! Simulation time.
//!
//! All simulation timing is expressed in integer *ticks*. One tick is one
//! half cycle of the DDR4-2400 bus (2400 MT/s), i.e. 1/2.4 ns ≈ 0.4167 ns.
//! This base was chosen because every clock in the modeled system divides
//! it evenly:
//!
//! * one DDR bus cycle (1200 MHz) = [`TICKS_PER_BUS_CYCLE`] = 2 ticks,
//! * one NDP core cycle (400 MHz) = [`TICKS_PER_CORE_CYCLE`] = 6 ticks,
//! * one data beat on a single DQ pin = 1 tick (one bit per pin per tick).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of ticks per DDR4-2400 bus clock cycle (1200 MHz).
pub const TICKS_PER_BUS_CYCLE: u64 = 2;

/// Number of ticks per NDP core clock cycle (400 MHz, following UPMEM).
pub const TICKS_PER_CORE_CYCLE: u64 = 6;

/// Number of ticks in one nanosecond, as a rational (numerator,
/// denominator): 2.4 ticks per ns.
const TICKS_PER_NS_NUM: u64 = 12;
const TICKS_PER_NS_DEN: u64 = 5;

/// A point in simulated time, measured in ticks since simulation start.
///
/// `SimTime` is also used to express durations; the arithmetic operators
/// treat it as a plain unsigned quantity and panic on overflow/underflow in
/// debug builds, like the underlying `u64`.
///
/// # Example
///
/// ```
/// use ndpb_sim::SimTime;
/// let t = SimTime::from_core_cycles(10);
/// assert_eq!(t.ticks(), 60);
/// assert_eq!(t.core_cycles(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time a simulation will reach; used as the
    /// "never" sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Creates a time from NDP core cycles (400 MHz).
    #[inline]
    pub const fn from_core_cycles(cycles: u64) -> Self {
        SimTime(cycles * TICKS_PER_CORE_CYCLE)
    }

    /// Creates a time from DDR bus cycles (1200 MHz).
    #[inline]
    pub const fn from_bus_cycles(cycles: u64) -> Self {
        SimTime(cycles * TICKS_PER_BUS_CYCLE)
    }

    /// Creates a time from nanoseconds, rounding up to the next tick so
    /// that modeled latencies are never optimistic.
    #[inline]
    pub const fn from_ns_ceil(ns: u64) -> Self {
        SimTime((ns * TICKS_PER_NS_NUM).div_ceil(TICKS_PER_NS_DEN))
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This time expressed in whole NDP core cycles (truncating).
    #[inline]
    pub const fn core_cycles(self) -> u64 {
        self.0 / TICKS_PER_CORE_CYCLE
    }

    /// This time expressed in nanoseconds as a float (for reporting only).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 * TICKS_PER_NS_DEN as f64 / TICKS_PER_NS_NUM as f64
    }

    /// This time in seconds as a float (for energy/power reporting only).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.as_ns() * 1e-9
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow. Useful when adding to
    /// [`SimTime::MAX`] sentinels.
    #[inline]
    pub fn checked_add(self, d: SimTime) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}ns", self.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_cycle_is_six_ticks() {
        assert_eq!(SimTime::from_core_cycles(1).ticks(), 6);
        assert_eq!(SimTime::from_core_cycles(400_000_000).as_ns(), 1e9);
    }

    #[test]
    fn bus_cycle_is_two_ticks() {
        assert_eq!(SimTime::from_bus_cycles(3).ticks(), 6);
    }

    #[test]
    fn ns_conversion_rounds_up() {
        // 17 ns (CAS latency) = 40.8 ticks -> 41.
        assert_eq!(SimTime::from_ns_ceil(17).ticks(), 41);
        // 5 ns = 12 ticks exactly.
        assert_eq!(SimTime::from_ns_ceil(5).ticks(), 12);
    }

    #[test]
    fn as_ns_round_trips_exact_values() {
        let t = SimTime::from_ns_ceil(5);
        assert!((t.as_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_ticks(5);
        let b = SimTime::from_ticks(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_ticks(4));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ticks(5);
        let b = SimTime::from_ticks(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime::from_ticks(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimTime::from_ticks(1)),
            Some(SimTime::from_ticks(1))
        );
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_ticks(12);
        assert_eq!(format!("{t:?}"), "12t");
        assert_eq!(format!("{t}"), "5.0ns");
    }
}
