//! Cheap, stable content fingerprinting (FNV-1a, 64-bit).
//!
//! The sweep engine content-addresses simulation results by
//! configuration: a run is keyed by the hash of everything that can
//! change its outcome (config, app, design, scale, code version). The
//! standard-library `DefaultHasher` is explicitly *not* guaranteed
//! stable across Rust releases, so cached results keyed with it would
//! silently go stale (or worse, collide) on a toolchain upgrade. FNV-1a
//! is tiny, fully specified, and byte-for-byte reproducible everywhere.
//!
//! This is a *fingerprint*, not a cryptographic hash: collisions are
//! astronomically unlikely for the handful of sweep points a repro run
//! generates, but nothing here defends against adversarial inputs.
//!
//! # Example
//!
//! ```
//! use ndpb_sim::fingerprint::Fnv1a64;
//!
//! let mut h = Fnv1a64::new();
//! h.write_str("table1");
//! h.write_u64(0x5EED);
//! let a = h.finish();
//! // Identical input streams fingerprint identically…
//! let mut h2 = Fnv1a64::new();
//! h2.write_str("table1");
//! h2.write_u64(0x5EED);
//! assert_eq!(a, h2.finish());
//! // …and any difference changes the digest.
//! let mut h3 = Fnv1a64::new();
//! h3.write_str("table1");
//! h3.write_u64(0x5EEE);
//! assert_ne!(a, h3.finish());
//! ```

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string's UTF-8 bytes plus a terminator, so
    /// `("ab","c")` and `("a","bc")` fingerprint differently.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern (exact, including
    /// the sign of zero; NaNs hash by payload).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot fingerprint of a string.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(s.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Classic reference vectors for 64-bit FNV-1a.
        assert_eq!(fingerprint_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint_str("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn str_framing_prevents_concatenation_collisions() {
        let mut a = Fnv1a64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_and_f64_are_order_sensitive() {
        let mut a = Fnv1a64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut x = Fnv1a64::new();
        x.write_f64(0.1);
        let mut y = Fnv1a64::new();
        y.write_f64(0.1 + f64::EPSILON);
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Fnv1a64::default().finish(), Fnv1a64::new().finish());
    }
}
