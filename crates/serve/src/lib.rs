//! # ndpb-serve
//!
//! A resident simulation-as-a-service front-end over the sweep engine:
//! the `repro serve` subcommand binds a TCP port and turns the one-shot
//! CLI into a long-running server. The pipeline per request is
//!
//! ```text
//! admission → dedup/batch → resident pool → result cache
//! ```
//!
//! * **Admission** bounds the number of unique in-flight points
//!   (`max_queue`, 429 on overflow) and the per-request point count
//!   (`max_points`, 413 on overflow); a draining server answers 503.
//! * **Dedup** coalesces identical in-flight [`SweepPoint`]s: all
//!   concurrent requests for one content-addressed key share one
//!   [`jobs::PointCell`], the simulation runs exactly once, and the
//!   result fans out to every attached job.
//! * The **resident pool** is [`Sweeper::submit`] — detached workers
//!   that survive between requests.
//! * The **cache** serves repeat keys without touching the pool at all:
//!   pool workers store results on disk *before* completing a point, so
//!   every submitted key is obtainable from exactly one of
//!   {in-flight table, cache}.
//!
//! Endpoints: `POST /run`, `GET /job/{id}`, `GET /metrics`,
//! `GET /healthz`, `POST /shutdown`. The same port speaks a one-line
//! protocol (see [`http`]) so `bash` alone can drive a smoke test.
//! SIGINT or `/shutdown` drains in-flight jobs before exiting.

pub mod http;
pub mod jobs;

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use ndpb_bench::{SweepPoint, Sweeper};

use http::Request;
use jobs::{Job, PointCell, RunRequest};

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Simulation worker count for the resident pool.
    pub jobs: usize,
    /// Result-cache directory (`None` disables the cache — every
    /// request simulates, and restarts serve nothing).
    pub cache_dir: Option<PathBuf>,
    /// Admission bound on unique in-flight points (429 beyond it).
    pub max_queue: usize,
    /// Admission bound on points per request (413 beyond it).
    pub max_points: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            jobs: ndpb_bench::sweep::default_jobs(),
            cache_dir: Some(PathBuf::from("target/repro-cache")),
            max_queue: 256,
            max_points: 64,
        }
    }
}

/// Number of connection-handling threads. Requests are short (submits
/// return immediately; clients poll), so a small fixed crew suffices.
const HTTP_WORKERS: usize = 8;

/// How often the supervisor thread polls for shutdown/drain progress.
const POLL: Duration = Duration::from_millis(25);

/// Per-connection read timeout so an idle keep-alive client cannot pin
/// a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Shared server state: the engine, the job/dedup tables, counters.
#[derive(Debug)]
pub struct State {
    sweeper: Sweeper,
    jobs: Mutex<HashMap<u64, Job>>,
    next_job: AtomicU64,
    inflight: jobs::Inflight,
    max_queue: usize,
    max_points: usize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    deduped: AtomicU64,
    cache_hits: AtomicU64,
    in_flight: AtomicU64,
    // Windowed parallel-execution counters, accumulated from every
    // point actually simulated (cache hits restore no stats). Zero
    // across the board means every run took the exact-merge path.
    par_shards: AtomicU64,
    par_windows: AtomicU64,
    par_stall_ns: AtomicU64,
    // Last-completed-run throughput snapshot (latest writer wins):
    // simulated event count and submit→completion wall time, surfaced
    // as events/sec by `/metrics` so a resident server exposes the same
    // headline number `repro bench` prints. Zeros until a point
    // completes; cache fast-path hits simulate nothing and leave it
    // untouched.
    last_events: AtomicU64,
    last_wall_ns: AtomicU64,
    completed: AtomicU64,
    shutdown: AtomicBool,
}

impl State {
    fn new(cfg: &ServerConfig) -> Arc<Self> {
        let mut sweeper = Sweeper::new(cfg.jobs);
        if let Some(dir) = &cfg.cache_dir {
            sweeper = sweeper.with_cache(dir.clone());
        }
        Arc::new(State {
            sweeper,
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            inflight: Mutex::new(HashMap::new()),
            max_queue: cfg.max_queue.max(1),
            max_points: cfg.max_points.max(1),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            par_shards: AtomicU64::new(0),
            par_windows: AtomicU64::new(0),
            par_stall_ns: AtomicU64::new(0),
            last_events: AtomicU64::new(0),
            last_wall_ns: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The underlying engine (its metrics feed `/metrics`).
    pub fn sweeper(&self) -> &Sweeper {
        &self.sweeper
    }

    /// True once `/shutdown` or SIGINT was seen.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (idempotent).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Unique in-flight (submitted, not yet completed) points.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Routes one parsed request to its handler; returns (status, body).
    pub fn dispatch(self: &Arc<Self>, method: &str, path: &str, body: &str) -> (u16, String) {
        match (method, path) {
            ("POST", "/run") => self.handle_run(body),
            ("GET", "/metrics") => (200, self.metrics_json()),
            ("GET", "/healthz") => (200, self.healthz_json()),
            ("POST", "/shutdown") | ("GET", "/shutdown") => {
                self.begin_shutdown();
                (200, "{\"ok\":true,\"draining\":true}".to_string())
            }
            ("GET", _) if path.starts_with("/job/") => self.handle_job(&path[5..]),
            ("GET", "/run") => (405, err_body("POST a JSON body to /run")),
            _ => (404, err_body("no such endpoint")),
        }
    }

    /// `POST /run`: admission → cache fast path → dedup → pool.
    fn handle_run(self: &Arc<Self>, body: &str) -> (u16, String) {
        if self.shutting_down() {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return (503, err_body("shutting down"));
        }
        let req = match RunRequest::parse(body) {
            Ok(r) => r,
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return (400, err_body(&e));
            }
        };
        let points = req.points();
        if points.len() > self.max_points {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return (
                413,
                err_body(&format!(
                    "request expands to {} points, budget is {}",
                    points.len(),
                    self.max_points
                )),
            );
        }

        // Classify every point under the in-flight lock so admission,
        // dedup and the cache fast path are atomic with respect to
        // concurrent submitters and completions. (Pool workers store a
        // result to the cache *before* its key leaves the table, so a
        // key missing here and missing in the cache is genuinely new.)
        let mut cells: Vec<Arc<PointCell>> = Vec::with_capacity(points.len());
        let mut fresh: Vec<(u64, SweepPoint, Arc<PointCell>)> = Vec::new();
        {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            for p in points {
                let key = p.key();
                if let Some(cell) = inflight.get(&key) {
                    self.deduped.fetch_add(1, Ordering::SeqCst);
                    cells.push(cell.clone());
                } else if let Some(hit) = self.sweeper.cached(&p) {
                    self.cache_hits.fetch_add(1, Ordering::SeqCst);
                    cells.push(PointCell::ready(hit.to_json()));
                } else {
                    let cell = Arc::new(PointCell::default());
                    cells.push(cell.clone());
                    fresh.push((key, p, cell));
                }
            }
            if inflight.len() + fresh.len() > self.max_queue {
                // Reject before submitting anything; attached dedup
                // cells cost nothing (their owners keep running).
                self.rejected.fetch_add(1, Ordering::SeqCst);
                return (
                    429,
                    err_body(&format!(
                        "queue full ({} in flight, {} requested, bound {})",
                        inflight.len(),
                        fresh.len(),
                        self.max_queue
                    )),
                );
            }
            for (key, point, cell) in fresh {
                inflight.insert(key, cell.clone());
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                let ticket = self.sweeper.submit(point);
                let state = Arc::clone(self);
                let submitted = std::time::Instant::now();
                // One lightweight waiter per unique point bridges the
                // pool's ticket to every job attached to the cell.
                thread::spawn(move || {
                    let result = ticket.wait();
                    let wall = submitted.elapsed();
                    state.last_events.store(result.events, Ordering::SeqCst);
                    state
                        .last_wall_ns
                        .store(wall.as_nanos() as u64, Ordering::SeqCst);
                    state.completed.fetch_add(1, Ordering::SeqCst);
                    if let Some(p) = result.parallel {
                        state
                            .par_shards
                            .fetch_max(p.shards as u64, Ordering::SeqCst);
                        state.par_windows.fetch_add(p.windows, Ordering::SeqCst);
                        state
                            .par_stall_ns
                            .fetch_add(p.barrier_stall_ns, Ordering::SeqCst);
                    }
                    let json = result.to_json();
                    {
                        let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
                        cell.fill(json);
                        inflight.remove(&key);
                    }
                    state.in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }

        self.accepted.fetch_add(1, Ordering::SeqCst);
        let id = self.next_job.fetch_add(1, Ordering::SeqCst);
        let job = Job { cells };
        let doc = job.to_json(id);
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, job);
        (200, doc)
    }

    /// `GET /job/{id}`.
    fn handle_job(&self, id: &str) -> (u16, String) {
        let Ok(id) = id.parse::<u64>() else {
            return (404, err_body("job ids are integers"));
        };
        let job = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.get(&id).cloned()
        };
        match job {
            Some(job) => (200, job.to_json(id)),
            None => (404, err_body("no such job")),
        }
    }

    /// `GET /metrics`: server counters, windowed parallel-execution
    /// counters (max shard count seen, windows executed, cumulative
    /// barrier-stall time), the last completed run's throughput, plus
    /// the engine's live table.
    pub fn metrics_json(&self) -> String {
        let last_events = self.last_events.load(Ordering::SeqCst);
        let last_wall_ns = self.last_wall_ns.load(Ordering::SeqCst);
        let eps = if last_wall_ns > 0 {
            last_events as f64 * 1e9 / last_wall_ns as f64
        } else {
            0.0
        };
        format!(
            "{{\"server\":{{\"accepted\":{},\"rejected\":{},\"deduped\":{},\"cache_hits\":{},\"in_flight\":{},\"completed\":{}}},\"parallel\":{{\"shards\":{},\"windows\":{},\"barrier_stall_ns\":{}}},\"last_run\":{{\"events\":{},\"wall_ns\":{},\"events_per_sec\":{:.1}}},\"sweep\":{}}}",
            self.accepted.load(Ordering::SeqCst),
            self.rejected.load(Ordering::SeqCst),
            self.deduped.load(Ordering::SeqCst),
            self.cache_hits.load(Ordering::SeqCst),
            self.in_flight.load(Ordering::SeqCst),
            self.completed.load(Ordering::SeqCst),
            self.par_shards.load(Ordering::SeqCst),
            self.par_windows.load(Ordering::SeqCst),
            self.par_stall_ns.load(Ordering::SeqCst),
            last_events,
            last_wall_ns,
            eps,
            self.sweeper.metrics().live_report().to_json(),
        )
    }

    /// `GET /healthz`.
    fn healthz_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"jobs\":{},\"in_flight\":{},\"draining\":{}}}",
            self.jobs.lock().unwrap_or_else(|e| e.into_inner()).len(),
            self.in_flight(),
            self.shutting_down(),
        )
    }
}

fn err_body(msg: &str) -> String {
    format!(
        "{{\"error\":\"{}\"}}",
        msg.replace('\\', "\\\\").replace('"', "\\\"")
    )
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<State>,
}

impl Server {
    /// Binds 127.0.0.1:`port` and builds the shared state. The engine's
    /// pool threads start lazily on the first submit.
    pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            state: State::new(cfg),
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests poke it directly).
    pub fn state(&self) -> &Arc<State> {
        &self.state
    }

    /// Serves until `/shutdown` (or SIGINT), then drains: waits for
    /// every in-flight point to finish — and land in the cache — before
    /// returning. Blocks the calling thread for the server's lifetime.
    pub fn run(self) -> io::Result<()> {
        #[cfg(unix)]
        install_sigint_handler();
        eprintln!("[serve] listening on {}", self.addr);
        let mut workers = Vec::new();
        for w in 0..HTTP_WORKERS {
            let listener = self.listener.try_clone()?;
            let state = Arc::clone(&self.state);
            workers.push(
                thread::Builder::new()
                    .name(format!("http-{w}"))
                    .spawn(move || {
                        while !state.shutting_down() {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if state.shutting_down() {
                                        break;
                                    }
                                    let _ = handle_connection(stream, &state);
                                }
                                Err(_) => break,
                            }
                        }
                    })?,
            );
        }

        // Supervisor loop: promote SIGINT to a shutdown, then unblock
        // the accept() calls with dummy connections and drain.
        loop {
            #[cfg(unix)]
            if sigint_seen() {
                eprintln!("[serve] SIGINT, draining");
                self.state.begin_shutdown();
            }
            if self.state.shutting_down() {
                break;
            }
            thread::sleep(POLL);
        }
        for _ in 0..HTTP_WORKERS {
            // Each worker consumes at most one wake-up connection.
            let _ = TcpStream::connect(self.addr);
        }
        for w in workers {
            let _ = w.join();
        }
        while self.state.in_flight() > 0 {
            thread::sleep(POLL);
        }
        eprintln!("[serve] drained, exiting");
        Ok(())
    }
}

/// Serves one connection: keep-alive HTTP requests, or one
/// line-protocol command.
fn handle_connection(stream: TcpStream, state: &Arc<State>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    while let Some(req) = http::read_request(&mut reader)? {
        match req {
            Request::Http {
                method,
                path,
                body,
                keep_alive,
            } => {
                let (status, body) = state.dispatch(&method, &path, &body);
                let keep = keep_alive && !state.shutting_down();
                http::write_response(&mut stream, status, &body, keep)?;
                if !keep {
                    break;
                }
            }
            Request::Line { cmd, rest } => {
                let (method, path, body) = match cmd.as_str() {
                    "run" => ("POST", "/run".to_string(), rest),
                    "job" => ("GET", format!("/job/{rest}"), String::new()),
                    "metrics" => ("GET", "/metrics".to_string(), String::new()),
                    "healthz" => ("GET", "/healthz".to_string(), String::new()),
                    "shutdown" => ("POST", "/shutdown".to_string(), String::new()),
                    other => {
                        http::write_line(
                            &mut stream,
                            &err_body(&format!("unknown command {other:?}")),
                        )?;
                        return Ok(());
                    }
                };
                let (_status, body) = state.dispatch(method, &path, &body);
                http::write_line(&mut stream, &body)?;
                // Line protocol is one command per connection.
                return Ok(());
            }
        }
    }
    stream.flush()
}

#[cfg(unix)]
static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn sigint_seen() -> bool {
    SIGINT_FLAG.load(Ordering::SeqCst)
}

/// Registers a SIGINT handler that only sets a flag (the async-signal-
/// safe minimum); the supervisor loop notices it within one poll tick.
/// Raw libc `signal` keeps the workspace dependency-free.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        SIGINT_FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_bench::Column;
    use ndpb_core::design::DesignPoint;
    use ndpb_workloads::Scale;

    fn test_state(max_queue: usize, max_points: usize) -> Arc<State> {
        State::new(&ServerConfig {
            port: 0,
            jobs: 2,
            cache_dir: None,
            max_queue,
            max_points,
        })
    }

    #[test]
    fn dedup_attaches_to_a_preinserted_inflight_cell() {
        // Deterministic dedup check, no timing: pre-insert the cell an
        // "earlier request" would own, then submit the same point.
        let state = test_state(8, 8);
        let req = RunRequest::parse("{\"app\":\"ll\",\"design\":\"C\"}").unwrap();
        let key = req.points()[0].key();
        let cell = Arc::new(PointCell::default());
        state.inflight.lock().unwrap().insert(key, cell.clone());
        state.in_flight.fetch_add(1, Ordering::SeqCst);

        let (status, body) = state.dispatch("POST", "/run", "{\"app\":\"ll\",\"design\":\"C\"}");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"queued\""), "{body}");
        assert_eq!(state.deduped.load(Ordering::SeqCst), 1);
        assert_eq!(
            state
                .sweeper
                .metrics()
                .live_report()
                .final_value("sweep/simulated"),
            None,
            "nothing was ever submitted to the pool"
        );

        // Filling the shared cell completes the attached job.
        cell.fill("{\"fake\":true}".to_string());
        let (status, body) = state.dispatch("GET", "/job/1", "");
        assert_eq!(status, 200);
        assert_eq!(
            body,
            "{\"id\":1,\"status\":\"done\",\"points\":1,\"results\":[{\"fake\":true}]}"
        );
    }

    #[test]
    fn queue_bound_rejects_with_429() {
        let state = test_state(1, 8);
        let other = SweepPoint::new(
            "pr",
            Column::Ndp(DesignPoint::C),
            ndpb_core::config::SystemConfig::table1(),
            Scale::Tiny,
        );
        state
            .inflight
            .lock()
            .unwrap()
            .insert(other.key(), Arc::new(PointCell::default()));
        let (status, body) = state.dispatch("POST", "/run", "{\"app\":\"ll\"}");
        assert_eq!(status, 429, "{body}");
        assert_eq!(state.rejected.load(Ordering::SeqCst), 1);
        assert_eq!(state.accepted.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn point_budget_rejects_with_413() {
        let state = test_state(64, 3);
        let (status, _) = state.dispatch(
            "POST",
            "/run",
            "{\"apps\":[\"ll\",\"pr\"],\"designs\":[\"C\",\"B\"]}",
        );
        assert_eq!(status, 413);
        assert_eq!(state.rejected.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bad_requests_reject_and_count() {
        let state = test_state(8, 8);
        assert_eq!(state.dispatch("POST", "/run", "{").0, 400);
        assert_eq!(state.dispatch("GET", "/nope", "").0, 404);
        assert_eq!(state.dispatch("GET", "/job/zzz", "").0, 404);
        assert_eq!(state.dispatch("GET", "/job/99", "").0, 404);
        assert_eq!(state.dispatch("GET", "/run", "").0, 405);
        assert_eq!(state.rejected.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_rejects_new_runs_with_503() {
        let state = test_state(8, 8);
        state.begin_shutdown();
        let (status, _) = state.dispatch("POST", "/run", "{\"app\":\"ll\"}");
        assert_eq!(status, 503);
        assert!(state.healthz_json().contains("\"draining\":true"));
    }

    #[test]
    fn metrics_document_is_parseable_and_has_server_counters() {
        let state = test_state(8, 8);
        let doc = state.metrics_json();
        let j = ndpb_bench::json::Json::parse(&doc).expect("valid JSON");
        let server = j.get("server").expect("server block");
        for k in [
            "accepted",
            "rejected",
            "deduped",
            "cache_hits",
            "in_flight",
            "completed",
        ] {
            assert_eq!(server.u64_field(k), Some(0), "{k}");
        }
        let parallel = j.get("parallel").expect("parallel block");
        for k in ["shards", "windows", "barrier_stall_ns"] {
            assert_eq!(parallel.u64_field(k), Some(0), "{k}");
        }
        // No run has completed: the throughput snapshot is all zeros.
        let last = j.get("last_run").expect("last_run block");
        assert_eq!(last.u64_field("events"), Some(0));
        assert_eq!(last.u64_field("wall_ns"), Some(0));
        assert_eq!(last.f64_field("events_per_sec"), Some(0.0));
        assert!(j.get("sweep").is_some());
    }

    #[test]
    fn metrics_report_last_completed_run_throughput() {
        let state = test_state(8, 8);
        let (status, _) = state.dispatch("POST", "/run", "{\"app\":\"ll\",\"design\":\"C\"}");
        assert_eq!(status, 200);
        // The waiter thread fills the snapshot when the pool finishes.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        while state.completed.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "run never completed; metrics: {}",
                state.metrics_json()
            );
            thread::sleep(Duration::from_millis(10));
        }
        let doc = state.metrics_json();
        let j = ndpb_bench::json::Json::parse(&doc).expect("valid JSON");
        let last = j.get("last_run").expect("last_run block");
        assert!(last.u64_field("events").unwrap() > 0, "{doc}");
        assert!(last.u64_field("wall_ns").unwrap() > 0, "{doc}");
        assert!(last.f64_field("events_per_sec").unwrap() > 0.0, "{doc}");
        assert_eq!(
            j.get("server").unwrap().u64_field("completed"),
            Some(1),
            "{doc}"
        );
    }
}
