//! Minimal blocking HTTP/1.1 plumbing for the service front-end.
//!
//! This is deliberately a subset: request line + headers + an optional
//! `Content-Length` body, keep-alive by HTTP/1.1 default, and nothing
//! else (no chunked encoding, no TLS, no compression). The service's
//! request bodies are a few hundred bytes of JSON and its responses are
//! single JSON documents, so the subset is exactly what is exercised.
//!
//! The same port also speaks a one-line **line protocol** (`run {...}`,
//! `job 3`, `metrics`, `healthz`, `shutdown`): the first line of a
//! connection that does not end in `HTTP/1.x` is treated as a command
//! and answered with one line of JSON. That keeps CI smokes and quick
//! pokes possible from bare `bash` (`/dev/tcp`) without `curl`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on header block and body sizes: the service's real requests are
/// tiny, so anything huge is a mistake or abuse, not a workload.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed inbound request, either HTTP or line-protocol.
#[derive(Debug)]
pub enum Request {
    /// A full HTTP request.
    Http {
        /// Request method (`GET`, `POST`, …), uppercased by the client.
        method: String,
        /// Request path (`/run`, `/job/3`, …), query string stripped.
        path: String,
        /// Request body (empty without a `Content-Length`).
        body: String,
        /// Whether the client asked to keep the connection open.
        keep_alive: bool,
    },
    /// A one-line command (`run {...}`, `metrics`, …).
    Line {
        /// The command word.
        cmd: String,
        /// Everything after the command word.
        rest: String,
    },
}

/// Reads one request off the connection. `Ok(None)` is a clean EOF
/// (client closed between keep-alive requests); errors are malformed or
/// oversized requests and should close the connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return Ok(None);
    }

    let is_http = line.ends_with("HTTP/1.1") || line.ends_with("HTTP/1.0");
    if !is_http {
        let (cmd, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        return Ok(Some(Request::Line {
            cmd: cmd.to_ascii_lowercase(),
            rest: rest.to_string(),
        }));
    }

    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("/");
    let path = target.split('?').next().unwrap_or("/").to_string();

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    if line.ends_with("HTTP/1.0") {
        keep_alive = false;
    }
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body not utf-8"))?;

    Ok(Some(Request::Http {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// The reason phrase for the handful of statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one HTTP response with a JSON body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one line-protocol response: the JSON body and a newline.
pub fn write_line(stream: &mut TcpStream, body: &str) -> io::Result<()> {
    stream.write_all(body.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
