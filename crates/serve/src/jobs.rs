//! The job subsystem: typed requests, admission control, and the
//! dedup/fan-out layer between HTTP handlers and the sweep pool.
//!
//! A request names one or more (app × design) cells at one scale; each
//! cell becomes a [`SweepPoint`] whose content-addressed key (the same
//! key the on-disk cache uses) also identifies it for *in-flight
//! deduplication*: all concurrently submitted requests for one key
//! share a single [`PointCell`], the simulation runs exactly once, and
//! the result fans back out to every waiter. Keys whose result is
//! already on disk are served straight from the cache and never touch
//! the pool.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use ndpb_bench::json::Json;
use ndpb_bench::{Column, SweepPoint};
use ndpb_core::audit::AuditLevel;
use ndpb_core::config::SystemConfig;
use ndpb_core::design::DesignPoint;
use ndpb_workloads::{Scale, APP_NAMES, EXTRA_APP_NAMES};

/// A typed `/run` request: the cross product `apps × designs` at one
/// scale, with an optional audit-level override.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Application names (validated against the workload registry).
    pub apps: Vec<String>,
    /// Design columns.
    pub columns: Vec<Column>,
    /// Workload scale (defaults to `tiny`).
    pub scale: Scale,
    /// Audit override; `None` keeps the config default.
    pub audit: Option<AuditLevel>,
    /// Shard-count override; `None` keeps the config default (1).
    /// Observationally invisible: it never moves the point key, so a
    /// sharded request deduplicates and caches against a serial one.
    pub shards: Option<usize>,
}

fn parse_column(s: &str) -> Option<Column> {
    // Labels match `Column::label()` / the CLI tables; lowercase
    // aliases are accepted for hand-typed curl bodies.
    Some(match s.to_ascii_uppercase().as_str() {
        "C" => Column::Ndp(DesignPoint::C),
        "B" => Column::Ndp(DesignPoint::B),
        "W" => Column::Ndp(DesignPoint::W),
        "O" => Column::Ndp(DesignPoint::O),
        "R" => Column::Ndp(DesignPoint::R),
        "W+ADV" => Column::Ndp(DesignPoint::WAdv),
        "W+FINE" => Column::Ndp(DesignPoint::WFine),
        "W+HOT" => Column::Ndp(DesignPoint::WHot),
        "W+BYTE" => Column::Ndp(DesignPoint::WByte),
        "W+LENT" => Column::Ndp(DesignPoint::WLent),
        "W+GA" => Column::Ndp(DesignPoint::WGather),
        "O+GA" => Column::Ndp(DesignPoint::OGather),
        "H" => Column::Host,
        _ => return None,
    })
}

fn parse_scale(s: &str) -> Option<Scale> {
    Some(match s.to_ascii_lowercase().as_str() {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => return None,
    })
}

fn parse_audit(s: &str) -> Option<AuditLevel> {
    Some(match s.to_ascii_lowercase().as_str() {
        "off" => AuditLevel::Off,
        "final" => AuditLevel::Final,
        "full" => AuditLevel::Full,
        _ => return None,
    })
}

fn known_app(name: &str) -> bool {
    APP_NAMES
        .iter()
        .chain(EXTRA_APP_NAMES.iter())
        .any(|&a| a == name)
}

/// One-or-many string field: `"app": "ll"` or `"apps": ["ll","pr"]`.
fn string_list(j: &Json, one: &str, many: &str) -> Result<Option<Vec<String>>, String> {
    if let Some(v) = j.get(many) {
        let arr = v
            .as_arr()
            .ok_or_else(|| format!("{many:?} must be an array"))?;
        let items = arr
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()
            .ok_or_else(|| format!("{many:?} must be an array of strings"))?;
        if items.is_empty() {
            return Err(format!("{many:?} must not be empty"));
        }
        return Ok(Some(items));
    }
    if let Some(v) = j.get(one) {
        let s = v
            .as_str()
            .ok_or_else(|| format!("{one:?} must be a string"))?;
        return Ok(Some(vec![s.to_string()]));
    }
    Ok(None)
}

impl RunRequest {
    /// Parses the JSON body of `POST /run`. Errors are returned as
    /// plain-text messages suitable for a 400 body.
    pub fn parse(body: &str) -> Result<RunRequest, String> {
        let j = Json::parse(body).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let apps = string_list(&j, "app", "apps")?
            .ok_or_else(|| "missing \"app\" (or \"apps\")".to_string())?;
        for a in &apps {
            if !known_app(a) {
                return Err(format!("unknown app {a:?}"));
            }
        }
        let columns = match string_list(&j, "design", "designs")? {
            Some(labels) => labels
                .iter()
                .map(|l| parse_column(l).ok_or_else(|| format!("unknown design {l:?}")))
                .collect::<Result<Vec<Column>, String>>()?,
            None => vec![Column::Ndp(DesignPoint::O)],
        };
        let scale = match j.get("scale") {
            Some(v) => {
                let s = v.as_str().ok_or("\"scale\" must be a string")?;
                parse_scale(s).ok_or_else(|| format!("unknown scale {s:?}"))?
            }
            None => Scale::Tiny,
        };
        let audit = match j.get("audit") {
            Some(v) => {
                let s = v.as_str().ok_or("\"audit\" must be a string")?;
                Some(parse_audit(s).ok_or_else(|| format!("unknown audit level {s:?}"))?)
            }
            None => None,
        };
        let shards = match j.get("shards") {
            Some(v) => {
                let n = v
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .ok_or("\"shards\" must be a positive integer")?;
                Some(n as usize)
            }
            None => None,
        };
        Ok(RunRequest {
            apps,
            columns,
            scale,
            audit,
            shards,
        })
    }

    /// Expands the request into sweep points, apps-major like the CLI's
    /// `run_matrix`. Every point uses the paper's Table-1 configuration
    /// — the same one the CLI figures run — so service results are
    /// byte-identical to `repro` output for the same cell.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.apps
            .iter()
            .flat_map(|app| {
                self.columns.iter().map(move |&col| {
                    let mut cfg = SystemConfig::table1();
                    if let Some(level) = self.audit {
                        cfg.audit = level;
                    }
                    if let Some(shards) = self.shards {
                        cfg.shards = shards;
                    }
                    SweepPoint::new(app.clone(), col, cfg, self.scale)
                })
            })
            .collect()
    }
}

/// The rendezvous for one in-flight (or already-served) point: filled
/// with the result's JSON exactly once, then read by every job that
/// attached to it.
#[derive(Debug, Default)]
pub struct PointCell {
    result: Mutex<Option<String>>,
    done: Condvar,
}

impl PointCell {
    /// A cell already holding `json` (cache fast path).
    pub fn ready(json: String) -> Arc<Self> {
        let cell = PointCell::default();
        *cell.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
        Arc::new(cell)
    }

    /// Fills the cell and wakes blocked waiters. Filling twice is a
    /// logic error upstream (each key has one owner).
    pub fn fill(&self, json: String) {
        let mut g = self.result.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(g.is_none(), "point cell filled twice");
        *g = Some(json);
        self.done.notify_all();
    }

    /// The result, if the point has completed.
    pub fn peek(&self) -> Option<String> {
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Blocks until the cell is filled and returns the result.
    pub fn wait(&self) -> String {
        let mut g = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(json) = g.as_ref() {
                return json.clone();
            }
            g = self.done.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One accepted job: an ordered list of point cells (shared with other
/// jobs that requested the same points).
#[derive(Debug, Clone)]
pub struct Job {
    /// Cells in request point order.
    pub cells: Vec<Arc<PointCell>>,
}

impl Job {
    /// `queued` / `running` / `done` for `GET /job/{id}`: `done` once
    /// every cell is filled, `running` once any is (progress exists),
    /// `queued` before that.
    pub fn status(&self) -> &'static str {
        let filled = self.cells.iter().filter(|c| c.peek().is_some()).count();
        if filled == self.cells.len() {
            "done"
        } else if filled > 0 {
            "running"
        } else {
            "queued"
        }
    }

    /// Renders the job document. `results` appears only when done, as
    /// an array of `RunResult` JSON documents in point order.
    pub fn to_json(&self, id: u64) -> String {
        let status = self.status();
        if status != "done" {
            return format!(
                "{{\"id\":{id},\"status\":\"{status}\",\"points\":{}}}",
                self.cells.len()
            );
        }
        let results: Vec<String> = self.cells.iter().map(|c| c.wait()).collect();
        format!(
            "{{\"id\":{id},\"status\":\"done\",\"points\":{},\"results\":[{}]}}",
            self.cells.len(),
            results.join(",")
        )
    }
}

/// The in-flight dedup table: point key → the cell its simulation will
/// fill. Entries are removed *after* the cell is filled and the result
/// is stored in the on-disk cache, so a key is always obtainable from
/// exactly one of {inflight table, cache} once submitted.
pub type Inflight = Mutex<HashMap<u64, Arc<PointCell>>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_minimal_and_full_bodies() {
        let r = RunRequest::parse("{\"app\":\"ll\"}").unwrap();
        assert_eq!(r.apps, vec!["ll"]);
        assert_eq!(r.columns, vec![Column::Ndp(DesignPoint::O)]);
        assert!(matches!(r.scale, Scale::Tiny));
        assert!(r.audit.is_none());

        assert!(r.shards.is_none());

        let r = RunRequest::parse(
            "{\"apps\":[\"ll\",\"pr\"],\"designs\":[\"C\",\"h\",\"W+Hot\"],\"scale\":\"small\",\"audit\":\"full\",\"shards\":4}",
        )
        .unwrap();
        assert_eq!(r.shards, Some(4));
        assert_eq!(r.apps.len(), 2);
        assert_eq!(
            r.columns,
            vec![
                Column::Ndp(DesignPoint::C),
                Column::Host,
                Column::Ndp(DesignPoint::WHot)
            ]
        );
        assert!(matches!(r.scale, Scale::Small));
        assert_eq!(r.audit, Some(AuditLevel::Full));
        assert_eq!(r.points().len(), 6, "apps x designs cross product");
    }

    #[test]
    fn parse_accepts_gather_aware_designs() {
        let r = RunRequest::parse(
            "{\"app\":\"tree\",\"designs\":[\"W+Byte\",\"w+lent\",\"W+GA\",\"o+ga\"]}",
        )
        .unwrap();
        assert_eq!(
            r.columns,
            vec![
                Column::Ndp(DesignPoint::WByte),
                Column::Ndp(DesignPoint::WLent),
                Column::Ndp(DesignPoint::WGather),
                Column::Ndp(DesignPoint::OGather),
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_bodies() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"app\":\"nope\"}",
            "{\"app\":\"ll\",\"design\":\"Z\"}",
            "{\"app\":\"ll\",\"scale\":\"huge\"}",
            "{\"app\":\"ll\",\"audit\":\"maybe\"}",
            "{\"apps\":[]}",
            "{\"apps\":[3]}",
            "{\"app\":\"ll\",\"shards\":0}",
            "{\"app\":\"ll\",\"shards\":\"four\"}",
        ] {
            assert!(RunRequest::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn audit_override_lands_in_the_point_config() {
        let r = RunRequest::parse("{\"app\":\"ll\",\"audit\":\"off\"}").unwrap();
        assert_eq!(r.points()[0].cfg.audit, AuditLevel::Off);
        let r = RunRequest::parse("{\"app\":\"ll\",\"audit\":\"final\"}").unwrap();
        assert_eq!(r.points()[0].cfg.audit, AuditLevel::Final);
    }

    #[test]
    fn sharded_points_share_keys_with_serial_ones() {
        // Shard count must never move the point key: a sharded request
        // has to dedup against an in-flight serial duplicate and hit
        // results the serial run already cached.
        let serial = RunRequest::parse("{\"app\":\"ll\"}").unwrap();
        let sharded = RunRequest::parse("{\"app\":\"ll\",\"shards\":4}").unwrap();
        assert_eq!(sharded.points()[0].cfg.shards, 4);
        assert_eq!(serial.points()[0].key(), sharded.points()[0].key());
    }

    #[test]
    fn job_status_progresses_with_cell_fills() {
        let a = Arc::new(PointCell::default());
        let b = Arc::new(PointCell::default());
        let job = Job {
            cells: vec![a.clone(), b.clone()],
        };
        assert_eq!(job.status(), "queued");
        a.fill("{\"x\":1}".to_string());
        assert_eq!(job.status(), "running");
        b.fill("{\"y\":2}".to_string());
        assert_eq!(job.status(), "done");
        assert_eq!(
            job.to_json(7),
            "{\"id\":7,\"status\":\"done\",\"points\":2,\"results\":[{\"x\":1},{\"y\":2}]}"
        );
    }

    #[test]
    fn waiters_block_until_fill() {
        let cell = Arc::new(PointCell::default());
        let waiter = {
            let cell = cell.clone();
            std::thread::spawn(move || cell.wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.fill("{}".to_string());
        assert_eq!(waiter.join().unwrap(), "{}");
        assert_eq!(cell.peek(), Some("{}".to_string()));
    }
}
