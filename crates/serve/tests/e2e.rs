//! End-to-end service tests: a real server on an ephemeral port, real
//! TCP clients, and the acceptance properties from the service design —
//! in-flight duplicates simulate once, results are byte-identical to
//! direct library runs, restarts serve from the cache without touching
//! the pool, and `/metrics`/`/healthz` stay well-formed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ndpb_bench::json::Json;
use ndpb_core::config::SystemConfig;
use ndpb_core::design::DesignPoint;
use ndpb_serve::{Server, ServerConfig, State};
use ndpb_workloads::Scale;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndpb-serve-{tag}-{}", std::process::id()))
}

fn start(cfg: ServerConfig) -> (SocketAddr, Arc<State>, JoinHandle<()>) {
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.addr();
    let state = Arc::clone(server.state());
    let handle = thread::spawn(move || server.run().expect("server run"));
    (addr, state, handle)
}

/// Minimal HTTP client: one request per call, `Connection: close`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn job_id(run_response: &str) -> u64 {
    Json::parse(run_response)
        .expect("run response JSON")
        .u64_field("id")
        .expect("job id")
}

fn poll_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/job/{id}"), "");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"done\"") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown_and_join(addr: SocketAddr, handle: JoinHandle<()>) {
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread exits cleanly");
}

fn server_counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let j = Json::parse(&body).expect("metrics JSON");
    j.get("server")
        .and_then(|s| s.u64_field(name))
        .unwrap_or_else(|| panic!("missing server counter {name} in {body}"))
}

const BODY: &str = "{\"app\":\"ll\",\"design\":\"C\",\"scale\":\"tiny\"}";

fn expected_result_json() -> String {
    // The exact run the service performs for BODY: Table-1 config,
    // default audit level, via the same library entry point.
    ndpb_bench::run_one("ll", DesignPoint::C, SystemConfig::table1(), Scale::Tiny).to_json()
}

#[test]
fn duplicate_requests_dedup_cache_and_restart_roundtrip() {
    let dir = temp_dir("e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        cache_dir: Some(dir.clone()),
        jobs: 2,
        ..ServerConfig::default()
    };
    let (addr, _state, handle) = start(cfg.clone());

    // Same request twice, concurrently, against a cold cache.
    let submit = |addr: SocketAddr| {
        thread::spawn(move || {
            let (status, body) = http(addr, "POST", "/run", BODY);
            assert_eq!(status, 200, "{body}");
            job_id(&body)
        })
    };
    let (a, b) = (submit(addr), submit(addr));
    let (a, b) = (a.join().unwrap(), b.join().unwrap());
    assert_ne!(a, b, "each request gets its own job id");

    // Both jobs finish with byte-identical results, equal to the
    // direct library run of the same point.
    let expected = format!("\"results\":[{}]}}", expected_result_json());
    let doc_a = poll_done(addr, a);
    let doc_b = poll_done(addr, b);
    assert!(doc_a.ends_with(&expected), "service != library: {doc_a}");
    assert_eq!(
        doc_a.replace(&format!("\"id\":{a},"), ""),
        doc_b.replace(&format!("\"id\":{b},"), ""),
        "duplicate jobs must carry identical result bytes"
    );

    // Exactly one simulation ran; the other request was deduped (or, if
    // the first finished before the second arrived, cache-served).
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let j = Json::parse(&body).expect("metrics JSON");
    let server = j.get("server").expect("server block");
    assert_eq!(server.u64_field("accepted"), Some(2), "{body}");
    assert_eq!(server.u64_field("rejected"), Some(0));
    assert_eq!(server.u64_field("in_flight"), Some(0));
    let overlapped = server.u64_field("deduped").unwrap() + server.u64_field("cache_hits").unwrap();
    assert_eq!(overlapped, 1, "second request must not simulate: {body}");
    let sweep = j.get("sweep").expect("sweep block");
    let names: Vec<&str> = sweep
        .get("metrics")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let values = j
        .get("sweep")
        .and_then(|s| s.get("snapshots"))
        .and_then(Json::as_arr)
        .and_then(|a| a.last())
        .and_then(|s| s.get("values"))
        .and_then(Json::as_arr)
        .unwrap();
    let simulated = names
        .iter()
        .position(|&n| n == "sweep/simulated")
        .and_then(|i| values[i].as_u64())
        .expect("sweep/simulated in live report");
    assert_eq!(simulated, 1, "exactly one pool execution");

    // Healthz is well-formed.
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let h = Json::parse(&body).expect("healthz JSON");
    assert_eq!(h.get("ok").and_then(|v| v.as_bool()), Some(true));

    shutdown_and_join(addr, handle);

    // Restart on the same cache dir: the resubmit is served from disk
    // without touching the pool, byte-identical again.
    let (addr, state, handle) = start(cfg);
    let (status, body) = http(addr, "POST", "/run", BODY);
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"status\":\"done\""),
        "cache fast path completes at submit: {body}"
    );
    assert!(body.ends_with(&expected), "cached != live: {body}");
    assert_eq!(server_counter(addr, "cache_hits"), 1);
    assert_eq!(
        state
            .sweeper()
            .metrics()
            .live_report()
            .final_value("sweep/simulated"),
        None,
        "pool never started on the warm path"
    );
    shutdown_and_join(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_run_matches_serial_and_coalesces_with_it() {
    let dir = temp_dir("shards");
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, _state, handle) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        jobs: 2,
        ..ServerConfig::default()
    });

    // A serial request and its shards:4 twin, submitted concurrently
    // against a cold cache. Shard count is observationally invisible,
    // so the pair must coalesce onto one point cell: exactly one
    // simulation runs and both jobs carry byte-identical result bytes.
    const SHARDED_BODY: &str = "{\"app\":\"ll\",\"design\":\"C\",\"scale\":\"tiny\",\"shards\":4}";
    let submit = |addr: SocketAddr, body: &'static str| {
        thread::spawn(move || {
            let (status, resp) = http(addr, "POST", "/run", body);
            assert_eq!(status, 200, "{resp}");
            job_id(&resp)
        })
    };
    let (a, b) = (submit(addr, BODY), submit(addr, SHARDED_BODY));
    let (a, b) = (a.join().unwrap(), b.join().unwrap());

    let expected = format!("\"results\":[{}]}}", expected_result_json());
    let doc_serial = poll_done(addr, a);
    let doc_sharded = poll_done(addr, b);
    assert!(
        doc_sharded.ends_with(&expected),
        "sharded service run != serial library run: {doc_sharded}"
    );
    assert_eq!(
        doc_serial.replace(&format!("\"id\":{a},"), ""),
        doc_sharded.replace(&format!("\"id\":{b},"), ""),
        "shards field must not change result bytes"
    );

    let overlapped = server_counter(addr, "deduped") + server_counter(addr, "cache_hits");
    assert_eq!(
        overlapped, 1,
        "sharded duplicate must dedup against (or cache-hit) the serial run"
    );

    shutdown_and_join(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn line_protocol_answers_one_command_per_connection() {
    let (addr, _state, handle) = start(ServerConfig {
        cache_dir: None,
        jobs: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(b"healthz\n").unwrap();
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).unwrap();
    let j = Json::parse(line.trim()).expect("line response is JSON");
    assert_eq!(j.get("ok").and_then(|v| v.as_bool()), Some(true));
    shutdown_and_join(addr, handle);
}

#[test]
fn shutdown_drains_in_flight_work_into_the_cache() {
    let dir = temp_dir("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, state, handle) = start(ServerConfig {
        cache_dir: Some(dir.clone()),
        jobs: 1,
        ..ServerConfig::default()
    });
    let (status, body) = http(addr, "POST", "/run", BODY);
    assert_eq!(status, 200, "{body}");
    shutdown_and_join(addr, handle);
    assert_eq!(state.in_flight(), 0, "run() returned before draining");
    let entries = std::fs::read_dir(&dir)
        .expect("cache dir exists after drain")
        .count();
    assert_eq!(entries, 1, "drained result landed in the cache");
    let _ = std::fs::remove_dir_all(&dir);
}
