//! Property-based tests for the DRAM substrates.

use ndpb_dram::{AddressMap, BankModel, Bus, DataAddr, DramTiming, Geometry, UnitId};
use ndpb_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Bank service windows never overlap and never run backwards, no
    /// matter when requests are issued.
    #[test]
    fn bank_serializes_all_requests(
        reqs in prop::collection::vec((0u64..10_000, 0u64..64, 1u32..512, any::<bool>()), 1..100)
    ) {
        let timing = DramTiming::ddr4_2400();
        let mut bank = BankModel::new();
        let mut prev_end = SimTime::ZERO;
        for (now, row, bytes, write) in reqs {
            let a = bank.access(SimTime::from_ticks(now), row, bytes, write, &timing);
            prop_assert!(a.start >= prev_end, "service windows overlap");
            prop_assert!(a.end > a.start);
            prev_end = a.end;
        }
    }

    /// Row hits are never slower than conflicts for the same size.
    #[test]
    fn hit_never_slower_than_conflict(bytes in 1u32..4096) {
        let t = DramTiming::ddr4_2400();
        prop_assert!(t.row_hit(bytes) <= t.row_closed(bytes));
        prop_assert!(t.row_closed(bytes) <= t.row_conflict(bytes));
    }

    /// Bus grants are disjoint and ordered, and total busy time equals
    /// the sum of transfer times.
    #[test]
    fn bus_grants_are_disjoint(
        reqs in prop::collection::vec((0u64..10_000, 1u64..4096), 1..100)
    ) {
        let mut bus = Bus::new(64);
        let mut prev_end = SimTime::ZERO;
        let mut expected_busy = SimTime::ZERO;
        for (now, bytes) in reqs {
            let g = bus.reserve(SimTime::from_ticks(now), bytes);
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end - g.start, bus.transfer_time(bytes));
            expected_busy += g.end - g.start;
            prev_end = g.end;
        }
        prop_assert_eq!(bus.busy.total(), expected_busy);
    }

    /// Address mapping round-trips for every unit and in-range offset.
    #[test]
    fn address_round_trip(unit in 0u32..512, offset in 0u64..(64 << 20)) {
        let g = Geometry::table1();
        let m = AddressMap::new(&g, 256, 1024);
        let addr = m.addr_in_unit(UnitId(unit), offset);
        prop_assert_eq!(m.home_unit(addr), UnitId(unit));
        let block = m.block_of(addr);
        prop_assert_eq!(m.block_home(block), UnitId(unit));
        prop_assert!(m.block_base(block) <= addr);
        prop_assert!(addr.0 - m.block_base(block).0 < 256);
    }

    /// Unit positions are unique and invertible across the hierarchy.
    #[test]
    fn unit_positions_unique(a in 0u32..512, b in 0u32..512) {
        let g = Geometry::table1();
        let pa = g.position(UnitId(a));
        let pb = g.position(UnitId(b));
        if a != b {
            prop_assert!(pa != pb, "two units share a position");
        } else {
            prop_assert_eq!(pa, pb);
        }
    }

    /// Every address belongs to exactly one block whose home matches
    /// the address's home.
    #[test]
    fn block_home_consistent(raw in 0u64..(512 * (64u64 << 20))) {
        let g = Geometry::table1();
        let m = AddressMap::new(&g, 256, 1024);
        let addr = DataAddr(raw);
        prop_assert_eq!(m.home_unit(addr), m.block_home(m.block_of(addr)));
    }
}
