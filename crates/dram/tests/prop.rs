//! Randomized property tests for the DRAM substrates, driven by the
//! in-repo deterministic `SimRng`.

use ndpb_dram::{AddressMap, BankModel, Bus, DataAddr, DramTiming, Geometry, UnitId};
use ndpb_sim::{SimRng, SimTime};

const CASES: usize = 64;

/// Bank service windows never overlap and never run backwards, no
/// matter when requests are issued.
#[test]
fn bank_serializes_all_requests() {
    let mut rng = SimRng::new(0xD8A0_0001);
    let timing = DramTiming::ddr4_2400();
    for _ in 0..CASES {
        let n = 1 + rng.next_index(99);
        let mut bank = BankModel::new();
        let mut prev_end = SimTime::ZERO;
        for _ in 0..n {
            let now = rng.next_below(10_000);
            let row = rng.next_below(64);
            let bytes = 1 + rng.next_below(511) as u32;
            let write = rng.chance(0.5);
            let a = bank.access(SimTime::from_ticks(now), row, bytes, write, &timing);
            assert!(a.start >= prev_end, "service windows overlap");
            assert!(a.end > a.start);
            prev_end = a.end;
        }
    }
}

/// Row hits are never slower than conflicts for the same size.
#[test]
fn hit_never_slower_than_conflict() {
    let mut rng = SimRng::new(0xD8A0_0002);
    let t = DramTiming::ddr4_2400();
    for _ in 0..512 {
        let bytes = 1 + rng.next_below(4095) as u32;
        assert!(t.row_hit(bytes) <= t.row_closed(bytes));
        assert!(t.row_closed(bytes) <= t.row_conflict(bytes));
    }
}

/// Bus grants are disjoint and ordered, and total busy time equals
/// the sum of transfer times.
#[test]
fn bus_grants_are_disjoint() {
    let mut rng = SimRng::new(0xD8A0_0003);
    for _ in 0..CASES {
        let n = 1 + rng.next_index(99);
        let mut bus = Bus::new(64);
        let mut prev_end = SimTime::ZERO;
        let mut expected_busy = SimTime::ZERO;
        for _ in 0..n {
            let now = rng.next_below(10_000);
            let bytes = 1 + rng.next_below(4095);
            let g = bus.reserve(SimTime::from_ticks(now), bytes);
            assert!(g.start >= prev_end);
            assert_eq!(g.end - g.start, bus.transfer_time(bytes));
            expected_busy += g.end - g.start;
            prev_end = g.end;
        }
        assert_eq!(bus.busy.total(), expected_busy);
    }
}

/// Address mapping round-trips for every unit and in-range offset.
#[test]
fn address_round_trip() {
    let mut rng = SimRng::new(0xD8A0_0004);
    let g = Geometry::table1();
    let m = AddressMap::new(&g, 256, 1024);
    for _ in 0..512 {
        let unit = rng.next_below(512) as u32;
        let offset = rng.next_below(64 << 20);
        let addr = m.addr_in_unit(UnitId(unit), offset);
        assert_eq!(m.home_unit(addr), UnitId(unit));
        let block = m.block_of(addr);
        assert_eq!(m.block_home(block), UnitId(unit));
        assert!(m.block_base(block) <= addr);
        assert!(addr.0 - m.block_base(block).0 < 256);
    }
}

/// Unit positions are unique and invertible across the hierarchy.
#[test]
fn unit_positions_unique() {
    let g = Geometry::table1();
    // Exhaustive pairwise check (the proptest version sampled pairs).
    let positions: Vec<_> = (0..512u32).map(|u| g.position(UnitId(u))).collect();
    for a in 0..positions.len() {
        assert_eq!(positions[a], g.position(UnitId(a as u32)));
        for b in (a + 1)..positions.len() {
            assert!(
                positions[a] != positions[b],
                "units {a} and {b} share a position"
            );
        }
    }
}

/// Every address belongs to exactly one block whose home matches
/// the address's home.
#[test]
fn block_home_consistent() {
    let mut rng = SimRng::new(0xD8A0_0006);
    let g = Geometry::table1();
    let m = AddressMap::new(&g, 256, 1024);
    for _ in 0..512 {
        let addr = DataAddr(rng.next_below(512 * (64u64 << 20)));
        assert_eq!(m.home_unit(addr), m.block_home(m.block_of(addr)));
    }
}
