//! Per-bank DRAM state machine and access arbitration.
//!
//! In NDPBridge every DRAM access — from the local NDP core, from the
//! level-1 bridge's forged GATHER/SCATTER commands, and (in the baselines)
//! from the host — is coordinated *at the bank* by the access arbiter
//! (Section V-A, following [15]). We model that by serializing all access
//! requests through this per-bank structure: a request issued at `now`
//! starts at `max(now, busy_until)` and the bank tracks its open row to
//! price hits, closed-bank activations and row conflicts.

use ndpb_sim::stats::{BusyTime, Counter};
use ndpb_sim::SimTime;
use ndpb_trace::{ComponentId, TraceEvent, TraceRecord, TraceSink};

use crate::timing::DramTiming;

/// The timing outcome of one bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAccess {
    /// When the bank actually started serving the request.
    pub start: SimTime,
    /// When the data burst completed (request latency = `end - issue`).
    pub end: SimTime,
    /// Whether a row activation was needed (energy-relevant).
    pub activated: bool,
}

/// One DRAM bank: open-row state, serialization point, and access stats.
///
/// # Example
///
/// ```
/// use ndpb_dram::{BankModel, DramTiming};
/// use ndpb_sim::SimTime;
/// let t = DramTiming::ddr4_2400();
/// let mut bank = BankModel::new();
/// let a = bank.access(SimTime::ZERO, 7, 64, false, &t);
/// let b = bank.access(SimTime::ZERO, 7, 64, false, &t);
/// assert!(b.start >= a.end); // serialized
/// assert!(!b.activated);     // row hit
/// ```
#[derive(Debug, Clone, Default)]
pub struct BankModel {
    open_row: Option<u64>,
    busy_until: SimTime,
    last_was_write: bool,
    /// Row activations performed.
    pub activations: Counter,
    /// Bytes read from the array.
    pub bytes_read: Counter,
    /// Bytes written to the array.
    pub bytes_written: Counter,
    /// Total time the bank spent servicing requests.
    pub busy: BusyTime,
}

impl BankModel {
    /// A bank with all rows closed.
    pub fn new() -> Self {
        Self::default()
    }

    /// When the bank becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Issues an access of `bytes` bytes to `row` at time `now`; returns
    /// its service window. The access is appended after any in-flight
    /// access (this *is* the access arbiter: core, bridge and host
    /// requests all call here and are served in arrival order).
    pub fn access(
        &mut self,
        now: SimTime,
        row: u64,
        bytes: u32,
        write: bool,
        timing: &DramTiming,
    ) -> BankAccess {
        let mut start = now.max(self.busy_until);
        // Write-to-read turnaround penalty on direction switch.
        if self.last_was_write && !write {
            start += timing.t_wtr;
        }
        let (latency, activated) = match self.open_row {
            Some(r) if r == row => (timing.row_hit(bytes), false),
            Some(_) => (timing.row_conflict(bytes), true),
            None => (timing.row_closed(bytes), true),
        };
        let end = start + latency;
        self.open_row = Some(row);
        self.busy_until = end;
        self.last_was_write = write;
        if activated {
            self.activations.inc();
        }
        if write {
            self.bytes_written.add(bytes as u64);
        } else {
            self.bytes_read.add(bytes as u64);
        }
        self.busy.record(start, end);
        BankAccess {
            start,
            end,
            activated,
        }
    }

    /// [`access`](Self::access) with a trace hook: when `trace` is
    /// `Some` and the access opened a row, emits a
    /// [`TraceEvent::BankActivate`] span covering the service window.
    /// Only activations are recorded (row hits are the common case and
    /// would dominate the ring buffer); with tracing off the extra cost
    /// is the single `Option` branch.
    #[allow(clippy::too_many_arguments)]
    pub fn access_traced(
        &mut self,
        now: SimTime,
        row: u64,
        bytes: u32,
        write: bool,
        timing: &DramTiming,
        comp: ComponentId,
        trace: Option<&mut dyn TraceSink>,
    ) -> BankAccess {
        let a = self.access(now, row, bytes, write, timing);
        if let Some(t) = trace {
            if a.activated {
                t.record(TraceRecord::span(
                    a.start,
                    a.end - a.start,
                    comp,
                    TraceEvent::BankActivate { row, write },
                ));
            }
        }
        a
    }

    /// Issues a streaming access spanning `bytes` starting at byte
    /// `offset` in the bank, splitting it into per-row accesses. Returns
    /// the completion time of the last piece.
    pub fn access_span(
        &mut self,
        now: SimTime,
        offset: u64,
        bytes: u32,
        write: bool,
        timing: &DramTiming,
    ) -> SimTime {
        let row_bytes = timing.row_bytes as u64;
        let mut remaining = bytes as u64;
        let mut cursor = offset;
        let mut end = now;
        while remaining > 0 {
            let row = cursor / row_bytes;
            let in_row = (row_bytes - cursor % row_bytes).min(remaining);
            end = self.access(end, row, in_row as u32, write, timing).end;
            cursor += in_row;
            remaining -= in_row;
        }
        end
    }

    /// Precharges the bank (closes the open row); used when RowClone
    /// transfers reset row state.
    pub fn precharge(&mut self) {
        self.open_row = None;
    }

    /// [`precharge`](Self::precharge) with a trace hook.
    pub fn precharge_traced(
        &mut self,
        now: SimTime,
        comp: ComponentId,
        trace: Option<&mut dyn TraceSink>,
    ) {
        self.precharge();
        if let Some(t) = trace {
            t.record(TraceRecord::instant(now, comp, TraceEvent::BankPrecharge));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr4_2400()
    }

    #[test]
    fn first_access_activates() {
        let mut b = BankModel::new();
        let a = b.access(SimTime::ZERO, 3, 64, false, &t());
        assert!(a.activated);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, t().row_closed(64));
        assert_eq!(b.activations.get(), 1);
    }

    #[test]
    fn row_hit_is_cheaper() {
        let mut b = BankModel::new();
        let first = b.access(SimTime::ZERO, 3, 64, false, &t());
        let hit = b.access(first.end, 3, 64, false, &t());
        assert!(!hit.activated);
        assert_eq!(hit.end - hit.start, t().row_hit(64));
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut b = BankModel::new();
        let first = b.access(SimTime::ZERO, 3, 64, false, &t());
        let conflict = b.access(first.end, 9, 64, false, &t());
        assert!(conflict.activated);
        assert_eq!(conflict.end - conflict.start, t().row_conflict(64));
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut b = BankModel::new();
        let a = b.access(SimTime::ZERO, 1, 64, false, &t());
        let c = b.access(SimTime::ZERO, 1, 64, false, &t());
        assert_eq!(c.start, a.end);
        assert!(b.busy_until() >= c.end - SimTime::from_ticks(1));
    }

    #[test]
    fn write_read_turnaround_charged() {
        let mut b = BankModel::new();
        let w = b.access(SimTime::ZERO, 1, 64, true, &t());
        let r = b.access(w.end, 1, 64, false, &t());
        assert_eq!(r.start, w.end + t().t_wtr);
        // Read then read: no penalty.
        let r2 = b.access(r.end, 1, 64, false, &t());
        assert_eq!(r2.start, r.end);
    }

    #[test]
    fn span_crosses_rows() {
        let mut b = BankModel::new();
        // 1 KB rows: bytes 512..2560 touch rows 0, 1 and 2.
        let end = b.access_span(SimTime::ZERO, 512, 2048, false, &t());
        assert_eq!(b.activations.get(), 3);
        assert!(end > SimTime::ZERO);
        assert_eq!(b.bytes_read.get(), 2048);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = BankModel::new();
        b.access(SimTime::ZERO, 0, 64, false, &t());
        b.access(SimTime::ZERO, 0, 32, true, &t());
        assert_eq!(b.bytes_read.get(), 64);
        assert_eq!(b.bytes_written.get(), 32);
        assert!(b.busy.total() > SimTime::ZERO);
    }

    #[test]
    fn traced_access_records_activations_only() {
        use ndpb_trace::RingRecorder;
        let mut b = BankModel::new();
        let mut rec = RingRecorder::new(16);
        let comp = ComponentId::Unit(4);
        // Cold row: activation recorded.
        let a = b.access_traced(SimTime::ZERO, 3, 64, false, &t(), comp, Some(&mut rec));
        // Row hit: nothing recorded.
        b.access_traced(a.end, 3, 64, false, &t(), comp, Some(&mut rec));
        // Tracing off: one branch, no record even on conflict.
        b.access_traced(a.end, 9, 64, false, &t(), comp, None);
        let out = rec.take_records();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].comp, comp);
        assert!(matches!(
            out[0].event,
            TraceEvent::BankActivate {
                row: 3,
                write: false
            }
        ));
        assert_eq!(out[0].at, a.start);
        assert_eq!(out[0].dur, a.end - a.start);
    }

    #[test]
    fn precharge_closes_row() {
        let mut b = BankModel::new();
        b.access(SimTime::ZERO, 5, 64, false, &t());
        b.precharge();
        assert_eq!(b.open_row(), None);
    }
}
