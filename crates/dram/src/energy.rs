//! Energy model.
//!
//! Parameters follow the paper's methodology (Section VII): each 64-bit
//! DRAM bank read/write costs 150 pJ (measured on UPMEM [20]), NDP cores
//! consume 10 mW when active (ARM Cortex-M3 class), off-chip channel
//! transfer energy follows [25], and SRAM access energy is CACTI-7-class.
//! Figure 13 breaks system energy into four components: (1) NDP cores +
//! SRAM, (2) local DRAM bank accesses, (3) DRAM accesses for cross-unit
//! communication, and (4) static energy; [`EnergyBreakdown`] mirrors that.

use ndpb_sim::SimTime;

/// Energy model parameters. All energies in picojoules, powers in watts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// DRAM bank array access energy per byte (150 pJ / 64 bits).
    pub dram_pj_per_byte: f64,
    /// Off-chip channel wire energy per byte (from [25]-class numbers).
    pub channel_pj_per_byte: f64,
    /// Intra-rank (chip-to-buffer-chip) wire energy per byte; shorter
    /// traces than the full channel.
    pub rank_pj_per_byte: f64,
    /// SRAM buffer/metadata access energy per byte (CACTI-7-class for the
    /// small kB-scale structures of Table I).
    pub sram_pj_per_byte: f64,
    /// Active power of one NDP core (10 mW per the paper).
    pub core_active_w: f64,
    /// Static (leakage + refresh share) power per NDP unit.
    pub unit_static_w: f64,
    /// Static power of one level-1 bridge (buffer-chip logic + SRAM).
    pub bridge_static_w: f64,
}

impl EnergyParams {
    /// The paper's parameters.
    pub fn paper() -> Self {
        EnergyParams {
            dram_pj_per_byte: 150.0 / 8.0,
            channel_pj_per_byte: 13.0,
            rank_pj_per_byte: 4.0,
            sram_pj_per_byte: 0.3,
            core_active_w: 10e-3,
            unit_static_w: 2e-3,
            bridge_static_w: 20e-3,
        }
    }

    /// DRAM array energy for `bytes` bytes.
    pub fn dram_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dram_pj_per_byte
    }

    /// Channel wire energy for `bytes` bytes.
    pub fn channel_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.channel_pj_per_byte
    }

    /// Intra-rank wire energy for `bytes` bytes.
    pub fn rank_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.rank_pj_per_byte
    }

    /// SRAM access energy for `bytes` bytes.
    pub fn sram_pj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.sram_pj_per_byte
    }

    /// Core active energy over a busy duration.
    pub fn core_pj(&self, busy: SimTime) -> f64 {
        self.core_active_w * busy.as_secs() * 1e12
    }

    /// Static energy of `units` NDP units and `bridges` level-1 bridges
    /// over a wall-clock duration.
    pub fn static_pj(&self, units: u32, bridges: u32, elapsed: SimTime) -> f64 {
        (units as f64 * self.unit_static_w + bridges as f64 * self.bridge_static_w)
            * elapsed.as_secs()
            * 1e12
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Figure 13's four-component energy breakdown, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// NDP cores and SRAM caches/buffers/metadata.
    pub core_sram_pj: f64,
    /// Local DRAM bank accesses (task data).
    pub dram_local_pj: f64,
    /// DRAM bank accesses plus wires for cross-unit communication
    /// (mailbox reads/writes, gathers/scatters, forwarding).
    pub dram_comm_pj: f64,
    /// Static energy.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.core_sram_pj + self.dram_local_pj + self.dram_comm_pj + self.static_pj
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core_sram_pj += other.core_sram_pj;
        self.dram_local_pj += other.dram_local_pj;
        self.dram_comm_pj += other.dram_comm_pj;
        self.static_pj += other.static_pj;
    }

    /// Fractions of the total per component, in Figure 13's order
    /// `(core+SRAM, local DRAM, comm DRAM, static)`. All zeros if empty.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_pj();
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.core_sram_pj / t,
            self.dram_local_pj / t,
            self.dram_comm_pj / t,
            self.static_pj / t,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dram_energy_per_64bit() {
        let p = EnergyParams::paper();
        assert!((p.dram_pj(8) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn core_energy_scales_with_time() {
        let p = EnergyParams::paper();
        // 10 mW for 1 second = 10 mJ = 1e10 pJ.
        let one_sec = SimTime::from_core_cycles(400_000_000);
        assert!((p.core_pj(one_sec) - 1e10).abs() / 1e10 < 1e-9);
    }

    #[test]
    fn static_energy_counts_components() {
        let p = EnergyParams::paper();
        let t = SimTime::from_core_cycles(400_000); // 1 ms
        let e1 = p.static_pj(512, 8, t);
        let e2 = p.static_pj(1024, 16, t);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_and_fractions() {
        let b = EnergyBreakdown {
            core_sram_pj: 1.0,
            dram_local_pj: 2.0,
            dram_comm_pj: 3.0,
            static_pj: 4.0,
        };
        assert!((b.total_pj() - 10.0).abs() < 1e-12);
        let f = b.fractions();
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn breakdown_add_accumulates() {
        let mut a = EnergyBreakdown::default();
        let b = EnergyBreakdown {
            core_sram_pj: 1.0,
            dram_local_pj: 1.0,
            dram_comm_pj: 1.0,
            static_pj: 1.0,
        };
        a.add(&b);
        a.add(&b);
        assert!((a.total_pj() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(EnergyBreakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn wire_energies_ordered() {
        let p = EnergyParams::paper();
        assert!(p.channel_pj(64) > p.rank_pj(64));
        assert!(p.rank_pj(64) > p.sram_pj(64));
    }
}
