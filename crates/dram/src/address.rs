//! The NDP data address space.
//!
//! NDP systems allocate large contiguous (physical) address ranges and
//! interleave them coarsely so that each unit's working set sits in its
//! local bank (Section II-B; the UPMEM SDK's transposition procedure).
//! We model that directly: unit `u` owns the byte range
//! `[u * bank_bytes, (u+1) * bank_bytes)`.
//!
//! Load balancing operates at *block* granularity (`G_xfer` bytes,
//! 256 by default), so addresses also map to [`BlockAddr`]s.

use std::fmt;

use crate::geometry::{Geometry, UnitId};

/// A byte address in the global NDP data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataAddr(pub u64);

impl fmt::Display for DataAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A block index: `addr / G_xfer`. Blocks are the granularity of data
/// migration, the `isLent` bitmap, the `dataBorrowed` tables and the
/// hot-data sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Maps data addresses to home units, blocks and bank rows.
///
/// # Example
///
/// ```
/// use ndpb_dram::{AddressMap, Geometry, UnitId};
/// let g = Geometry::table1();
/// let m = AddressMap::new(&g, 256, 1024);
/// let a = m.addr_in_unit(UnitId(3), 100);
/// assert_eq!(m.home_unit(a), UnitId(3));
/// assert_eq!(m.block_home(m.block_of(a)), UnitId(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    bank_bytes: u64,
    block_bytes: u32,
    row_bytes: u32,
    total_units: u32,
}

impl AddressMap {
    /// Creates a map for `geometry` with migration blocks of
    /// `block_bytes` (`G_xfer`) and DRAM rows of `row_bytes` per bank.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` or `row_bytes` is zero, or if `block_bytes`
    /// does not divide the bank size.
    pub fn new(geometry: &Geometry, block_bytes: u32, row_bytes: u32) -> Self {
        assert!(block_bytes > 0 && row_bytes > 0);
        assert_eq!(
            geometry.bank_bytes % block_bytes as u64,
            0,
            "block size must divide bank size"
        );
        AddressMap {
            bank_bytes: geometry.bank_bytes,
            block_bytes,
            row_bytes,
            total_units: geometry.total_units(),
        }
    }

    /// The migration block size `G_xfer` in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Bytes of DRAM owned by each unit.
    pub fn bank_bytes(&self) -> u64 {
        self.bank_bytes
    }

    /// The home unit of an address (where the data originally resides).
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the last unit's range.
    pub fn home_unit(&self, addr: DataAddr) -> UnitId {
        let unit = (addr.0 / self.bank_bytes) as u32;
        assert!(unit < self.total_units, "address {addr} beyond data space");
        UnitId(unit)
    }

    /// The block containing an address.
    pub fn block_of(&self, addr: DataAddr) -> BlockAddr {
        BlockAddr(addr.0 / self.block_bytes as u64)
    }

    /// First byte address of a block.
    pub fn block_base(&self, block: BlockAddr) -> DataAddr {
        DataAddr(block.0 * self.block_bytes as u64)
    }

    /// The home unit of a block.
    pub fn block_home(&self, block: BlockAddr) -> UnitId {
        self.home_unit(self.block_base(block))
    }

    /// Builds the address of byte `offset` within `unit`'s bank.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the bank.
    pub fn addr_in_unit(&self, unit: UnitId, offset: u64) -> DataAddr {
        assert!(offset < self.bank_bytes, "offset beyond bank");
        DataAddr(unit.0 as u64 * self.bank_bytes + offset)
    }

    /// The DRAM row (within its bank) an address falls in; used by the
    /// bank model for open-row hit/miss decisions.
    pub fn row_of(&self, addr: DataAddr) -> u64 {
        (addr.0 % self.bank_bytes) / self.row_bytes as u64
    }

    /// Number of blocks per bank.
    pub fn blocks_per_bank(&self) -> u64 {
        self.bank_bytes / self.block_bytes as u64
    }

    /// The block's index within its home bank (for `isLent` bitmaps).
    pub fn block_index_in_bank(&self, block: BlockAddr) -> u64 {
        block.0 % self.blocks_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&Geometry::table1(), 256, 1024)
    }

    #[test]
    fn home_unit_partitioning() {
        let m = map();
        assert_eq!(m.home_unit(DataAddr(0)), UnitId(0));
        assert_eq!(m.home_unit(DataAddr((64 << 20) - 1)), UnitId(0));
        assert_eq!(m.home_unit(DataAddr(64 << 20)), UnitId(1));
    }

    #[test]
    fn block_round_trips() {
        let m = map();
        let a = DataAddr(1000);
        let b = m.block_of(a);
        assert_eq!(b, BlockAddr(3));
        assert_eq!(m.block_base(b), DataAddr(768));
        assert_eq!(m.block_home(b), UnitId(0));
    }

    #[test]
    fn addr_in_unit_and_back() {
        let m = map();
        for u in [0u32, 5, 511] {
            let a = m.addr_in_unit(UnitId(u), 12345);
            assert_eq!(m.home_unit(a), UnitId(u));
        }
    }

    #[test]
    fn rows_are_local_to_bank() {
        let m = map();
        // Offset 0 and offset row_bytes are different rows.
        let a0 = m.addr_in_unit(UnitId(2), 0);
        let a1 = m.addr_in_unit(UnitId(2), 1024);
        assert_eq!(m.row_of(a0), 0);
        assert_eq!(m.row_of(a1), 1);
        // Same offset in another bank has the same row index.
        let b0 = m.addr_in_unit(UnitId(3), 0);
        assert_eq!(m.row_of(b0), 0);
    }

    #[test]
    fn block_index_in_bank_wraps() {
        let m = map();
        let blocks_per_bank = m.blocks_per_bank();
        let a = m.addr_in_unit(UnitId(1), 256);
        let b = m.block_of(a);
        assert_eq!(b.0, blocks_per_bank + 1);
        assert_eq!(m.block_index_in_bank(b), 1);
    }

    #[test]
    #[should_panic(expected = "beyond data space")]
    fn out_of_space_panics() {
        let m = map();
        m.home_unit(DataAddr(512 * (64 << 20)));
    }

    #[test]
    #[should_panic(expected = "offset beyond bank")]
    fn bad_offset_panics() {
        map().addr_in_unit(UnitId(0), 64 << 20);
    }
}
