//! The NDP data address space.
//!
//! NDP systems allocate large contiguous (physical) address ranges and
//! interleave them coarsely so that each unit's working set sits in its
//! local bank (Section II-B; the UPMEM SDK's transposition procedure).
//! We model that directly: unit `u` owns the byte range
//! `[u * bank_bytes, (u+1) * bank_bytes)`.
//!
//! Load balancing operates at *block* granularity (`G_xfer` bytes,
//! 256 by default), so addresses also map to [`BlockAddr`]s.

use std::fmt;

use crate::geometry::{Geometry, UnitId};

/// A byte address in the global NDP data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataAddr(pub u64);

impl fmt::Display for DataAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A block index: `addr / G_xfer`. Blocks are the granularity of data
/// migration, the `isLent` bitmap, the `dataBorrowed` tables and the
/// hot-data sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Maps data addresses to home units, blocks and bank rows.
///
/// # Example
///
/// ```
/// use ndpb_dram::{AddressMap, Geometry, UnitId};
/// let g = Geometry::table1();
/// let m = AddressMap::new(&g, 256, 1024);
/// let a = m.addr_in_unit(UnitId(3), 100);
/// assert_eq!(m.home_unit(a), UnitId(3));
/// assert_eq!(m.block_home(m.block_of(a)), UnitId(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    bank_bytes: u64,
    block_bytes: u32,
    row_bytes: u32,
    total_units: u32,
    /// `log2` of each divisor when it is a power of two (the case for
    /// every evaluated configuration). Address math runs on the
    /// per-event hot path — block lookups on every task route/deliver,
    /// row lookups on every DRAM access — where a 64-bit hardware
    /// divide costs an order of magnitude more than a shift, so the
    /// divisions are strength-reduced at construction. Shift and divide
    /// are bit-identical for power-of-two divisors: results do not
    /// depend on which path runs.
    bank_shift: Option<u32>,
    block_shift: Option<u32>,
    row_shift: Option<u32>,
}

/// `x / d`, as a shift when `shift` caches `log2(d)`.
#[inline(always)]
fn div_p2(x: u64, d: u64, shift: Option<u32>) -> u64 {
    match shift {
        Some(s) => x >> s,
        None => x / d,
    }
}

/// `x % d`, as a mask when `shift` caches `log2(d)`.
#[inline(always)]
fn rem_p2(x: u64, d: u64, shift: Option<u32>) -> u64 {
    match shift {
        Some(s) => x & ((1u64 << s) - 1),
        None => x % d,
    }
}

/// `log2(d)` if `d` is a power of two.
#[inline]
fn p2_shift(d: u64) -> Option<u32> {
    d.is_power_of_two().then(|| d.trailing_zeros())
}

impl AddressMap {
    /// Creates a map for `geometry` with migration blocks of
    /// `block_bytes` (`G_xfer`) and DRAM rows of `row_bytes` per bank.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` or `row_bytes` is zero, or if `block_bytes`
    /// does not divide the bank size.
    pub fn new(geometry: &Geometry, block_bytes: u32, row_bytes: u32) -> Self {
        assert!(block_bytes > 0 && row_bytes > 0);
        assert_eq!(
            geometry.bank_bytes % block_bytes as u64,
            0,
            "block size must divide bank size"
        );
        AddressMap {
            bank_bytes: geometry.bank_bytes,
            block_bytes,
            row_bytes,
            total_units: geometry.total_units(),
            bank_shift: p2_shift(geometry.bank_bytes),
            block_shift: p2_shift(block_bytes as u64),
            row_shift: p2_shift(row_bytes as u64),
        }
    }

    /// The migration block size `G_xfer` in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Bytes of DRAM owned by each unit.
    pub fn bank_bytes(&self) -> u64 {
        self.bank_bytes
    }

    /// The home unit of an address (where the data originally resides).
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the last unit's range.
    pub fn home_unit(&self, addr: DataAddr) -> UnitId {
        let unit = div_p2(addr.0, self.bank_bytes, self.bank_shift) as u32;
        assert!(unit < self.total_units, "address {addr} beyond data space");
        UnitId(unit)
    }

    /// The block containing an address.
    #[inline]
    pub fn block_of(&self, addr: DataAddr) -> BlockAddr {
        BlockAddr(div_p2(addr.0, self.block_bytes as u64, self.block_shift))
    }

    /// First byte address of a block.
    pub fn block_base(&self, block: BlockAddr) -> DataAddr {
        DataAddr(block.0 * self.block_bytes as u64)
    }

    /// The home unit of a block.
    pub fn block_home(&self, block: BlockAddr) -> UnitId {
        self.home_unit(self.block_base(block))
    }

    /// Builds the address of byte `offset` within `unit`'s bank.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the bank.
    pub fn addr_in_unit(&self, unit: UnitId, offset: u64) -> DataAddr {
        assert!(offset < self.bank_bytes, "offset beyond bank");
        DataAddr(unit.0 as u64 * self.bank_bytes + offset)
    }

    /// The DRAM row (within its bank) an address falls in; used by the
    /// bank model for open-row hit/miss decisions.
    #[inline]
    pub fn row_of(&self, addr: DataAddr) -> u64 {
        div_p2(
            rem_p2(addr.0, self.bank_bytes, self.bank_shift),
            self.row_bytes as u64,
            self.row_shift,
        )
    }

    /// Number of blocks per bank.
    pub fn blocks_per_bank(&self) -> u64 {
        self.bank_bytes / self.block_bytes as u64
    }

    /// The block's index within its home bank (for `isLent` bitmaps).
    #[inline]
    pub fn block_index_in_bank(&self, block: BlockAddr) -> u64 {
        // blocks_per_bank = bank_bytes / block_bytes, a power of two
        // exactly when both are (block size divides bank size).
        let shift = match (self.bank_shift, self.block_shift) {
            (Some(b), Some(k)) => Some(b - k),
            _ => p2_shift(self.blocks_per_bank()),
        };
        rem_p2(block.0, self.blocks_per_bank(), shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&Geometry::table1(), 256, 1024)
    }

    #[test]
    fn home_unit_partitioning() {
        let m = map();
        assert_eq!(m.home_unit(DataAddr(0)), UnitId(0));
        assert_eq!(m.home_unit(DataAddr((64 << 20) - 1)), UnitId(0));
        assert_eq!(m.home_unit(DataAddr(64 << 20)), UnitId(1));
    }

    #[test]
    fn block_round_trips() {
        let m = map();
        let a = DataAddr(1000);
        let b = m.block_of(a);
        assert_eq!(b, BlockAddr(3));
        assert_eq!(m.block_base(b), DataAddr(768));
        assert_eq!(m.block_home(b), UnitId(0));
    }

    #[test]
    fn addr_in_unit_and_back() {
        let m = map();
        for u in [0u32, 5, 511] {
            let a = m.addr_in_unit(UnitId(u), 12345);
            assert_eq!(m.home_unit(a), UnitId(u));
        }
    }

    #[test]
    fn rows_are_local_to_bank() {
        let m = map();
        // Offset 0 and offset row_bytes are different rows.
        let a0 = m.addr_in_unit(UnitId(2), 0);
        let a1 = m.addr_in_unit(UnitId(2), 1024);
        assert_eq!(m.row_of(a0), 0);
        assert_eq!(m.row_of(a1), 1);
        // Same offset in another bank has the same row index.
        let b0 = m.addr_in_unit(UnitId(3), 0);
        assert_eq!(m.row_of(b0), 0);
    }

    #[test]
    fn block_index_in_bank_wraps() {
        let m = map();
        let blocks_per_bank = m.blocks_per_bank();
        let a = m.addr_in_unit(UnitId(1), 256);
        let b = m.block_of(a);
        assert_eq!(b.0, blocks_per_bank + 1);
        assert_eq!(m.block_index_in_bank(b), 1);
    }

    #[test]
    #[should_panic(expected = "beyond data space")]
    fn out_of_space_panics() {
        let m = map();
        m.home_unit(DataAddr(512 * (64 << 20)));
    }

    #[test]
    #[should_panic(expected = "offset beyond bank")]
    fn bad_offset_panics() {
        map().addr_in_unit(UnitId(0), 64 << 20);
    }
}
