//! DDR timing parameters, expressed in simulator ticks.
//!
//! The paper uses DDR4-2400-style DIMMs with 17 ns CAS/RCD/RP (Table I).
//! One tick = one half bus cycle at 2400 MT/s, so a 64-bit channel (or the
//! 8 chips of a rank acting in parallel) moves 8 bytes per tick and a
//! single x8 chip moves 1 byte per tick.

use ndpb_sim::SimTime;

/// DRAM bank timing parameters.
///
/// # Example
///
/// ```
/// use ndpb_dram::DramTiming;
/// let t = DramTiming::ddr4_2400();
/// assert_eq!(t.t_cas.ticks(), 41); // 17 ns, rounded up
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramTiming {
    /// Column access (CAS) latency.
    pub t_cas: SimTime,
    /// RAS-to-CAS delay (row activation).
    pub t_rcd: SimTime,
    /// Row precharge time.
    pub t_rp: SimTime,
    /// Write-to-read turnaround penalty applied when a bank switches
    /// direction (the access arbiter "optimizes issues like ... write-read
    /// turn-around delays" per Section V-A; we charge it on switches).
    pub t_wtr: SimTime,
    /// Bytes per row per bank (column granularity for row-hit decisions).
    pub row_bytes: u32,
    /// Data bits a single bank's chip interface moves per tick. With x8
    /// chips each bank can source 8 bits/tick.
    pub bank_io_bits: u32,
}

impl DramTiming {
    /// DDR4-2400 with the paper's 17-17-17 ns core timings, 1 KB rows per
    /// chip and x8 IO.
    pub fn ddr4_2400() -> Self {
        DramTiming {
            t_cas: SimTime::from_ns_ceil(17),
            t_rcd: SimTime::from_ns_ceil(17),
            t_rp: SimTime::from_ns_ceil(17),
            t_wtr: SimTime::from_ns_ceil(8),
            row_bytes: 1024,
            bank_io_bits: 8,
        }
    }

    /// Data transfer time for `bytes` through one bank's IO pins.
    pub fn burst_time(&self, bytes: u32) -> SimTime {
        // Runs once per bank access: shift instead of hardware divide
        // when the IO width is a power of two (it always is in
        // practice), with identical results either way.
        let bits = bytes as u64 * 8;
        let io = self.bank_io_bits as u64;
        let ticks = if io.is_power_of_two() {
            (bits + io - 1) >> io.trailing_zeros()
        } else {
            bits.div_ceil(io)
        };
        SimTime::from_ticks(ticks.max(1))
    }

    /// Latency of an access that hits the open row: CAS + burst.
    pub fn row_hit(&self, bytes: u32) -> SimTime {
        self.t_cas + self.burst_time(bytes)
    }

    /// Latency of an access to a closed bank: RCD + CAS + burst.
    pub fn row_closed(&self, bytes: u32) -> SimTime {
        self.t_rcd + self.row_hit(bytes)
    }

    /// Latency of an access that conflicts with another open row:
    /// RP + RCD + CAS + burst.
    pub fn row_conflict(&self, bytes: u32) -> SimTime {
        self.t_rp + self.row_closed(bytes)
    }

    /// Approximate row-to-row copy time used by the RowClone baseline:
    /// two back-to-back row cycles (ACT+PRE twice), independent of the
    /// external bus.
    pub fn rowclone_row_copy(&self) -> SimTime {
        let trc = self.t_rcd + self.t_cas + self.t_rp;
        trc + trc
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ddr4_2400() {
        assert_eq!(DramTiming::default(), DramTiming::ddr4_2400());
    }

    #[test]
    fn burst_time_scales_with_bytes() {
        let t = DramTiming::ddr4_2400();
        // 64 bytes over 8 bits/tick = 64 ticks.
        assert_eq!(t.burst_time(64).ticks(), 64);
        assert_eq!(t.burst_time(1).ticks(), 1);
        assert_eq!(t.burst_time(256).ticks(), 256);
    }

    #[test]
    fn latency_ordering() {
        let t = DramTiming::ddr4_2400();
        assert!(t.row_hit(64) < t.row_closed(64));
        assert!(t.row_closed(64) < t.row_conflict(64));
    }

    #[test]
    fn conflict_adds_precharge() {
        let t = DramTiming::ddr4_2400();
        assert_eq!(t.row_conflict(64), t.row_closed(64) + t.t_rp);
    }

    #[test]
    fn rowclone_copy_is_two_row_cycles() {
        let t = DramTiming::ddr4_2400();
        assert_eq!(t.rowclone_row_copy(), {
            let trc = t.t_rcd + t.t_cas + t.t_rp;
            trc + trc
        });
        // ~100ns-scale: far cheaper than moving a row over a chip's pins.
        assert!(t.rowclone_row_copy() < t.burst_time(1024));
    }
}
