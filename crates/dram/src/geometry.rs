//! DRAM system geometry: channels, ranks, chips, banks and NDP unit IDs.
//!
//! The paper's default configuration (Table I) is 2 channels × 4 ranks ×
//! 8 chips × 8 banks = 512 banks, one NDP unit per bank. Figure 15 varies
//! the chip DQ width (x4/x8/x16) while keeping the 64-bit channel, and
//! Figure 12 varies the rank count from 1 to 16.

use std::fmt;

/// Identifies one NDP unit (equivalently, one DRAM bank) globally.
///
/// Units are numbered bank-major within a chip, chip-major within a rank,
/// rank-major within a channel: unit `0` is channel 0 / rank 0 / chip 0 /
/// bank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Identifies one rank globally (and therefore one level-1 bridge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RankId(pub u32);

impl RankId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies one DDR channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The position of a unit inside the DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitPosition {
    /// Channel the unit's rank is attached to.
    pub channel: ChannelId,
    /// Global rank index.
    pub rank: RankId,
    /// Chip within the rank.
    pub chip: u32,
    /// Bank within the chip. Banks at the same position across the chips
    /// of a rank are gathered/scattered by one bridge command in parallel
    /// (Section V-B).
    pub bank: u32,
}

/// `(x / d, x % d)` with the divide strength-reduced to shifts when `d`
/// is a power of two — which every evaluated geometry's per-rank and
/// per-chip unit counts are. Unit→rank/chip/bank decomposition runs on
/// the per-message hot path, where the hardware divide is the dominant
/// cost; the power-of-two test itself is two cheap ALU ops. Shift and
/// divide agree exactly, so callers see identical values either way.
#[inline(always)]
fn divmod_p2(x: u32, d: u32) -> (u32, u32) {
    if d.is_power_of_two() {
        (x >> d.trailing_zeros(), x & (d - 1))
    } else {
        (x / d, x % d)
    }
}

/// Static description of the DRAM hierarchy.
///
/// # Example
///
/// ```
/// use ndpb_dram::Geometry;
/// let g = Geometry::table1();
/// assert_eq!(g.total_units(), 512);
/// assert_eq!(g.units_per_rank(), 64);
/// assert_eq!(g.channel_dq_bits(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    /// Number of DDR channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// DRAM chips per rank.
    pub chips_per_rank: u32,
    /// Banks per chip (= NDP units per chip).
    pub banks_per_chip: u32,
    /// DQ pins per chip (x4/x8/x16).
    pub dq_bits_per_chip: u32,
    /// DQ pins per chip multiplexed away for C/A dispatch in the
    /// split-DIMM-buffer (*chameleon-s*) variant, Section V-A. Zero for
    /// the default unified-buffer design; the paper evaluates 2 (of 8).
    pub dq_ca_bits_per_chip: u32,
    /// DRAM capacity per bank in bytes (64 MB following UPMEM).
    pub bank_bytes: u64,
}

impl Geometry {
    /// The paper's default configuration (Table I): 2 channels × 4 ranks ×
    /// 8 chips × 8 banks of 64 MB, x8 chips, unified buffer.
    pub fn table1() -> Self {
        Geometry {
            channels: 2,
            ranks_per_channel: 4,
            chips_per_rank: 8,
            banks_per_chip: 8,
            dq_bits_per_chip: 8,
            dq_ca_bits_per_chip: 0,
            bank_bytes: 64 << 20,
        }
    }

    /// A geometry with `ranks` total ranks (Figure 12 scalability sweep:
    /// 1..16 ranks = 64..1024 units). Ranks are spread over the paper's
    /// two channels where divisible, else a single channel.
    pub fn with_total_ranks(ranks: u32) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let (channels, ranks_per_channel) = if ranks.is_multiple_of(2) {
            (2, ranks / 2)
        } else {
            (1, ranks)
        };
        Geometry {
            channels,
            ranks_per_channel,
            ..Geometry::table1()
        }
    }

    /// A geometry with a different chip DQ width (Figure 15), keeping the
    /// 64-bit channel: x4 → 16 chips/rank, x8 → 8, x16 → 4.
    ///
    /// # Panics
    ///
    /// Panics if `dq_bits` does not divide 64.
    pub fn with_dq_bits(dq_bits: u32) -> Self {
        assert!(
            dq_bits > 0 && 64 % dq_bits == 0,
            "DQ width must divide the 64-bit channel"
        );
        Geometry {
            chips_per_rank: 64 / dq_bits,
            dq_bits_per_chip: dq_bits,
            ..Geometry::table1()
        }
    }

    /// The split-DIMM-buffer variant (*chameleon-s*): `ca_bits` of each
    /// chip's DQ pins are dedicated to C/A dispatch, shrinking data
    /// bandwidth between units and the level-1 bridges (Section V-A,
    /// evaluated in Section VIII-A with 2 of 8 pins).
    pub fn split_dimm_buffer() -> Self {
        Geometry {
            dq_ca_bits_per_chip: 2,
            ..Geometry::table1()
        }
    }

    /// Total ranks in the system (= number of level-1 bridges).
    pub fn total_ranks(&self) -> u32 {
        self.channels * self.ranks_per_channel
    }

    /// NDP units (banks) per rank.
    pub fn units_per_rank(&self) -> u32 {
        self.chips_per_rank * self.banks_per_chip
    }

    /// Total NDP units in the system.
    pub fn total_units(&self) -> u32 {
        self.total_ranks() * self.units_per_rank()
    }

    /// Channel data width in bits (chips × DQ pins); 64 for all evaluated
    /// configurations.
    pub fn channel_dq_bits(&self) -> u32 {
        self.chips_per_rank * self.dq_bits_per_chip
    }

    /// Effective *data* bits per tick on the intra-rank bus between banks
    /// and the level-1 bridge, after C/A multiplexing is deducted.
    pub fn intra_rank_data_bits(&self) -> u32 {
        self.chips_per_rank * (self.dq_bits_per_chip - self.dq_ca_bits_per_chip)
    }

    /// The hierarchy position of `unit`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn position(&self, unit: UnitId) -> UnitPosition {
        assert!(unit.0 < self.total_units(), "unit {unit} out of range");
        let (rank, within) = divmod_p2(unit.0, self.units_per_rank());
        let (chip, bank) = divmod_p2(within, self.banks_per_chip);
        UnitPosition {
            channel: ChannelId(divmod_p2(rank, self.ranks_per_channel).0),
            rank: RankId(rank),
            chip,
            bank,
        }
    }

    /// The rank containing `unit`.
    #[inline]
    pub fn rank_of(&self, unit: UnitId) -> RankId {
        RankId(divmod_p2(unit.0, self.units_per_rank()).0)
    }

    /// The channel a rank is attached to.
    pub fn channel_of_rank(&self, rank: RankId) -> ChannelId {
        ChannelId(rank.0 / self.ranks_per_channel)
    }

    /// Iterator over the units of `rank`, in bank-position-major order:
    /// all chips' bank 0 first, then bank 1, … — the order a bridge's
    /// round-robin gather visits them (one command per bank position
    /// serves every chip in parallel, Section V-B).
    pub fn units_of_rank(&self, rank: RankId) -> impl Iterator<Item = UnitId> + '_ {
        let base = rank.0 * self.units_per_rank();
        let banks = self.banks_per_chip;
        let chips = self.chips_per_rank;
        (0..banks)
            .flat_map(move |bank| (0..chips).map(move |chip| UnitId(base + chip * banks + bank)))
    }

    /// All units in the system.
    pub fn all_units(&self) -> impl Iterator<Item = UnitId> {
        (0..self.total_units()).map(UnitId)
    }

    /// Whether two units live in the same DRAM chip (RowClone can copy
    /// between them over the chip-internal shared data bus).
    pub fn same_chip(&self, a: UnitId, b: UnitId) -> bool {
        let pa = self.position(a);
        let pb = self.position(b);
        pa.rank == pb.rank && pa.chip == pb.chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let g = Geometry::table1();
        assert_eq!(g.total_units(), 512);
        assert_eq!(g.total_ranks(), 8);
        assert_eq!(g.units_per_rank(), 64);
        assert_eq!(g.channel_dq_bits(), 64);
        assert_eq!(g.intra_rank_data_bits(), 64);
        assert_eq!(g.bank_bytes, 64 << 20);
    }

    #[test]
    fn position_round_trip() {
        let g = Geometry::table1();
        let p0 = g.position(UnitId(0));
        assert_eq!((p0.rank, p0.chip, p0.bank), (RankId(0), 0, 0));
        let p = g.position(UnitId(511));
        assert_eq!(p.rank, RankId(7));
        assert_eq!(p.channel, ChannelId(1));
        assert_eq!((p.chip, p.bank), (7, 7));
    }

    #[test]
    fn units_of_rank_is_bank_position_major() {
        let g = Geometry::table1();
        let units: Vec<UnitId> = g.units_of_rank(RankId(0)).collect();
        assert_eq!(units.len(), 64);
        // First 8 entries are bank 0 of chips 0..8.
        for (chip, u) in units[..8].iter().enumerate() {
            let p = g.position(*u);
            assert_eq!((p.chip, p.bank), (chip as u32, 0));
        }
        // Next 8 are bank 1.
        assert_eq!(g.position(units[8]).bank, 1);
    }

    #[test]
    fn dq_variants_keep_channel_width() {
        for dq in [4, 8, 16] {
            let g = Geometry::with_dq_bits(dq);
            assert_eq!(g.channel_dq_bits(), 64);
        }
        assert_eq!(Geometry::with_dq_bits(4).total_units(), 1024);
        assert_eq!(Geometry::with_dq_bits(16).total_units(), 256);
    }

    #[test]
    #[should_panic(expected = "DQ width must divide")]
    fn bad_dq_width_panics() {
        Geometry::with_dq_bits(5);
    }

    #[test]
    fn scalability_geometries() {
        assert_eq!(Geometry::with_total_ranks(1).total_units(), 64);
        assert_eq!(Geometry::with_total_ranks(8).total_units(), 512);
        assert_eq!(Geometry::with_total_ranks(16).total_units(), 1024);
        // Even rank counts use both channels.
        assert_eq!(Geometry::with_total_ranks(16).channels, 2);
        assert_eq!(Geometry::with_total_ranks(1).channels, 1);
    }

    #[test]
    fn split_dimm_loses_data_pins() {
        let g = Geometry::split_dimm_buffer();
        assert_eq!(g.intra_rank_data_bits(), 48);
        assert_eq!(g.channel_dq_bits(), 64);
    }

    #[test]
    fn same_chip_detection() {
        let g = Geometry::table1();
        // Units 0..8 are chip 0 banks 0..8.
        assert!(g.same_chip(UnitId(0), UnitId(7)));
        assert!(!g.same_chip(UnitId(0), UnitId(8)));
        assert!(!g.same_chip(UnitId(0), UnitId(64)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_unit_panics() {
        Geometry::table1().position(UnitId(512));
    }
}
