//! DRAM substrate models for the NDPBridge reproduction.
//!
//! The paper evaluates near-DRAM-bank NDP systems built from commodity
//! DDR4-2400 DIMMs (UPMEM-style: 2 channels × 4 ranks × 8 chips × 8 banks,
//! one NDP unit per bank). This crate models everything below the NDP
//! logic:
//!
//! * [`geometry`] — the channel/rank/chip/bank hierarchy and unit IDs;
//! * [`address`] — the NDP data address space, block (`G_xfer`) granularity
//!   and home-unit mapping (the paper assumes UPMEM-style coarse-grained
//!   interleaving so each unit's data is local, Section II-B);
//! * [`timing`] — DDR timing parameters in simulator ticks;
//! * [`bank`] — a per-bank state machine (open row, busy-until) that also
//!   plays the role of the paper's *access arbiter*: every access from the
//!   local core, the bridge, or the host serializes through it;
//! * [`bus`] — reservation-based links: the intra-rank DQ bus between banks
//!   and the level-1 bridge, and the DDR channel between ranks and the
//!   host/level-2 bridge;
//! * [`energy`] — the energy model (150 pJ per 64-bit bank access,
//!   10 mW cores, per-bit link energies).

#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod bus;
pub mod energy;
pub mod geometry;
pub mod timing;

pub use address::{AddressMap, BlockAddr, DataAddr};
pub use bank::BankModel;
pub use bus::Bus;
pub use energy::{EnergyBreakdown, EnergyParams};
pub use geometry::{ChannelId, Geometry, RankId, UnitId};
pub use timing::DramTiming;
