//! Reservation-based bus/link models.
//!
//! Two kinds of links matter in NDPBridge (Table I):
//!
//! * the **intra-rank bus** between the banks of a rank and its level-1
//!   bridge — 2400 MT/s × 64 bits aggregated across the rank's chips
//!   (each chip contributes its DQ pins; one bridge command moves data
//!   for the same bank position of every chip in parallel);
//! * the **channel** between level-1 bridges and the level-2 bridge /
//!   host — 2400 MT/s × 64 bits, shared by all ranks of the channel and
//!   by host memory traffic in the baselines.
//!
//! A [`Bus`] hands out the earliest available time window for a transfer
//! of N bytes; callers chain the returned completion times into their own
//! event schedules.

use ndpb_sim::stats::{BusyTime, Counter};
use ndpb_sim::SimTime;
use ndpb_trace::{ComponentId, TraceEvent, TraceRecord, TraceSink};

/// A shared, serializing link with a fixed data rate.
///
/// # Example
///
/// ```
/// use ndpb_dram::Bus;
/// use ndpb_sim::SimTime;
/// let mut ch = Bus::new(64); // 64 bits/tick = 8 B/tick
/// let a = ch.reserve(SimTime::ZERO, 256);
/// let b = ch.reserve(SimTime::ZERO, 256);
/// assert_eq!(a.end.ticks(), 32);
/// assert_eq!(b.start, a.end); // second transfer waits
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    bits_per_tick: u32,
    free_at: SimTime,
    /// Total busy time (for utilization reporting).
    pub busy: BusyTime,
    /// Total bytes transferred.
    pub bytes: Counter,
}

/// The time window granted for one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// When the transfer begins occupying the link.
    pub start: SimTime,
    /// When the last beat completes.
    pub end: SimTime,
}

impl Bus {
    /// Creates a bus moving `bits_per_tick` data bits per tick.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_tick` is zero.
    pub fn new(bits_per_tick: u32) -> Self {
        assert!(bits_per_tick > 0, "bus must have positive bandwidth");
        Bus {
            bits_per_tick,
            free_at: SimTime::ZERO,
            busy: BusyTime::default(),
            bytes: Counter::default(),
        }
    }

    /// The configured data rate in bits per tick.
    pub fn bits_per_tick(&self) -> u32 {
        self.bits_per_tick
    }

    /// Time needed to move `bytes` once the link is free.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        // Shift instead of hardware divide for power-of-two link widths
        // (all evaluated configurations); results are identical.
        let bits = bytes * 8;
        let w = self.bits_per_tick as u64;
        let ticks = if w.is_power_of_two() {
            (bits + w - 1) >> w.trailing_zeros()
        } else {
            bits.div_ceil(w)
        };
        SimTime::from_ticks(ticks.max(1))
    }

    /// Reserves the earliest window of `bytes` starting no sooner than
    /// `now`; the link is busy until the returned `end`.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> BusGrant {
        let start = now.max(self.free_at);
        let end = start + self.transfer_time(bytes);
        self.free_at = end;
        self.busy.record(start, end);
        self.bytes.add(bytes);
        BusGrant { start, end }
    }

    /// [`reserve`](Self::reserve) with a trace hook: when `trace` is
    /// `Some`, emits a [`TraceEvent::BusTransfer`] span over the granted
    /// window. With tracing off the extra cost is one `Option` branch.
    pub fn reserve_traced(
        &mut self,
        now: SimTime,
        bytes: u64,
        comp: ComponentId,
        trace: Option<&mut dyn TraceSink>,
    ) -> BusGrant {
        let g = self.reserve(now, bytes);
        if let Some(t) = trace {
            t.record(TraceRecord::span(
                g.start,
                g.end - g.start,
                comp,
                TraceEvent::BusTransfer { bytes },
            ));
        }
        g
    }

    /// Reserves a window of fixed duration (e.g. a command slot that
    /// occupies C/A but moves no data).
    pub fn reserve_duration(&mut self, now: SimTime, duration: SimTime) -> BusGrant {
        let start = now.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy.record(start, end);
        BusGrant { start, end }
    }

    /// When the link next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_rounds_up() {
        let bus = Bus::new(64);
        assert_eq!(bus.transfer_time(8).ticks(), 1);
        assert_eq!(bus.transfer_time(9).ticks(), 2);
        assert_eq!(bus.transfer_time(0).ticks(), 1); // min one slot
    }

    #[test]
    fn reservations_serialize() {
        let mut bus = Bus::new(8); // 1 B/tick
        let a = bus.reserve(SimTime::ZERO, 10);
        let b = bus.reserve(SimTime::from_ticks(5), 10);
        assert_eq!(a.end.ticks(), 10);
        assert_eq!(b.start, a.end);
        assert_eq!(b.end.ticks(), 20);
        assert_eq!(bus.bytes.get(), 20);
    }

    #[test]
    fn idle_gap_honoured() {
        let mut bus = Bus::new(8);
        bus.reserve(SimTime::ZERO, 4);
        let late = bus.reserve(SimTime::from_ticks(100), 4);
        assert_eq!(late.start.ticks(), 100);
    }

    #[test]
    fn duration_reservation() {
        let mut bus = Bus::new(64);
        let g = bus.reserve_duration(SimTime::ZERO, SimTime::from_ticks(7));
        assert_eq!(g.end.ticks(), 7);
        assert_eq!(bus.free_at().ticks(), 7);
        assert_eq!(bus.bytes.get(), 0);
    }

    #[test]
    fn narrow_bus_is_slower() {
        let wide = Bus::new(64).transfer_time(256);
        let narrow = Bus::new(48).transfer_time(256); // chameleon-s
        assert!(narrow > wide);
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_bandwidth_panics() {
        Bus::new(0);
    }

    #[test]
    fn traced_reserve_records_window() {
        use ndpb_trace::RingRecorder;
        let mut bus = Bus::new(8);
        let mut rec = RingRecorder::new(4);
        let g = bus.reserve_traced(SimTime::ZERO, 10, ComponentId::RankBus(2), Some(&mut rec));
        bus.reserve_traced(g.end, 10, ComponentId::RankBus(2), None);
        let out = rec.take_records();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, g.start);
        assert_eq!(out[0].dur, g.end - g.start);
        assert!(matches!(
            out[0].event,
            TraceEvent::BusTransfer { bytes: 10 }
        ));
    }

    #[test]
    fn busy_time_tracks_utilization() {
        let mut bus = Bus::new(8);
        bus.reserve(SimTime::ZERO, 50);
        assert!((bus.busy.utilization(SimTime::from_ticks(100)) - 0.5).abs() < 1e-12);
    }
}
