//! The application abstraction and per-task execution context.

use ndpb_dram::{DataAddr, UnitId};

use crate::task::{Task, TaskArgs, TaskFnId, Timestamp};

/// What one task did while executing: compute cycles, DRAM traffic to its
/// local bank, and child tasks it spawned. The simulator prices the
/// accesses through the bank model and routes the children.
///
/// A fresh `ExecCtx` is handed to [`Application::execute`] for every
/// task; the runner drains it afterwards.
///
/// # Example
///
/// ```
/// use ndpb_tasks::{ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};
/// use ndpb_dram::{DataAddr, UnitId};
///
/// let mut ctx = ExecCtx::new(UnitId(3));
/// ctx.compute(50);
/// ctx.read(DataAddr(0x100), 64);
/// ctx.enqueue_task(TaskFnId(2), Timestamp(0), DataAddr(0x4000), 10, TaskArgs::EMPTY);
/// assert_eq!(ctx.compute_cycles(), 50);
/// assert_eq!(ctx.spawned().len(), 1);
/// ```
#[derive(Debug)]
pub struct ExecCtx {
    unit: UnitId,
    compute_cycles: u64,
    reads: Vec<(DataAddr, u32)>,
    writes: Vec<(DataAddr, u32)>,
    spawned: Vec<Task>,
}

impl ExecCtx {
    /// A fresh context for a task running on `unit`.
    pub fn new(unit: UnitId) -> Self {
        ExecCtx {
            unit,
            compute_cycles: 0,
            reads: Vec::new(),
            writes: Vec::new(),
            spawned: Vec::new(),
        }
    }

    /// The unit this task is executing on (after any migration).
    pub fn unit(&self) -> UnitId {
        self.unit
    }

    /// Declares `cycles` NDP-core cycles of computation (SRAM-resident
    /// work; cache hits are folded in here by the applications).
    pub fn compute(&mut self, cycles: u64) {
        self.compute_cycles += cycles;
    }

    /// Declares a DRAM read of `bytes` at `addr`. The address should
    /// belong to the task's data element (data-local execution); the
    /// simulator maps it to wherever the element currently lives.
    pub fn read(&mut self, addr: DataAddr, bytes: u32) {
        self.reads.push((addr, bytes));
    }

    /// Declares a DRAM write of `bytes` at `addr`.
    pub fn write(&mut self, addr: DataAddr, bytes: u32) {
        self.writes.push((addr, bytes));
    }

    /// Spawns a child task — the paper's
    /// `enqueue_task(func, ts, addr, workload, args…)` API. The child is
    /// routed to the unit currently holding `addr`.
    pub fn enqueue_task(
        &mut self,
        func: TaskFnId,
        ts: Timestamp,
        addr: DataAddr,
        est_workload: u32,
        args: TaskArgs,
    ) {
        self.spawned
            .push(Task::new(func, ts, addr, est_workload, args));
    }

    /// Spawns an already-built child task.
    pub fn spawn(&mut self, task: Task) {
        self.spawned.push(task);
    }

    /// Total declared compute cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// Declared DRAM reads.
    pub fn reads(&self) -> &[(DataAddr, u32)] {
        &self.reads
    }

    /// Declared DRAM writes.
    pub fn writes(&self) -> &[(DataAddr, u32)] {
        &self.writes
    }

    /// Spawned child tasks.
    pub fn spawned(&self) -> &[Task] {
        &self.spawned
    }

    /// Consumes the context, returning the spawned tasks.
    pub fn into_spawned(self) -> Vec<Task> {
        self.spawned
    }

    /// Takes the spawned tasks out, leaving the context reusable (its
    /// other buffers keep their contents until the next [`reset`]).
    ///
    /// [`reset`]: Self::reset
    pub fn take_spawned(&mut self) -> Vec<Task> {
        std::mem::take(&mut self.spawned)
    }

    /// Resets this context for reuse on `unit`, adopting `spawned`
    /// (cleared) as the spawn buffer. Together with
    /// [`take_spawned`](Self::take_spawned) this lets an event loop
    /// execute every task without per-task heap allocation: the
    /// read/write buffers keep their capacity, and spawn `Vec`s cycle
    /// through a caller-owned free list.
    pub fn reset(&mut self, unit: UnitId, mut spawned: Vec<Task>) {
        spawned.clear();
        self.unit = unit;
        self.compute_cycles = 0;
        self.reads.clear();
        self.writes.clear();
        self.spawned = spawned;
    }
}

/// A workload expressed in the task model.
///
/// Implementations own their (synthetic) dataset, are deterministic given
/// their construction seed, and must tolerate tasks of one timestamp
/// executing in any order — the guarantee the bulk-synchronous model
/// gives them.
///
/// `Send` is a supertrait so a boxed application — and the `System`
/// that owns it — can be handed to a sweep-engine worker thread.
/// Applications are owned data (no shared interior mutability), so this
/// costs implementors nothing.
pub trait Application: Send {
    /// Short name, e.g. `"tree"`.
    fn name(&self) -> &str;

    /// The tasks that seed timestamp 0.
    fn initial_tasks(&mut self) -> Vec<Task>;

    /// Runs one task, declaring its costs and children through `ctx`.
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx);

    /// Optional application-level result checksum, used by integration
    /// tests to confirm scheduling/migration do not change results.
    fn checksum(&self) -> u64 {
        0
    }

    /// Whether [`execute`](Self::execute) commutes across tasks run
    /// inside one conservative parallel window: executions on different
    /// units of the same epoch may be interleaved in any order without
    /// changing the application's observable state (checksum, spawned
    /// children, declared costs). Same-unit executions keep their
    /// serial order regardless.
    ///
    /// This is a *stronger* promise than the epoch contract above —
    /// there the simulator still executes tasks one at a time in a
    /// single deterministic global order; here the per-unit orders are
    /// interleaved nondeterministically in wall-time (though the
    /// *simulated* schedule stays deterministic). Defaults to `false`;
    /// the windowed engine falls back to exact-merge serial execution
    /// for applications that don't opt in.
    fn parallel_commutes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Application for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn initial_tasks(&mut self) -> Vec<Task> {
            vec![Task::new(
                TaskFnId(0),
                Timestamp(0),
                DataAddr(0),
                1,
                TaskArgs::EMPTY,
            )]
        }
        fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
            ctx.compute(5);
            ctx.read(task.data, 64);
            if task.ts.0 < 1 {
                ctx.enqueue_task(task.func, task.ts.next(), task.data, 1, TaskArgs::EMPTY);
            }
        }
    }

    #[test]
    fn ctx_records_everything() {
        let mut app = Echo;
        let tasks = app.initial_tasks();
        let mut ctx = ExecCtx::new(UnitId(0));
        app.execute(&tasks[0], &mut ctx);
        assert_eq!(ctx.compute_cycles(), 5);
        assert_eq!(ctx.reads(), &[(DataAddr(0), 64)]);
        assert!(ctx.writes().is_empty());
        assert_eq!(ctx.spawned().len(), 1);
        assert_eq!(ctx.spawned()[0].ts, Timestamp(1));
        assert_eq!(ctx.unit(), UnitId(0));
    }

    #[test]
    fn second_epoch_task_spawns_nothing() {
        let mut app = Echo;
        let t1 = Task::new(TaskFnId(0), Timestamp(1), DataAddr(0), 1, TaskArgs::EMPTY);
        let mut ctx = ExecCtx::new(UnitId(0));
        app.execute(&t1, &mut ctx);
        assert!(ctx.into_spawned().is_empty());
    }

    #[test]
    fn default_checksum_is_zero() {
        assert_eq!(Echo.checksum(), 0);
    }
}
