//! Task records.

use std::fmt;

use ndpb_dram::DataAddr;

/// Selects the task function to run; the paper's "function pointer"
/// field. Applications define their own numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskFnId(pub u16);

/// Bulk-synchronization timestamp (Section IV, following Swarm-style
/// ordered parallelism). Tasks with equal timestamps may run in
/// parallel; timestamp `t+1` tasks wait for the global completion of
/// timestamp `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u32);

impl Timestamp {
    /// The next epoch.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// Up to four inline 64-bit task arguments ("any number of additional
/// arguments" in the paper, bounded here by the 64-byte message format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskArgs {
    vals: [u64; 4],
    len: u8,
}

impl TaskArgs {
    /// No arguments.
    pub const EMPTY: TaskArgs = TaskArgs {
        vals: [0; 4],
        len: 0,
    };

    /// Builds from a slice.
    ///
    /// # Panics
    ///
    /// Panics if more than four arguments are given.
    pub fn from_slice(args: &[u64]) -> Self {
        assert!(args.len() <= 4, "at most 4 inline task arguments");
        let mut vals = [0u64; 4];
        vals[..args.len()].copy_from_slice(args);
        TaskArgs {
            vals,
            len: args.len() as u8,
        }
    }

    /// One argument.
    pub fn one(a: u64) -> Self {
        Self::from_slice(&[a])
    }

    /// Two arguments.
    pub fn two(a: u64, b: u64) -> Self {
        Self::from_slice(&[a, b])
    }

    /// The arguments as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..self.len as usize]
    }

    /// Argument `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u64 {
        self.as_slice()[i]
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes these arguments occupy on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.len as u32 * 8
    }
}

/// A task: the unit of work, scheduling and migration.
///
/// # Example
///
/// ```
/// use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
/// use ndpb_dram::DataAddr;
///
/// let t = Task::new(TaskFnId(1), Timestamp(0), DataAddr(0x40), 10, TaskArgs::one(7));
/// assert_eq!(t.args.get(0), 7);
/// assert!(t.wire_bytes() <= 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Which function to run.
    pub func: TaskFnId,
    /// Bulk-synchronization epoch.
    pub ts: Timestamp,
    /// Physical address of the data element this task operates on; the
    /// task is routed to (and executed at) the unit currently holding it.
    pub data: DataAddr,
    /// Estimated workload in NDP-core cycles. May be inaccurate or zero
    /// ("unspecified"); dynamic scheduling tolerates both (Section IV).
    pub est_workload: u32,
    /// Inline arguments.
    pub args: TaskArgs,
}

impl Task {
    /// Creates a task; this is the model's `enqueue_task` payload.
    pub fn new(
        func: TaskFnId,
        ts: Timestamp,
        data: DataAddr,
        est_workload: u32,
        args: TaskArgs,
    ) -> Self {
        Task {
            func,
            ts,
            data,
            est_workload,
            args,
        }
    }

    /// Workload estimate used by the load balancer: the declared estimate
    /// or a default of 1 cycle-unit when unspecified.
    pub fn workload_or_default(&self) -> u64 {
        if self.est_workload == 0 {
            1
        } else {
            self.est_workload as u64
        }
    }

    /// Size of this task in a task message (Figure 5): type+index header
    /// (2 B), function selector (2 B), timestamp (4 B), data address
    /// (8 B), workload estimate (4 B), plus inline arguments.
    pub fn wire_bytes(&self) -> u32 {
        2 + 2 + 4 + 8 + 4 + self.args.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip() {
        let a = TaskArgs::from_slice(&[1, 2, 3]);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.get(2), 3);
        assert_eq!(a.wire_bytes(), 24);
    }

    #[test]
    fn empty_args() {
        assert!(TaskArgs::EMPTY.is_empty());
        assert_eq!(TaskArgs::EMPTY.wire_bytes(), 0);
        assert_eq!(TaskArgs::default(), TaskArgs::EMPTY);
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn too_many_args_panics() {
        TaskArgs::from_slice(&[0; 5]);
    }

    #[test]
    fn wire_size_fits_message() {
        let t = Task::new(
            TaskFnId(1),
            Timestamp(3),
            DataAddr(0xdead),
            100,
            TaskArgs::from_slice(&[1, 2, 3, 4]),
        );
        assert_eq!(t.wire_bytes(), 2 + 2 + 4 + 8 + 4 + 32);
        assert!(t.wire_bytes() <= 64, "task must fit a 64 B message");
    }

    #[test]
    fn workload_default() {
        let mut t = Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 0, TaskArgs::EMPTY);
        assert_eq!(t.workload_or_default(), 1);
        t.est_workload = 42;
        assert_eq!(t.workload_or_default(), 42);
    }

    #[test]
    fn timestamp_next() {
        assert_eq!(Timestamp(4).next(), Timestamp(5));
        assert_eq!(Timestamp(0).to_string(), "ts0");
    }
}
