//! The NDPBridge task-based message-passing programming model.
//!
//! Section IV of the paper: an application is decomposed into *tasks*,
//! each operating on exactly one data element (a graph vertex, a tree
//! node, a matrix row, …). A task carries a function selector, a
//! timestamp for bulk-synchronous execution, the physical address of its
//! data element, an optional workload estimate, and a few extra
//! arguments. Tasks are *pushed* to the unit holding their data element
//! (`enqueue_task` in the paper's API); they never pull remote data.
//!
//! This crate defines:
//!
//! * [`Task`], [`TaskFnId`], [`Timestamp`], [`TaskArgs`] — the task
//!   record, with its wire size for message accounting;
//! * [`ExecCtx`] — the execution context handed to a running task, which
//!   records its compute cycles, DRAM accesses and spawned child tasks
//!   (the simulator turns those into timing);
//! * [`Application`] — the trait every workload implements.

#![warn(missing_docs)]

pub mod app;
pub mod task;

pub use app::{Application, ExecCtx};
pub use task::{Task, TaskArgs, TaskFnId, Timestamp};
