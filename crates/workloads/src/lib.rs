//! Workloads: synthetic datasets and the paper's eight applications.
//!
//! Section VII evaluates linked-list traversal (`ll`), hash table
//! (`ht`), tree traversal (`tree`), SpMV (`spmv`), BFS (`bfs`), SSSP
//! (`sssp`), PageRank (`pr`) and weakly-connected components (`wcc`),
//! ported to the task-based message-passing model.
//!
//! The paper uses SNAP graphs, SuiteSparse matrices and Zipfian query
//! streams. Real datasets are unavailable offline, so we generate
//! seeded synthetic equivalents that preserve the properties the paper
//! relies on — degree skew (R-MAT), nnz skew (power-law rows) and
//! query skew (Zipf) — as documented in `DESIGN.md`.
//!
//! [`build_app`] is the factory the harness and examples use.

#![warn(missing_docs)]

pub mod apps;
pub mod graph;
pub mod layout;
pub mod matrix;
pub mod zipf;

pub use graph::Graph;
pub use layout::Layout;
pub use matrix::SparseMatrix;
pub use zipf::Zipfian;

use ndpb_dram::Geometry;
use ndpb_tasks::Application;

/// Workload scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast sizes for unit/integration tests.
    Tiny,
    /// Default sizes for Criterion benches.
    Small,
    /// Paper-reproduction sizes for the `repro` harness.
    Full,
}

/// The eight applications, in the paper's order.
pub const APP_NAMES: [&str; 8] = ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"];

/// Additional workloads beyond the paper's evaluation: `stencil` is the
/// Section IV programming-model example (push-based multi-element
/// tasks) and doubles as a low-skew control.
pub const EXTRA_APP_NAMES: [&str; 1] = ["stencil"];

/// Builds an application by name for the given geometry and scale.
///
/// # Panics
///
/// Panics on an unknown application name.
pub fn build_app(name: &str, geometry: &Geometry, scale: Scale, seed: u64) -> Box<dyn Application> {
    match name {
        "ll" => Box::new(apps::ll::LinkedList::new(geometry, scale, seed)),
        "ht" => Box::new(apps::ht::HashTable::new(geometry, scale, seed)),
        "tree" => Box::new(apps::tree::TreeTraversal::new(geometry, scale, seed)),
        "spmv" => Box::new(apps::spmv::Spmv::new(geometry, scale, seed)),
        "bfs" => Box::new(apps::bfs::Bfs::new(geometry, scale, seed)),
        "sssp" => Box::new(apps::sssp::Sssp::new(geometry, scale, seed)),
        "pr" => Box::new(apps::pr::PageRank::new(geometry, scale, seed)),
        "wcc" => Box::new(apps::wcc::Wcc::new(geometry, scale, seed)),
        "stencil" => Box::new(apps::stencil::Stencil::new(geometry, scale, seed)),
        other => panic!("unknown application {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_apps() {
        let g = Geometry::table1();
        for name in APP_NAMES.iter().chain(EXTRA_APP_NAMES.iter()).copied() {
            let mut app = build_app(name, &g, Scale::Tiny, 1);
            assert_eq!(app.name(), name);
            assert!(!app.initial_tasks().is_empty(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        build_app("nope", &Geometry::table1(), Scale::Tiny, 1);
    }
}
