//! Synthetic sparse matrices (CSR) for `spmv`.
//!
//! SuiteSparse matrices are unavailable offline; we generate power-law
//! row-length matrices, preserving the nnz skew that causes the load
//! imbalance `spmv` exhibits in the paper.

use ndpb_sim::SimRng;

use crate::zipf::Zipfian;

/// A sparse matrix in CSR form (pattern only; values are implicit 1s —
/// the simulator models traffic and compute, not numerics).
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
}

impl SparseMatrix {
    /// Generates a `rows × cols` matrix with ~`nnz` nonzeros whose row
    /// lengths follow a Zipfian distribution with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn power_law(rows: usize, cols: usize, nnz: usize, theta: f64, seed: u64) -> Self {
        Self::power_law_capped(rows, cols, nnz, theta, u64::MAX, seed)
    }

    /// Like [`SparseMatrix::power_law`], but clamps every row at `cap`
    /// nonzeros (mimicking real matrices, whose longest rows are large
    /// but bounded; an uncapped Zipf head would serialize the whole
    /// SpMV behind one row-task).
    pub fn power_law_capped(
        rows: usize,
        cols: usize,
        nnz: usize,
        theta: f64,
        cap: u64,
        seed: u64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        assert!(cap > 0, "row cap must be positive");
        let mut rng = SimRng::new(seed);
        let zip = Zipfian::new(rows as u64, theta);
        // Distribute nnz across rows by Zipf sampling row ids; samples
        // landing on a full row spill to the next row.
        let mut counts = vec![0u64; rows];
        for _ in 0..nnz {
            let mut r = zip.sample(&mut rng) as usize;
            let mut tries = 0;
            while counts[r] >= cap && tries < rows {
                r = (r + 1) % rows;
                tries += 1;
            }
            counts[r] += 1;
        }
        let mut row_ptr = vec![0u64; rows + 1];
        for (r, &c) in counts.iter().enumerate() {
            row_ptr[r + 1] = row_ptr[r] + c;
        }
        let total = row_ptr[rows] as usize;
        let mut col_idx = Vec::with_capacity(total);
        for &c in &counts {
            for _ in 0..c {
                col_idx.push(rng.next_below(cols as u64) as u32);
            }
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Longest row (skew diagnostic).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_nnz() {
        let m = SparseMatrix::power_law(100, 50, 1000, 0.8, 1);
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 50);
        assert_eq!(m.nnz(), 1000);
        let sum: usize = (0..100).map(|r| m.row_nnz(r)).sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn skewed_rows() {
        let m = SparseMatrix::power_law(1000, 1000, 50_000, 0.9, 2);
        let avg = m.nnz() / m.rows();
        assert!(
            m.max_row_nnz() > 10 * avg,
            "max {} vs avg {avg}",
            m.max_row_nnz()
        );
    }

    #[test]
    fn col_indices_in_range() {
        let m = SparseMatrix::power_law(50, 30, 500, 0.5, 3);
        for r in 0..50 {
            for &c in m.row_cols(r) {
                assert!((c as usize) < 30);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = SparseMatrix::power_law(64, 64, 512, 0.7, 9);
        let b = SparseMatrix::power_law(64, 64, 512, 0.7, 9);
        assert_eq!(a.col_idx, b.col_idx);
        assert_eq!(a.row_ptr, b.row_ptr);
    }
}
