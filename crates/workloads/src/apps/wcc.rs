//! Weakly connected components (`wcc`) via min-label propagation.
//!
//! Every vertex starts labelled with its own id and pushes its label to
//! its neighbors; a vertex adopting a smaller label propagates it
//! further. Min-propagation is confluent: the final labels do not
//! depend on scheduling.

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Graph, Layout, Scale};

/// Cycles of fixed per-task work.
const BASE_CYCLES: u64 = 18;
/// Cycles per pushed label.
const CYCLES_PER_EDGE: u64 = 4;

/// Seed-push function (epoch 0).
const FN_SEED: TaskFnId = TaskFnId(0);
/// Label-update function.
const FN_LABEL: TaskFnId = TaskFnId(1);

/// The `wcc` workload. The graph is symmetrized so components are
/// well-defined.
#[derive(Debug)]
pub struct Wcc {
    graph: Graph,
    layout: Layout,
    label: Vec<u32>,
}

impl Wcc {
    /// Builds a symmetrized R-MAT graph.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let n = 1usize << s.graph_scale;
        let directed = Graph::rmat_with_locality(s.graph_scale, n * s.edge_factor / 2, 0.4, seed);
        // Symmetrize.
        let mut edges = Vec::with_capacity(directed.edges() * 2);
        for v in 0..n as u32 {
            for &u in directed.neighbors(v) {
                edges.push((v, u));
                edges.push((u, v));
            }
        }
        let graph = Graph::from_edges(n, &edges);
        Wcc {
            layout: Layout::new(geometry, n as u64, 64),
            label: (0..n as u32).collect(),
            graph,
        }
    }

    /// Final component labels.
    pub fn labels(&self) -> &[u32] {
        &self.label
    }

    /// Number of distinct components among the labelled vertices.
    pub fn components(&self) -> usize {
        let mut l: Vec<u32> = self.label.clone();
        l.sort_unstable();
        l.dedup();
        l.len()
    }
}

impl Application for Wcc {
    fn name(&self) -> &str {
        "wcc"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.graph.vertices() as u64)
            .map(|v| {
                Task::new(
                    FN_SEED,
                    Timestamp(0),
                    self.layout.addr_of(v),
                    (BASE_CYCLES + self.graph.degree(v as u32) as u64 * CYCLES_PER_EDGE) as u32,
                    TaskArgs::one(v),
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let v = task.args.get(0) as u32;
        ctx.compute(BASE_CYCLES);
        ctx.read(task.data, 8);
        let push_label = match task.func {
            FN_SEED => Some(self.label[v as usize]),
            _ => {
                let candidate = task.args.get(1) as u32;
                if candidate < self.label[v as usize] {
                    self.label[v as usize] = candidate;
                    ctx.write(task.data, 8);
                    Some(candidate)
                } else {
                    None
                }
            }
        };
        let Some(lab) = push_label else {
            return;
        };
        let deg = self.graph.degree(v) as u64;
        ctx.compute(deg * CYCLES_PER_EDGE);
        ctx.read(task.data, (deg as u32 * 4).min(4096));
        for &u in self.graph.neighbors(v) {
            if self.label[u as usize] <= lab {
                continue; // provably useless push
            }
            ctx.enqueue_task(
                FN_LABEL,
                task.ts.next(),
                self.layout.addr_of(u as u64),
                (BASE_CYCLES + self.graph.degree(u) as u64 * CYCLES_PER_EDGE) as u32,
                TaskArgs::two(u as u64, lab as u64),
            );
        }
    }

    fn checksum(&self) -> u64 {
        self.label
            .iter()
            .fold(0u64, |a, &l| a.wrapping_add(l as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;
    use ndpb_sim::SimRng;

    fn run_serial(app: &mut Wcc, shuffle: Option<u64>) {
        let mut current = app.initial_tasks();
        let mut next: Vec<Task> = Vec::new();
        let mut rng = shuffle.map(SimRng::new);
        while !current.is_empty() {
            if let Some(r) = rng.as_mut() {
                r.shuffle(&mut current);
            }
            for t in current.drain(..) {
                let mut ctx = ExecCtx::new(UnitId(0));
                app.execute(&t, &mut ctx);
                next.extend(ctx.into_spawned());
            }
            std::mem::swap(&mut current, &mut next);
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Wcc::new(&g, Scale::Tiny, 6);
        run_serial(&mut app, None);
        // Every edge must connect equal labels after convergence.
        for v in 0..app.graph.vertices() as u32 {
            for &u in app.graph.neighbors(v) {
                assert_eq!(
                    app.label[v as usize], app.label[u as usize],
                    "edge ({v},{u}) spans labels"
                );
            }
        }
        // A label is the minimum vertex of its component.
        for v in 0..app.graph.vertices() as u32 {
            assert!(app.label[v as usize] <= v);
        }
    }

    #[test]
    fn giant_component_emerges() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Wcc::new(&g, Scale::Tiny, 6);
        let n = app.graph.vertices();
        run_serial(&mut app, None);
        assert!(
            app.components() < n / 2,
            "{} components of {n} vertices",
            app.components()
        );
    }

    #[test]
    fn result_is_schedule_independent() {
        let g = Geometry::with_total_ranks(1);
        let mut a = Wcc::new(&g, Scale::Tiny, 6);
        run_serial(&mut a, None);
        let mut b = Wcc::new(&g, Scale::Tiny, 6);
        run_serial(&mut b, Some(777));
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.labels(), b.labels());
    }
}
