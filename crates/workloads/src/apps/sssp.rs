//! Single-source shortest paths (`sssp`), Bellman-Ford-style waves.
//!
//! A task carries a tentative distance; if it improves the vertex's
//! best distance, relaxations propagate to the neighbors in the next
//! epoch. Redundant relaxations cost time but never change the final
//! distances, so the result is schedule-independent.

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Graph, Layout, Scale};

/// Cycles of fixed per-task work.
const BASE_CYCLES: u64 = 24;
/// Cycles per relaxed edge.
const CYCLES_PER_EDGE: u64 = 6;
/// Vertex record bytes (distance + bookkeeping).
const VERTEX_BYTES: u32 = 16;

/// Deterministic edge weight in `1..=8`.
fn weight(s: u32, t: u32) -> u64 {
    let x = ((s as u64) << 32 | t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (x >> 61) + 1
}

/// The `sssp` workload.
#[derive(Debug)]
pub struct Sssp {
    graph: Graph,
    layout: Layout,
    dist: Vec<u64>,
    source: u32,
}

impl Sssp {
    /// Builds an R-MAT graph rooted at its max-degree vertex.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let n = 1usize << s.graph_scale;
        // Slightly smaller than bfs: sssp re-relaxes.
        let graph = Graph::rmat_with_locality(s.graph_scale, n * s.edge_factor / 2, 0.4, seed);
        let source = (0..n as u32)
            .max_by_key(|&v| graph.degree(v))
            .expect("non-empty graph");
        Sssp {
            layout: Layout::new(geometry, n as u64, 64),
            dist: vec![u64::MAX; n],
            graph,
            source,
        }
    }

    /// The distance array (for validation).
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }
}

impl Application for Sssp {
    fn name(&self) -> &str {
        "sssp"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        vec![Task::new(
            TaskFnId(0),
            Timestamp(0),
            self.layout.addr_of(self.source as u64),
            BASE_CYCLES as u32,
            TaskArgs::two(self.source as u64, 0),
        )]
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let v = task.args.get(0) as u32;
        let d = task.args.get(1);
        ctx.compute(BASE_CYCLES);
        ctx.read(task.data, VERTEX_BYTES);
        if d >= self.dist[v as usize] {
            return; // stale relaxation
        }
        self.dist[v as usize] = d;
        ctx.write(task.data, 8);
        let deg = self.graph.degree(v) as u64;
        ctx.compute(deg * CYCLES_PER_EDGE);
        ctx.read(task.data, (deg as u32 * 8).min(4096));
        for &u in self.graph.neighbors(v) {
            let nd = d + weight(v, u);
            if nd >= self.dist[u as usize] {
                continue; // provably useless relaxation
            }
            ctx.enqueue_task(
                TaskFnId(0),
                task.ts.next(),
                self.layout.addr_of(u as u64),
                (BASE_CYCLES + self.graph.degree(u) as u64 * CYCLES_PER_EDGE) as u32,
                TaskArgs::two(u as u64, nd),
            );
        }
    }

    fn checksum(&self) -> u64 {
        self.dist
            .iter()
            .filter(|&&d| d != u64::MAX)
            .fold(0u64, |a, &d| a.wrapping_add(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;
    use ndpb_sim::SimRng;

    fn run_serial(app: &mut Sssp, shuffle_seed: Option<u64>) {
        let mut current = app.initial_tasks();
        let mut next: Vec<Task> = Vec::new();
        let mut rng = shuffle_seed.map(SimRng::new);
        while !current.is_empty() {
            if let Some(r) = rng.as_mut() {
                r.shuffle(&mut current);
            }
            for t in current.drain(..) {
                let mut ctx = ExecCtx::new(UnitId(0));
                app.execute(&t, &mut ctx);
                next.extend(ctx.into_spawned());
            }
            std::mem::swap(&mut current, &mut next);
        }
    }

    #[test]
    fn source_distance_zero_and_triangle_inequality() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Sssp::new(&g, Scale::Tiny, 4);
        run_serial(&mut app, None);
        assert_eq!(app.dist[app.source as usize], 0);
        for v in 0..app.graph.vertices() as u32 {
            let dv = app.dist[v as usize];
            if dv == u64::MAX {
                continue;
            }
            for &u in app.graph.neighbors(v) {
                assert!(
                    app.dist[u as usize] <= dv + weight(v, u),
                    "edge ({v},{u}) not relaxed"
                );
            }
        }
    }

    #[test]
    fn result_is_schedule_independent() {
        let g = Geometry::with_total_ranks(1);
        let mut a = Sssp::new(&g, Scale::Tiny, 4);
        run_serial(&mut a, None);
        let mut b = Sssp::new(&g, Scale::Tiny, 4);
        run_serial(&mut b, Some(99)); // different intra-epoch order
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(a.distances(), b.distances());
    }

    #[test]
    fn weights_in_range() {
        for s in 0..100u32 {
            for t in 0..10u32 {
                let w = weight(s, t);
                assert!((1..=8).contains(&w));
            }
        }
    }
}
