//! The eight evaluated applications (Section VII).
//!
//! Cost model convention shared by all apps: `ctx.compute(..)` cycles
//! cover the core's SRAM-resident work, and `ctx.read/write` declare
//! the DRAM traffic of the task's data element. `est_workload` carries
//! the task's compute estimate for the load balancer (it may be crude —
//! the scheduling is dynamic).

pub mod bfs;
pub mod ht;
pub mod ll;
pub mod pr;
pub mod spmv;
pub mod sssp;
pub mod stencil;
pub mod tree;
pub mod wcc;

use crate::Scale;

/// Per-scale workload sizing shared across apps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sizes {
    /// Queries (ll/ht/tree).
    pub queries: usize,
    /// Elements per unit for query apps.
    pub elems_per_unit: usize,
    /// Graph scale (log2 vertices) for bfs/sssp/wcc.
    pub graph_scale: u32,
    /// Edge factor (edges = factor × vertices).
    pub edge_factor: usize,
    /// PageRank iterations.
    pub pr_iters: u32,
    /// PageRank graph scale (smaller: pr generates n+m tasks per iter).
    pub pr_scale: u32,
    /// SpMV rows per unit.
    pub spmv_rows_per_unit: usize,
    /// SpMV average nnz per row.
    pub spmv_nnz_per_row: usize,
}

impl Sizes {
    pub(crate) fn of(scale: Scale) -> Sizes {
        match scale {
            Scale::Tiny => Sizes {
                queries: 2_000,
                elems_per_unit: 8,
                graph_scale: 11,
                edge_factor: 8,
                pr_iters: 2,
                pr_scale: 10,
                spmv_rows_per_unit: 4,
                spmv_nnz_per_row: 8,
            },
            Scale::Small => Sizes {
                queries: 24_000,
                elems_per_unit: 32,
                graph_scale: 14,
                edge_factor: 8,
                pr_iters: 2,
                pr_scale: 13,
                spmv_rows_per_unit: 16,
                spmv_nnz_per_row: 12,
            },
            Scale::Full => Sizes {
                queries: 100_000,
                elems_per_unit: 64,
                graph_scale: 16,
                edge_factor: 8,
                pr_iters: 3,
                pr_scale: 14,
                spmv_rows_per_unit: 32,
                spmv_nnz_per_row: 16,
            },
        }
    }
}
