//! Sparse matrix–vector multiplication (`spmv`).
//!
//! Rows are distributed contiguously across units and each unit holds
//! the vector entries its rows need (the paper's data interleaving
//! assumption), so the baseline needs no communication; the power-law
//! nnz distribution creates the load imbalance.

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Layout, Scale, SparseMatrix};

/// Cycles per nonzero (multiply-accumulate + index handling).
const CYCLES_PER_NNZ: u64 = 8;
/// Bytes per nonzero (column index + value).
const BYTES_PER_NNZ: u32 = 12;

/// The `spmv` workload: one task per matrix row.
#[derive(Debug)]
pub struct Spmv {
    layout: Layout,
    matrix: SparseMatrix,
    macs: u64,
}

impl Spmv {
    /// Builds the matrix (`rows_per_unit` rows per unit, Zipf-skewed
    /// nnz) and the per-row task list.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let rows = geometry.total_units() as usize * s.spmv_rows_per_unit;
        let nnz = rows * s.spmv_nnz_per_row;
        // Cap the longest row at 32x the average nnz so a single
        // row-task cannot serialize the run.
        let cap = (32 * s.spmv_nnz_per_row) as u64;
        let matrix = SparseMatrix::power_law_capped(rows, rows, nnz, 0.95, cap, seed);
        Spmv {
            // A row element: its nonzeros, capped to a 256 B block for
            // migration (longer rows stream from the same bank region).
            layout: Layout::new(geometry, rows as u64, 256),
            matrix,
            macs: 0,
        }
    }

    /// The generated matrix.
    pub fn matrix(&self) -> &SparseMatrix {
        &self.matrix
    }
}

impl Application for Spmv {
    fn name(&self) -> &str {
        "spmv"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.matrix.rows())
            .map(|r| {
                let nnz = self.matrix.row_nnz(r).max(1) as u64;
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    self.layout.addr_of(r as u64),
                    (nnz * CYCLES_PER_NNZ) as u32,
                    TaskArgs::EMPTY,
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let r = self.layout.element_of(task.data) as usize;
        let nnz = self.matrix.row_nnz(r).max(1) as u64;
        ctx.compute(nnz * CYCLES_PER_NNZ);
        ctx.read(task.data, (nnz as u32 * BYTES_PER_NNZ).min(4096));
        ctx.write(task.data, 8); // result element
        self.macs += nnz;
    }

    fn checksum(&self) -> u64 {
        self.macs
    }

    // Row tasks read immutable CSR metadata and accumulate a MAC
    // counter — pure accumulation, order-independent.
    fn parallel_commutes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;

    #[test]
    fn one_task_per_row() {
        let g = Geometry::table1();
        let mut app = Spmv::new(&g, Scale::Tiny, 1);
        let tasks = app.initial_tasks();
        assert_eq!(tasks.len(), app.matrix.rows());
    }

    #[test]
    fn workload_tracks_nnz() {
        let g = Geometry::table1();
        let mut app = Spmv::new(&g, Scale::Tiny, 1);
        let tasks = app.initial_tasks();
        let heavy = tasks.iter().map(|t| t.est_workload).max().unwrap();
        let light = tasks.iter().map(|t| t.est_workload).min().unwrap();
        assert!(heavy > 10 * light, "nnz skew must show in estimates");
    }

    #[test]
    fn executing_all_rows_counts_all_macs() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Spmv::new(&g, Scale::Tiny, 1);
        let tasks = app.initial_tasks();
        for t in &tasks {
            let mut ctx = ExecCtx::new(UnitId(0));
            app.execute(&t.clone(), &mut ctx);
            assert!(ctx.spawned().is_empty());
        }
        assert!(app.checksum() as usize >= app.matrix.nnz());
    }
}
