//! Hash-table probing (`ht`).
//!
//! Buckets are distributed across units by hash; each bucket's chain is
//! fully local ([30]), so like `ll` there is no baseline communication.
//! Key skew (Zipf) makes some buckets far hotter than others.

use ndpb_dram::Geometry;
use ndpb_sim::SimRng;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Layout, Scale, Zipfian};

/// Cycles to hash + compare one chain entry.
const CYCLES_PER_ENTRY: u64 = 16;
/// Bytes per chain entry (key, value pointer).
const BYTES_PER_ENTRY: u32 = 16;

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `ht` workload.
#[derive(Debug)]
pub struct HashTable {
    layout: Layout,
    chain_len: Vec<u8>,
    queries: Vec<u64>,
    buckets: u64,
    probes: u64,
}

impl HashTable {
    /// Builds a table of `elems_per_unit` buckets per unit, preloaded
    /// with chains, and a Zipfian key query stream.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let buckets = geometry.total_units() as u64 * s.elems_per_unit as u64;
        let mut rng = SimRng::new(seed);
        // Insert 8 keys per bucket on average, Zipf-skewed, so chain
        // lengths vary.
        let key_space = buckets * 8;
        let zipf = Zipfian::new(key_space, 0.55);
        let mut chain_len = vec![0u8; buckets as usize];
        for _ in 0..key_space {
            let key = zipf.sample(&mut rng);
            let b = (hash64(key) % buckets) as usize;
            chain_len[b] = chain_len[b].saturating_add(1).min(16);
        }
        let queries: Vec<u64> = (0..s.queries).map(|_| zipf.sample(&mut rng)).collect();
        HashTable {
            layout: Layout::new(geometry, buckets, 256),
            chain_len,
            queries,
            buckets,
            probes: 0,
        }
    }

    /// Bucket of a key.
    pub fn bucket_of(&self, key: u64) -> u64 {
        hash64(key) % self.buckets
    }
}

impl Application for HashTable {
    fn name(&self) -> &str {
        "ht"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        self.queries
            .iter()
            .map(|&key| {
                let b = self.bucket_of(key);
                let len = self.chain_len[b as usize].max(1) as u32;
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    self.layout.addr_of(b),
                    len * CYCLES_PER_ENTRY as u32,
                    TaskArgs::one(key),
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let b = self.layout.element_of(task.data);
        let len = self.chain_len[b as usize].max(1) as u64;
        // Walk half the chain on average (hit mid-chain).
        let walked = len.div_ceil(2);
        ctx.compute(walked * CYCLES_PER_ENTRY);
        ctx.read(task.data, walked as u32 * BYTES_PER_ENTRY);
        self.probes += walked;
    }

    fn checksum(&self) -> u64 {
        self.probes
    }

    // Probes read immutable chain lengths and accumulate a counter —
    // pure accumulation, order-independent.
    fn parallel_commutes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;

    #[test]
    fn chains_are_skewed() {
        let g = Geometry::table1();
        let app = HashTable::new(&g, Scale::Tiny, 3);
        let max = *app.chain_len.iter().max().unwrap();
        let nonzero = app.chain_len.iter().filter(|&&c| c > 0).count();
        assert!(max >= 8, "max chain {max}");
        assert!(nonzero > app.chain_len.len() / 4);
    }

    #[test]
    fn tasks_route_to_bucket_home() {
        let g = Geometry::table1();
        let mut app = HashTable::new(&g, Scale::Tiny, 3);
        let tasks = app.initial_tasks();
        for t in tasks.iter().take(50) {
            let key = t.args.get(0);
            let b = app.bucket_of(key);
            assert_eq!(t.data, app.layout.addr_of(b));
        }
    }

    #[test]
    fn execute_counts_probes() {
        let g = Geometry::table1();
        let mut app = HashTable::new(&g, Scale::Tiny, 3);
        let tasks = app.initial_tasks();
        let mut ctx = ExecCtx::new(UnitId(0));
        app.execute(&tasks[0], &mut ctx);
        assert!(app.checksum() > 0);
        assert!(ctx.reads()[0].1 >= BYTES_PER_ENTRY);
    }

    #[test]
    fn deterministic() {
        let g = Geometry::table1();
        let mut a = HashTable::new(&g, Scale::Tiny, 3);
        let mut b = HashTable::new(&g, Scale::Tiny, 3);
        assert_eq!(a.initial_tasks().len(), b.initial_tasks().len());
        assert_eq!(a.queries, b.queries);
    }
}
