//! PageRank (`pr`), push-based bulk-synchronous iterations.
//!
//! Each iteration uses two epochs: at even timestamps every vertex
//! computes its new rank from the accumulator and pushes fixed-point
//! contributions to its out-neighbors (odd timestamp); contribution
//! tasks add into the target's accumulator. Integer fixed-point
//! arithmetic keeps the result independent of task ordering.

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Graph, Layout, Scale};

/// Fixed-point scale (2^20).
const SCALE_1: u64 = 1 << 20;
/// Damping factor 0.85 in fixed point.
const DAMP: u64 = (0.85 * SCALE_1 as f64) as u64;

/// Cycles for a vertex rank update.
const VERTEX_CYCLES: u64 = 40;
/// Cycles for one pushed contribution.
const PUSH_CYCLES: u64 = 6;
/// Cycles for an accumulate task.
const ACC_CYCLES: u64 = 12;

/// Task function ids.
const FN_VERTEX: TaskFnId = TaskFnId(0);
const FN_CONTRIB: TaskFnId = TaskFnId(1);

/// The `pr` workload.
#[derive(Debug)]
pub struct PageRank {
    graph: Graph,
    layout: Layout,
    rank: Vec<u64>,
    acc: Vec<u64>,
    iters: u32,
}

impl PageRank {
    /// Builds an R-MAT graph with uniform initial ranks.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let n = 1usize << s.pr_scale;
        let graph = Graph::rmat_with_locality(s.pr_scale, n * s.edge_factor, 0.4, seed);
        PageRank {
            layout: Layout::new(geometry, n as u64, 64),
            rank: vec![SCALE_1 / n as u64; n],
            acc: vec![0; n],
            graph,
            iters: s.pr_iters,
        }
    }

    /// Number of configured iterations.
    pub fn iterations(&self) -> u32 {
        self.iters
    }
}

impl Application for PageRank {
    fn name(&self) -> &str {
        "pr"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.graph.vertices() as u64)
            .map(|v| {
                Task::new(
                    FN_VERTEX,
                    Timestamp(0),
                    self.layout.addr_of(v),
                    (VERTEX_CYCLES + self.graph.degree(v as u32) as u64 * PUSH_CYCLES) as u32,
                    TaskArgs::one(v),
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        match task.func {
            FN_VERTEX => {
                let v = task.args.get(0) as u32;
                let iter = task.ts.0 / 2;
                ctx.compute(VERTEX_CYCLES);
                ctx.read(task.data, 16);
                if iter > 0 {
                    // rank = (1-d)/n + d * acc
                    let n = self.graph.vertices() as u64;
                    self.rank[v as usize] =
                        (SCALE_1 - DAMP) / n + DAMP * self.acc[v as usize] / SCALE_1;
                    self.acc[v as usize] = 0;
                    ctx.write(task.data, 16);
                }
                let deg = self.graph.degree(v) as u64;
                if let Some(contrib) = self.rank[v as usize].checked_div(deg) {
                    ctx.compute(deg * PUSH_CYCLES);
                    ctx.read(task.data, (deg as u32 * 4).min(4096));
                    for &u in self.graph.neighbors(v) {
                        ctx.enqueue_task(
                            FN_CONTRIB,
                            task.ts.next(),
                            self.layout.addr_of(u as u64),
                            ACC_CYCLES as u32,
                            TaskArgs::two(u as u64, contrib),
                        );
                    }
                }
                if iter + 1 < self.iters {
                    ctx.enqueue_task(
                        FN_VERTEX,
                        Timestamp(task.ts.0 + 2),
                        task.data,
                        (VERTEX_CYCLES + deg * PUSH_CYCLES) as u32,
                        TaskArgs::one(v as u64),
                    );
                } else if iter == self.iters.saturating_sub(1) && self.iters > 0 {
                    // Final epoch: apply the last accumulation.
                    ctx.enqueue_task(
                        TaskFnId(2),
                        Timestamp(task.ts.0 + 2),
                        task.data,
                        VERTEX_CYCLES as u32,
                        TaskArgs::one(v as u64),
                    );
                }
            }
            FN_CONTRIB => {
                let u = task.args.get(0) as usize;
                ctx.compute(ACC_CYCLES);
                ctx.read(task.data, 8);
                ctx.write(task.data, 8);
                self.acc[u] += task.args.get(1);
            }
            _ => {
                // Final apply.
                let v = task.args.get(0) as usize;
                let n = self.graph.vertices() as u64;
                ctx.compute(VERTEX_CYCLES);
                ctx.write(task.data, 16);
                self.rank[v] = (SCALE_1 - DAMP) / n + DAMP * self.acc[v] / SCALE_1;
                self.acc[v] = 0;
            }
        }
    }

    fn checksum(&self) -> u64 {
        self.rank.iter().fold(0u64, |a, &r| a.wrapping_add(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;
    use ndpb_sim::SimRng;

    fn run_serial(app: &mut PageRank, shuffle: Option<u64>) {
        use std::collections::BTreeMap;
        let mut by_ts: BTreeMap<u32, Vec<Task>> = BTreeMap::new();
        for t in app.initial_tasks() {
            by_ts.entry(t.ts.0).or_default().push(t);
        }
        let mut rng = shuffle.map(SimRng::new);
        while let Some((&ts, _)) = by_ts.iter().next() {
            let mut tasks = by_ts.remove(&ts).expect("exists");
            if let Some(r) = rng.as_mut() {
                r.shuffle(&mut tasks);
            }
            for t in tasks {
                let mut ctx = ExecCtx::new(UnitId(0));
                app.execute(&t, &mut ctx);
                for c in ctx.into_spawned() {
                    assert!(c.ts.0 > ts, "children must move forward in time");
                    by_ts.entry(c.ts.0).or_default().push(c);
                }
            }
        }
    }

    #[test]
    fn ranks_form_a_distribution() {
        let g = Geometry::with_total_ranks(1);
        let mut app = PageRank::new(&g, Scale::Tiny, 5);
        run_serial(&mut app, None);
        let total: u64 = app.rank.iter().sum();
        // Σ rank ≈ 1.0 in fixed point (within rounding loss).
        assert!(
            total > SCALE_1 / 2 && total < SCALE_1 * 2,
            "total {total} vs scale {SCALE_1}"
        );
    }

    #[test]
    fn hubs_rank_higher() {
        let g = Geometry::with_total_ranks(1);
        let mut app = PageRank::new(&g, Scale::Tiny, 5);
        run_serial(&mut app, None);
        // Find the max in-degree vertex.
        let n = app.graph.vertices();
        let mut indeg = vec![0u32; n];
        for v in 0..n as u32 {
            for &u in app.graph.neighbors(v) {
                indeg[u as usize] += 1;
            }
        }
        let hub = (0..n).max_by_key(|&v| indeg[v]).unwrap();
        let avg = app.rank.iter().sum::<u64>() / n as u64;
        assert!(
            app.rank[hub] > 2 * avg,
            "hub rank {} vs avg {avg}",
            app.rank[hub]
        );
    }

    #[test]
    fn result_is_schedule_independent() {
        let g = Geometry::with_total_ranks(1);
        let mut a = PageRank::new(&g, Scale::Tiny, 5);
        run_serial(&mut a, None);
        let mut b = PageRank::new(&g, Scale::Tiny, 5);
        run_serial(&mut b, Some(123));
        assert_eq!(a.checksum(), b.checksum());
    }
}
