//! Linked-list traversal (`ll`).
//!
//! Each linked list is fully stored in one NDP unit ([30], [57]), so a
//! query touches exactly one unit and the baseline needs no cross-unit
//! communication — but Zipfian query skew concentrates work on the
//! units holding hot lists, making `ll` a pure load-imbalance workload
//! (Figure 10: no wait time under C/B, large max/avg gap).

use ndpb_dram::Geometry;
use ndpb_sim::SimRng;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId};

use crate::apps::Sizes;
use crate::{Layout, Scale, Zipfian};

/// Cycles to process one list node.
const CYCLES_PER_NODE: u64 = 24;
/// Bytes read per node (key + next pointer + padding).
const BYTES_PER_NODE: u32 = 16;

/// The `ll` workload.
#[derive(Debug)]
pub struct LinkedList {
    layout: Layout,
    lengths: Vec<u8>,
    queries: Vec<u32>,
    nodes_walked: u64,
}

impl LinkedList {
    /// Builds the dataset: `elems_per_unit` lists per unit with skewed
    /// lengths, and a Zipfian query stream over all lists.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let lists = geometry.total_units() as usize * s.elems_per_unit;
        let mut rng = SimRng::new(seed);
        // List lengths 1..=16 nodes (a 256 B element holds 16 nodes).
        let lengths: Vec<u8> = (0..lists).map(|_| 1 + (rng.next_below(16)) as u8).collect();
        // Zipf over *random permutation* of lists so hot lists land on
        // arbitrary units (query skew → unit skew).
        // θ=0.75: hot lists overload their units without one single list
        // serializing the whole run (real query logs concentrate far less
        // than θ≈1 at these population sizes).
        let zipf = Zipfian::new(lists as u64, 0.55);
        let mut perm: Vec<u32> = (0..lists as u32).collect();
        rng.shuffle(&mut perm);
        let queries: Vec<u32> = (0..s.queries)
            .map(|_| perm[zipf.sample(&mut rng) as usize])
            .collect();
        LinkedList {
            layout: Layout::new(geometry, lists as u64, 256),
            lengths,
            queries,
            nodes_walked: 0,
        }
    }

    /// Number of lists in the dataset.
    pub fn lists(&self) -> usize {
        self.lengths.len()
    }
}

impl Application for LinkedList {
    fn name(&self) -> &str {
        "ll"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        self.queries
            .iter()
            .map(|&list| {
                let len = self.lengths[list as usize] as u32;
                Task::new(
                    TaskFnId(0),
                    ndpb_tasks::Timestamp(0),
                    self.layout.addr_of(list as u64),
                    len * CYCLES_PER_NODE as u32,
                    TaskArgs::EMPTY,
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let list = self.layout.element_of(task.data);
        let len = self.lengths[list as usize] as u64;
        ctx.compute(len * CYCLES_PER_NODE);
        ctx.read(task.data, len as u32 * BYTES_PER_NODE);
        self.nodes_walked += len;
    }

    fn checksum(&self) -> u64 {
        self.nodes_walked
    }

    // Each query only reads immutable list metadata and adds its length
    // to a counter — pure accumulation, order-independent.
    fn parallel_commutes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;

    #[test]
    fn dataset_is_deterministic() {
        let g = Geometry::table1();
        let a = LinkedList::new(&g, Scale::Tiny, 5);
        let b = LinkedList::new(&g, Scale::Tiny, 5);
        assert_eq!(a.lengths, b.lengths);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn queries_are_skewed_across_units() {
        let g = Geometry::table1();
        let mut app = LinkedList::new(&g, Scale::Tiny, 5);
        let tasks = app.initial_tasks();
        let mut per_unit = vec![0u32; g.total_units() as usize];
        let layout = Layout::new(&g, app.lists() as u64, 256);
        for t in &tasks {
            per_unit[layout.unit_of(layout.element_of(t.data)).index()] += 1;
        }
        let max = *per_unit.iter().max().unwrap();
        let avg = tasks.len() as u32 / g.total_units();
        assert!(max > 4 * avg.max(1), "max {max} vs avg {avg}");
    }

    #[test]
    fn execute_walks_whole_list() {
        let g = Geometry::table1();
        let mut app = LinkedList::new(&g, Scale::Tiny, 5);
        let tasks = app.initial_tasks();
        let mut ctx = ExecCtx::new(UnitId(0));
        app.execute(&tasks[0], &mut ctx);
        assert!(ctx.compute_cycles() >= CYCLES_PER_NODE);
        assert_eq!(ctx.spawned().len(), 0, "ll never spawns children");
        assert!(app.checksum() > 0);
    }
}
