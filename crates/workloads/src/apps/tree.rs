//! Tree traversal (`tree`) — the paper's running example (Algorithm 1,
//! Figure 2).
//!
//! A forest of balanced binary search trees whose nodes are hash-
//! scattered across units: every step down a tree usually hops to
//! another unit, so `tree` is communication-heavy under the baseline.
//! Queries pick a tree with a Zipfian distribution (hot indexes) and a
//! uniform target inside it, so hot trees concentrate load on the
//! units that happen to host their nodes.

use ndpb_dram::Geometry;
use ndpb_sim::SimRng;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Layout, Scale, Zipfian};

/// Cycles to compare keys and pick a child at one node.
const CYCLES_PER_NODE: u64 = 30;
/// Node record bytes (key, value, two child pointers).
const NODE_BYTES: u32 = 32;

/// The `tree` workload: a forest of implicit balanced BSTs. Within a
/// tree, heap-node `i`'s children are `2i+1`/`2i+2`; placement of
/// (tree, node) pairs across units is a seeded pseudo-random
/// permutation.
#[derive(Debug)]
pub struct TreeTraversal {
    layout: Layout,
    /// placement[tree * nodes_per_tree + node] = element slot.
    placement: Vec<u32>,
    trees: usize,
    nodes_per_tree: usize,
    /// Queries as (tree, target heap node).
    queries: Vec<(u32, u32)>,
    hits: u64,
    hops: u64,
}

impl TreeTraversal {
    /// Builds the forest and the Zipfian query stream.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        // ~2 trees per unit; each tree deep enough for real traversals.
        let trees = (geometry.total_units() as usize * 2).max(8);
        let nodes_per_tree = ((s.elems_per_unit * 2).next_power_of_two() * 32 - 1).max(1023);
        let total = trees * nodes_per_tree;
        let mut rng = SimRng::new(seed);
        let mut placement: Vec<u32> = (0..total as u32).collect();
        rng.shuffle(&mut placement);
        // θ=0.65 keeps hot indexes (units hosting hot-tree upper levels
        // are overloaded) without one tree's root serializing the run.
        let tree_zipf = Zipfian::new(trees as u64, 0.65);
        let node_zipf = Zipfian::new(nodes_per_tree as u64, 0.4);
        let queries: Vec<(u32, u32)> = (0..s.queries)
            .map(|_| {
                (
                    tree_zipf.sample(&mut rng) as u32,
                    node_zipf.sample(&mut rng) as u32,
                )
            })
            .collect();
        TreeTraversal {
            layout: Layout::new(geometry, total as u64, 64),
            placement,
            trees,
            nodes_per_tree,
            queries,
            hits: 0,
            hops: 0,
        }
    }

    fn addr_of_node(&self, tree: u32, heap_idx: u32) -> ndpb_dram::DataAddr {
        let slot = self.placement[tree as usize * self.nodes_per_tree + heap_idx as usize];
        self.layout.addr_of(slot as u64)
    }

    /// Tree depth.
    pub fn depth(&self) -> u32 {
        (self.nodes_per_tree + 1).trailing_zeros()
    }

    /// Number of trees in the forest.
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// Cross-unit hops taken so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }
}

impl Application for TreeTraversal {
    fn name(&self) -> &str {
        "tree"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        // Every query starts at its tree's root; args = (tree, current
        // node, target node).
        self.queries
            .iter()
            .map(|&(tree, target)| {
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    self.addr_of_node(tree, 0),
                    CYCLES_PER_NODE as u32,
                    TaskArgs::from_slice(&[tree as u64, 0, target as u64]),
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let tree = task.args.get(0) as u32;
        let cur = task.args.get(1) as u32;
        let target = task.args.get(2) as u32;
        ctx.compute(CYCLES_PER_NODE);
        ctx.read(task.data, NODE_BYTES);
        if cur == target {
            self.hits += 1;
            return;
        }
        // Descend toward `target`: find the child of `cur` on the
        // ancestor chain of `target` (repeated (i-1)/2 halving).
        let mut probe = target;
        let mut next = target;
        while probe != cur {
            next = probe;
            if probe == 0 {
                break;
            }
            probe = (probe - 1) / 2;
        }
        if probe != cur || next as usize >= self.nodes_per_tree {
            return; // not under cur — terminated miss
        }
        self.hops += 1;
        ctx.enqueue_task(
            TaskFnId(0),
            task.ts,
            self.addr_of_node(tree, next),
            CYCLES_PER_NODE as u32,
            TaskArgs::from_slice(&[tree as u64, next as u64, target as u64]),
        );
    }

    fn checksum(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;

    #[test]
    fn every_query_eventually_hits() {
        let g = Geometry::with_total_ranks(1);
        let mut app = TreeTraversal::new(&g, Scale::Tiny, 7);
        let mut frontier = app.initial_tasks();
        let total = frontier.len() as u64;
        let mut steps = 0u64;
        while let Some(t) = frontier.pop() {
            let mut ctx = ExecCtx::new(UnitId(0));
            app.execute(&t, &mut ctx);
            frontier.extend(ctx.into_spawned());
            steps += 1;
            assert!(steps < 10_000_000, "runaway traversal");
        }
        assert_eq!(
            app.checksum(),
            total,
            "every query must terminate at its node"
        );
        assert!(app.hops() > total, "queries must descend multiple levels");
    }

    #[test]
    fn paths_cross_units() {
        let g = Geometry::table1();
        let mut app = TreeTraversal::new(&g, Scale::Tiny, 7);
        let tasks = app.initial_tasks();
        let mut crossings = 0;
        let mut total = 0;
        for t0 in tasks.iter().take(100) {
            let mut ctx = ExecCtx::new(UnitId(0));
            let first_unit = app.layout.unit_of(app.layout.element_of(t0.data));
            app.execute(t0, &mut ctx);
            if let Some(child) = ctx.spawned().first() {
                total += 1;
                let next_unit = app.layout.unit_of(app.layout.element_of(child.data));
                if next_unit != first_unit {
                    crossings += 1;
                }
            }
        }
        assert!(
            crossings * 10 > total * 8,
            "{crossings}/{total} hops cross units"
        );
    }

    #[test]
    fn queries_are_skewed_across_trees() {
        let g = Geometry::table1();
        let app = TreeTraversal::new(&g, Scale::Tiny, 7);
        let mut counts = vec![0u32; app.trees()];
        for &(t, _) in &app.queries {
            counts[t as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = app.queries.len() as u32 / app.trees() as u32;
        assert!(max > 10 * avg.max(1), "max {max} vs avg {avg}");
    }

    #[test]
    fn depth_is_logarithmic() {
        let g = Geometry::with_total_ranks(1);
        let app = TreeTraversal::new(&g, Scale::Tiny, 7);
        assert!(app.depth() >= 9, "depth {}", app.depth());
    }

    #[test]
    fn deterministic() {
        let g = Geometry::table1();
        let mut a = TreeTraversal::new(&g, Scale::Tiny, 7);
        let mut b = TreeTraversal::new(&g, Scale::Tiny, 7);
        assert_eq!(a.initial_tasks(), b.initial_tasks());
    }
}
