//! Breadth-first search (`bfs`), level-synchronous push-based.
//!
//! Each timestamp is one BFS level: a visited vertex pushes tasks to
//! all its neighbors at `ts+1`. Tasks on already-visited vertices are
//! cheap no-ops (the cost of the push model). R-MAT hubs make both the
//! communication and the per-unit load highly skewed.

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Graph, Layout, Scale};

/// Cycles of fixed per-task work (visited check, level update).
const BASE_CYCLES: u64 = 20;
/// Cycles per pushed edge.
const CYCLES_PER_EDGE: u64 = 4;
/// Vertex record bytes.
const VERTEX_BYTES: u32 = 16;

/// The `bfs` workload.
#[derive(Debug)]
pub struct Bfs {
    graph: Graph,
    layout: Layout,
    level: Vec<u32>,
    source: u32,
}

impl Bfs {
    /// Builds an R-MAT graph and roots the search at its max-degree
    /// vertex (guaranteeing a large traversal).
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        let n = 1usize << s.graph_scale;
        let graph = Graph::rmat_with_locality(s.graph_scale, n * s.edge_factor, 0.4, seed);
        let source = (0..n as u32)
            .max_by_key(|&v| graph.degree(v))
            .expect("non-empty graph");
        Bfs {
            layout: Layout::new(geometry, n as u64, 64),
            level: vec![u32::MAX; n],
            graph,
            source,
        }
    }

    /// Vertices reached so far.
    pub fn visited(&self) -> usize {
        self.level.iter().filter(|&&l| l != u32::MAX).count()
    }
}

impl Application for Bfs {
    fn name(&self) -> &str {
        "bfs"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        vec![Task::new(
            TaskFnId(0),
            Timestamp(0),
            self.layout.addr_of(self.source as u64),
            (BASE_CYCLES + self.graph.degree(self.source) as u64 * CYCLES_PER_EDGE) as u32,
            TaskArgs::one(self.source as u64),
        )]
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        let v = task.args.get(0) as u32;
        ctx.compute(BASE_CYCLES);
        ctx.read(task.data, VERTEX_BYTES);
        if self.level[v as usize] <= task.ts.0 {
            return; // already visited at an earlier or equal level
        }
        self.level[v as usize] = task.ts.0;
        ctx.write(task.data, 8);
        let deg = self.graph.degree(v) as u64;
        ctx.compute(deg * CYCLES_PER_EDGE);
        ctx.read(task.data, (deg as u32 * 4).min(4096));
        for &u in self.graph.neighbors(v) {
            // Push to every neighbor: a unit cannot see another unit's
            // visited bits, so duplicate pushes are part of the model.
            ctx.enqueue_task(
                TaskFnId(0),
                task.ts.next(),
                self.layout.addr_of(u as u64),
                (BASE_CYCLES + self.graph.degree(u) as u64 * CYCLES_PER_EDGE) as u32,
                TaskArgs::one(u as u64),
            );
        }
    }

    fn checksum(&self) -> u64 {
        self.level
            .iter()
            .filter(|&&l| l != u32::MAX)
            .map(|&l| l as u64 + 1)
            .sum()
    }

    // Within one epoch every task for vertex `v` is identical (same ts,
    // same args): exactly one takes the visit branch and all spawn the
    // same children with the same costs, whichever order they run in.
    fn parallel_commutes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;

    fn run_serial(app: &mut Bfs) {
        // Serially drain the task graph with a strict epoch barrier.
        let mut current = app.initial_tasks();
        let mut next: Vec<Task> = Vec::new();
        while !current.is_empty() {
            for t in current.drain(..) {
                let mut ctx = ExecCtx::new(UnitId(0));
                app.execute(&t, &mut ctx);
                next.extend(ctx.into_spawned());
            }
            std::mem::swap(&mut current, &mut next);
        }
    }

    #[test]
    fn reaches_most_of_the_giant_component() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Bfs::new(&g, Scale::Tiny, 3);
        run_serial(&mut app);
        let n = app.graph.vertices();
        assert!(app.visited() > n / 4, "visited {} of {n}", app.visited());
        assert!(app.checksum() > 0);
    }

    #[test]
    fn source_is_level_zero() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Bfs::new(&g, Scale::Tiny, 3);
        run_serial(&mut app);
        assert_eq!(app.level[app.source as usize], 0);
    }

    #[test]
    fn levels_are_consistent_with_edges() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Bfs::new(&g, Scale::Tiny, 3);
        run_serial(&mut app);
        // For every edge (v,u) with v visited, level[u] <= level[v]+1.
        for v in 0..app.graph.vertices() as u32 {
            let lv = app.level[v as usize];
            if lv == u32::MAX {
                continue;
            }
            for &u in app.graph.neighbors(v) {
                assert!(
                    app.level[u as usize] <= lv + 1,
                    "edge ({v},{u}) violates BFS levels"
                );
            }
        }
    }
}
