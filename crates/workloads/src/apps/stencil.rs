//! 2-D stencil smoothing (`stencil`) — the paper's Section IV example
//! of supporting tasks that *read* multiple data elements in a pure
//! push model: "(1) each pixel pushes its current value (by invoking
//! tasks) to all its neighbors; (2) each pixel uses the received
//! values to update its own value."
//!
//! Not part of the paper's evaluated eight; included as a programming-
//! model demonstration and as a low-skew control workload (a uniform
//! grid has neither degree skew nor query skew, so load balancing
//! should find little to do).

use ndpb_dram::Geometry;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

use crate::apps::Sizes;
use crate::{Layout, Scale};

/// Cycles for a pixel's push step.
const PUSH_CYCLES: u64 = 16;
/// Cycles to accumulate one received value.
const ACC_CYCLES: u64 = 6;
/// Fixed-point scale for pixel values.
const SCALE_1: u64 = 1 << 16;

const FN_PUSH: TaskFnId = TaskFnId(0);
const FN_RECV: TaskFnId = TaskFnId(1);

/// The `stencil` workload: a `side × side` grid smoothed for
/// `iterations` rounds with a 4-point (von Neumann) stencil.
#[derive(Debug)]
pub struct Stencil {
    layout: Layout,
    side: usize,
    value: Vec<u64>,
    acc: Vec<u64>,
    acc_count: Vec<u32>,
    iterations: u32,
}

impl Stencil {
    /// Builds the grid with a deterministic initial pattern.
    pub fn new(geometry: &Geometry, scale: Scale, seed: u64) -> Self {
        let s = Sizes::of(scale);
        // Grid sized like the pr graphs.
        let side = 1usize << (s.pr_scale / 2 + 2);
        let n = side * side;
        let value: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 1).wrapping_mul(0x9E37_79B9)) % SCALE_1)
            .collect();
        Stencil {
            layout: Layout::new(geometry, n as u64, 16),
            side,
            value,
            acc: vec![0; n],
            acc_count: vec![0; n],
            iterations: s.pr_iters,
        }
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    fn neighbors(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        let side = self.side;
        let (x, y) = (p % side, p / side);
        [
            (x > 0).then(|| p - 1),
            (x + 1 < side).then(|| p + 1),
            (y > 0).then(|| p - side),
            (y + 1 < side).then(|| p + side),
        ]
        .into_iter()
        .flatten()
    }
}

impl Application for Stencil {
    fn name(&self) -> &str {
        "stencil"
    }

    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..(self.side * self.side) as u64)
            .map(|p| {
                Task::new(
                    FN_PUSH,
                    Timestamp(0),
                    self.layout.addr_of(p),
                    (PUSH_CYCLES + 4 * ACC_CYCLES) as u32,
                    TaskArgs::one(p),
                )
            })
            .collect()
    }

    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        match task.func {
            FN_PUSH => {
                let p = task.args.get(0) as usize;
                let iter = task.ts.0 / 2;
                ctx.compute(PUSH_CYCLES);
                ctx.read(task.data, 8);
                if iter > 0 {
                    // Apply the previous round's accumulation first.
                    if self.acc_count[p] > 0 {
                        self.value[p] = self.acc[p] / self.acc_count[p] as u64;
                        self.acc[p] = 0;
                        self.acc_count[p] = 0;
                        ctx.write(task.data, 8);
                    }
                }
                let val = self.value[p];
                let neighbors: Vec<usize> = self.neighbors(p).collect();
                for &q in &neighbors {
                    ctx.enqueue_task(
                        FN_RECV,
                        task.ts.next(),
                        self.layout.addr_of(q as u64),
                        ACC_CYCLES as u32,
                        TaskArgs::two(q as u64, val),
                    );
                }
                if iter < self.iterations {
                    ctx.enqueue_task(
                        FN_PUSH,
                        Timestamp(task.ts.0 + 2),
                        task.data,
                        (PUSH_CYCLES + 4 * ACC_CYCLES) as u32,
                        TaskArgs::one(p as u64),
                    );
                }
            }
            _ => {
                let q = task.args.get(0) as usize;
                ctx.compute(ACC_CYCLES);
                ctx.read(task.data, 8);
                ctx.write(task.data, 8);
                self.acc[q] += task.args.get(1);
                self.acc_count[q] += 1;
            }
        }
    }

    fn checksum(&self) -> u64 {
        self.value.iter().fold(0u64, |a, &v| a.wrapping_add(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::UnitId;
    use ndpb_sim::SimRng;
    use std::collections::BTreeMap;

    fn run_serial(app: &mut Stencil, shuffle: Option<u64>) {
        let mut by_ts: BTreeMap<u32, Vec<Task>> = BTreeMap::new();
        for t in app.initial_tasks() {
            by_ts.entry(t.ts.0).or_default().push(t);
        }
        let mut rng = shuffle.map(SimRng::new);
        while let Some((&ts, _)) = by_ts.iter().next() {
            let mut tasks = by_ts.remove(&ts).expect("exists");
            if let Some(r) = rng.as_mut() {
                r.shuffle(&mut tasks);
            }
            for t in tasks {
                let mut ctx = ExecCtx::new(UnitId(0));
                app.execute(&t, &mut ctx);
                for c in ctx.into_spawned() {
                    by_ts.entry(c.ts.0).or_default().push(c);
                }
            }
        }
    }

    #[test]
    fn smoothing_contracts_the_range() {
        let g = Geometry::with_total_ranks(1);
        let mut app = Stencil::new(&g, Scale::Tiny, 3);
        let before_spread = {
            let max = *app.value.iter().max().unwrap();
            let min = *app.value.iter().min().unwrap();
            max - min
        };
        run_serial(&mut app, None);
        let after_spread = {
            // Interior pixels only (edges have fewer neighbors).
            let side = app.side();
            let interior: Vec<u64> = (0..app.value.len())
                .filter(|&p| {
                    let (x, y) = (p % side, p / side);
                    x > 0 && y > 0 && x + 1 < side && y + 1 < side
                })
                .map(|p| app.value[p])
                .collect();
            let max = *interior.iter().max().unwrap();
            let min = *interior.iter().min().unwrap();
            max - min
        };
        assert!(
            after_spread < before_spread,
            "smoothing must contract the value range: {after_spread} vs {before_spread}"
        );
    }

    #[test]
    fn result_is_schedule_independent() {
        let g = Geometry::with_total_ranks(1);
        let mut a = Stencil::new(&g, Scale::Tiny, 3);
        run_serial(&mut a, None);
        let mut b = Stencil::new(&g, Scale::Tiny, 3);
        run_serial(&mut b, Some(42));
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn corner_pixels_have_two_neighbors() {
        let g = Geometry::with_total_ranks(1);
        let app = Stencil::new(&g, Scale::Tiny, 3);
        assert_eq!(app.neighbors(0).count(), 2);
        let side = app.side();
        assert_eq!(app.neighbors(side + 1).count(), 4);
    }
}
