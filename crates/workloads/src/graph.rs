//! Synthetic graphs in CSR form.
//!
//! The paper uses SNAP real-world graphs; offline we generate seeded
//! R-MAT graphs, whose power-law degree distribution reproduces the
//! skew that drives both cross-unit communication and load imbalance,
//! plus uniform (Erdős–Rényi-style) graphs as a low-skew control.

use ndpb_sim::SimRng;

/// A directed graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        Graph { offsets, targets }
    }

    /// R-MAT generator with `edges` directed edges over `2^scale`
    /// vertices. The parameters (a=0.45, b=0.22, c=0.22) give a heavy
    /// power-law degree tail whose *top* vertex holds ~0.3-0.5% of all
    /// edges — the regime of the paper's SNAP graphs (e.g. soc-Slashdot
    /// 0.56%, web-Google 0.12%). Graph500's a=0.57 would concentrate
    /// 1-2% of all edges on one vertex, which no 512-unit system (the
    /// paper's included) can balance.
    pub fn rmat(scale: u32, edges: usize, seed: u64) -> Self {
        Self::rmat_with_locality(scale, edges, 0.0, seed)
    }

    /// R-MAT with *community locality*: each edge's target is rewritten
    /// with probability `locality` to land near the source (within a
    /// 1/64th-of-the-graph window). Real SNAP graphs exhibit strong id
    /// locality from their crawl/community structure, which is what
    /// gives RowClone-style intra-chip transfers (and the bridges'
    /// intra-rank short path) something to exploit.
    pub fn rmat_with_locality(scale: u32, edges: usize, locality: f64, seed: u64) -> Self {
        let n = 1usize << scale;
        let mut rng = SimRng::new(seed);
        let (a, b, c) = (0.45, 0.22, 0.22);
        let window = (n / 64).max(2) as u64;
        let mut list = Vec::with_capacity(edges);
        for _ in 0..edges {
            let (mut x0, mut x1) = (0usize, n);
            let (mut y0, mut y1) = (0usize, n);
            while x1 - x0 > 1 {
                let r = rng.next_f64();
                let (right, down) = if r < a {
                    (false, false)
                } else if r < a + b {
                    (true, false)
                } else if r < a + b + c {
                    (false, true)
                } else {
                    (true, true)
                };
                let xm = (x0 + x1) / 2;
                let ym = (y0 + y1) / 2;
                if right {
                    x0 = xm;
                } else {
                    x1 = xm;
                }
                if down {
                    y0 = ym;
                } else {
                    y1 = ym;
                }
            }
            let mut target = y0 as u64;
            if locality > 0.0 && rng.chance(locality) {
                let base = (x0 as u64).saturating_sub(window / 2);
                target = (base + rng.next_below(window)).min(n as u64 - 1);
            }
            list.push((x0 as u32, target as u32));
        }
        Self::from_edges(n, &list)
    }

    /// Uniform random graph: `edges` directed edges over `n` vertices.
    pub fn uniform(n: usize, edges: usize, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let list: Vec<(u32, u32)> = (0..edges)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        Self::from_edges(n, &list)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Maximum out-degree (skew diagnostic).
    pub fn max_degree(&self) -> usize {
        (0..self.vertices())
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_csr() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn rmat_has_requested_size() {
        let g = Graph::rmat(10, 8192, 1);
        assert_eq!(g.vertices(), 1024);
        assert_eq!(g.edges(), 8192);
    }

    #[test]
    fn rmat_is_skewed_vs_uniform() {
        let r = Graph::rmat(12, 40_000, 2);
        let u = Graph::uniform(4096, 40_000, 2);
        assert!(
            r.max_degree() > 4 * u.max_degree(),
            "rmat max {} vs uniform max {}",
            r.max_degree(),
            u.max_degree()
        );
    }

    #[test]
    fn uniform_targets_in_range() {
        let g = Graph::uniform(100, 1000, 3);
        for v in 0..100u32 {
            for &t in g.neighbors(v) {
                assert!((t as usize) < 100);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Graph::rmat(8, 1000, 7);
        let b = Graph::rmat(8, 1000, 7);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.offsets, b.offsets);
    }

    #[test]
    fn degrees_sum_to_edges() {
        let g = Graph::rmat(9, 5000, 11);
        let sum: usize = (0..g.vertices()).map(|v| g.degree(v as u32)).sum();
        assert_eq!(sum, g.edges());
    }
}
