//! Zipfian sampling (the paper generates `ll`/`ht`/`tree` data and
//! queries following a Zipfian distribution [91]).
//!
//! Implements the classic Gray et al. / YCSB rejection-free inverse-CDF
//! approximation, deterministic given the [`SimRng`] stream.

use ndpb_sim::SimRng;

/// A Zipfian generator over `[0, n)` with skew parameter `theta`
/// (0 ⇒ uniform; YCSB's default 0.99 ⇒ heavily skewed).
///
/// # Example
///
/// ```
/// use ndpb_workloads::Zipfian;
/// use ndpb_sim::SimRng;
/// let z = Zipfian::new(1000, 0.99);
/// let mut rng = SimRng::new(7);
/// let x = z.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct sum for small n; integral approximation beyond.
    const EXACT: u64 = 100_000;
    let exact_n = n.min(EXACT);
    let mut sum = 0.0;
    for i in 1..=exact_n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > EXACT {
        // ∫ x^-theta dx from EXACT to n.
        let a = 1.0 - theta;
        sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
    }
    sum
}

impl Zipfian {
    /// Creates a generator over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be positive");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws one sample; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// `zeta(2)` (exposed for tests of the approximation).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zero_theta_is_uniform() {
        let z = Zipfian::new(10, 0.0);
        let mut rng = SimRng::new(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{c}");
        }
    }

    #[test]
    fn high_theta_is_skewed() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = SimRng::new(3);
        let mut head = 0u32;
        const N: u32 = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 10k items draw a large share.
        assert!(head > N / 5, "top-10 items got only {head} of {N} samples");
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipfian::new(1000, 0.9);
        let mut rng = SimRng::new(4);
        let mut c0 = 0u32;
        let mut c500 = 0u32;
        for _ in 0..100_000 {
            match z.sample(&mut rng) {
                0 => c0 += 1,
                500 => c500 += 1,
                _ => {}
            }
        }
        assert!(c0 > 10 * c500.max(1), "c0={c0} c500={c500}");
    }

    #[test]
    fn deterministic() {
        let z = Zipfian::new(100, 0.5);
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn large_population_zeta_approximation() {
        // The approximate zeta must stay close to the true direct sum.
        let direct = zeta(100_000, 0.99);
        let z = Zipfian::new(10_000_000, 0.99);
        assert!(z.zetan > direct, "zeta must grow with n");
        assert!(z.zetan < direct * 3.0, "approximation blew up");
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        Zipfian::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn bad_theta_panics() {
        Zipfian::new(10, 1.0);
    }
}
