//! Data layout: mapping application elements onto the NDP data space.
//!
//! The paper assumes UPMEM-style coarse interleaving: each unit's
//! elements are contiguous in its local bank (Section II-B). A
//! [`Layout`] distributes `count` fixed-size elements across all units
//! and converts element ids to [`DataAddr`]s and back.

use ndpb_dram::{DataAddr, Geometry, UnitId};

/// Maps element ids to addresses and owning units.
///
/// # Example
///
/// ```
/// use ndpb_workloads::Layout;
/// use ndpb_dram::Geometry;
/// let g = Geometry::table1();
/// let l = Layout::new(&g, 1024, 64);
/// let a = l.addr_of(3);
/// assert_eq!(l.element_of(a), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    units: u64,
    per_unit: u64,
    elem_bytes: u64,
    bank_bytes: u64,
}

impl Layout {
    /// Distributes `count` elements of `elem_bytes` each, block-
    /// partitioned: unit 0 gets elements `0..per_unit`, unit 1 the
    /// next range, and so on.
    ///
    /// # Panics
    ///
    /// Panics if the elements do not fit in the banks, or if
    /// `elem_bytes` is zero or `count` is zero.
    pub fn new(geometry: &Geometry, count: u64, elem_bytes: u64) -> Self {
        assert!(count > 0 && elem_bytes > 0);
        let units = geometry.total_units() as u64;
        let per_unit = count.div_ceil(units);
        assert!(
            per_unit * elem_bytes <= geometry.bank_bytes / 2,
            "elements must leave room for mailbox/borrow regions"
        );
        Layout {
            units,
            per_unit,
            elem_bytes,
            bank_bytes: geometry.bank_bytes,
        }
    }

    /// Number of elements stored per unit (last unit may be padded).
    pub fn per_unit(&self) -> u64 {
        self.per_unit
    }

    /// The unit owning element `e`.
    pub fn unit_of(&self, e: u64) -> UnitId {
        UnitId(((e / self.per_unit) % self.units) as u32)
    }

    /// The address of element `e`.
    pub fn addr_of(&self, e: u64) -> DataAddr {
        let unit = (e / self.per_unit) % self.units;
        let slot = e % self.per_unit;
        DataAddr(unit * self.bank_bytes + slot * self.elem_bytes)
    }

    /// Inverse of [`Layout::addr_of`].
    pub fn element_of(&self, addr: DataAddr) -> u64 {
        let unit = addr.0 / self.bank_bytes;
        let slot = (addr.0 % self.bank_bytes) / self.elem_bytes;
        unit * self.per_unit + slot
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let g = Geometry::table1();
        let l = Layout::new(&g, 100_000, 32);
        for e in [0u64, 1, 999, 50_000, 99_999] {
            assert_eq!(l.element_of(l.addr_of(e)), e);
        }
    }

    #[test]
    fn contiguous_per_unit() {
        let g = Geometry::table1();
        let l = Layout::new(&g, 512 * 10, 64);
        assert_eq!(l.per_unit(), 10);
        // Elements 0..10 on unit 0, 10..20 on unit 1.
        assert_eq!(l.unit_of(9), UnitId(0));
        assert_eq!(l.unit_of(10), UnitId(1));
        // Consecutive elements of one unit are adjacent in the bank.
        assert_eq!(l.addr_of(1).0 - l.addr_of(0).0, 64);
    }

    #[test]
    fn small_counts_still_work() {
        let g = Geometry::table1();
        let l = Layout::new(&g, 3, 64);
        assert_eq!(l.per_unit(), 1);
        assert_eq!(l.unit_of(0), UnitId(0));
        assert_eq!(l.unit_of(2), UnitId(2));
    }

    #[test]
    #[should_panic(expected = "must leave room")]
    fn oversize_panics() {
        let g = Geometry::table1();
        // 64 MB banks; ask for 64 MB of elements per unit.
        Layout::new(&g, 512 * 1024 * 1024, 64);
    }
}
