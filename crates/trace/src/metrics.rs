//! Hierarchical metrics registry with per-epoch snapshotting.
//!
//! Replaces the loose aggregate fields (`comm_dram_bytes`,
//! `msgs_delivered`, …) that used to live directly on `System`.
//! Components register named counters once (names are `/`-separated
//! paths like `bridge/bytes_gathered`), update them by [`MetricId`]
//! (an index — no hashing on the hot path), and the system snapshots
//! the whole table at every epoch barrier, yielding a time series
//! instead of a single end-of-run total.

use ndpb_sim::SimTime;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Cheap handle to a registered metric: an index into the registry's
/// value table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// A named table of `u64` counters/gauges plus the snapshots taken so
/// far.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    names: Vec<String>,
    values: Vec<u64>,
    snapshots: Vec<MetricsSnapshot>,
}

/// The value table captured at one instant (values are absolute, not
/// deltas — consumers diff adjacent snapshots for rates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Why the snapshot was taken (e.g. `epoch-3`, `final`).
    pub label: String,
    /// Simulated time of the capture, in ticks.
    pub at_ticks: u64,
    /// One value per registered metric, in registration order.
    pub values: Vec<u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a metric by its `/`-separated path and
    /// return its id. Registering the same path twice returns the same
    /// id, so independent components can share a counter.
    pub fn register(&mut self, path: &str) -> MetricId {
        if let Some(i) = self.names.iter().position(|n| n == path) {
            return MetricId(i);
        }
        self.names.push(path.to_string());
        self.values.push(0);
        MetricId(self.names.len() - 1)
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        self.values[id.0] += delta;
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: MetricId) {
        self.values[id.0] += 1;
    }

    /// Overwrite a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, value: u64) {
        self.values[id.0] = value;
    }

    /// Current value.
    pub fn get(&self, id: MetricId) -> u64 {
        self.values[id.0]
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Capture the current value table as a labelled snapshot.
    pub fn snapshot(&mut self, label: impl Into<String>, at: SimTime) {
        self.snapshots.push(MetricsSnapshot {
            label: label.into(),
            at_ticks: at.ticks(),
            values: self.values.clone(),
        });
    }

    /// Consume the registry into an immutable report for `RunResult`.
    pub fn into_report(self) -> MetricsReport {
        MetricsReport {
            names: self.names,
            snapshots: self.snapshots,
        }
    }
}

/// A [`MetricsRegistry`] shareable across threads.
///
/// Simulations stay single-threaded and keep their registry by value,
/// but the *sweep engine* runs many simulations concurrently and its
/// workers all report into one table (per-worker progress gauges, cache
/// hit/miss counters). A mutex — not atomics — keeps the full registry
/// API (registration, snapshots) available; sweep-level updates happen
/// per *simulation*, not per event, so contention is negligible.
///
/// Cloning is shallow: clones observe and update the same table.
#[derive(Debug, Clone, Default)]
pub struct SharedMetrics {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl SharedMetrics {
    /// A fresh, empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        // A poisoned lock means a worker panicked mid-update; counters
        // are plain u64s, so the table is still coherent to read.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or look up) a metric path. See
    /// [`MetricsRegistry::register`].
    pub fn register(&self, path: &str) -> MetricId {
        self.lock().register(path)
    }

    /// Add `delta` to a counter.
    pub fn add(&self, id: MetricId, delta: u64) {
        self.lock().add(id, delta);
    }

    /// Increment a counter by one.
    pub fn inc(&self, id: MetricId) {
        self.lock().inc(id);
    }

    /// Overwrite a gauge.
    pub fn set(&self, id: MetricId, value: u64) {
        self.lock().set(id, value);
    }

    /// Current value of a counter.
    pub fn get(&self, id: MetricId) -> u64 {
        self.lock().get(id)
    }

    /// Capture the current table as a labelled snapshot.
    pub fn snapshot(&self, label: impl Into<String>, at: SimTime) {
        self.lock().snapshot(label, at);
    }

    /// A frozen copy of the current state (names + snapshots so far);
    /// the live registry keeps accumulating.
    pub fn report(&self) -> MetricsReport {
        let g = self.lock();
        MetricsReport {
            names: g.names.clone(),
            snapshots: g.snapshots.clone(),
        }
    }

    /// Like [`report`](Self::report), but with the *current* value
    /// table appended as a trailing pseudo-snapshot labelled `live`.
    /// The live registry is not mutated — repeated calls do not grow
    /// its snapshot list the way calling [`snapshot`](Self::snapshot)
    /// before every report would. This is what a long-running service's
    /// metrics endpoint wants: `final_value` on the returned report
    /// always reflects the instant of the call.
    pub fn live_report(&self) -> MetricsReport {
        let g = self.lock();
        let mut snapshots = g.snapshots.clone();
        snapshots.push(MetricsSnapshot {
            label: "live".to_string(),
            at_ticks: 0,
            values: g.values.clone(),
        });
        MetricsReport {
            names: g.names.clone(),
            snapshots,
        }
    }
}

/// Frozen output of a [`MetricsRegistry`]: the metric names plus every
/// snapshot taken during the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Metric paths, in registration order (column headers).
    pub names: Vec<String>,
    /// Snapshots in capture order (rows).
    pub snapshots: Vec<MetricsSnapshot>,
}

impl MetricsReport {
    /// Value of `name` in the snapshot with `label`, if both exist.
    pub fn value(&self, label: &str, name: &str) -> Option<u64> {
        let col = self.names.iter().position(|n| n == name)?;
        let snap = self.snapshots.iter().find(|s| s.label == label)?;
        snap.values.get(col).copied()
    }

    /// Value of `name` in the last snapshot, if present.
    pub fn final_value(&self, name: &str) -> Option<u64> {
        let col = self.names.iter().position(|n| n == name)?;
        self.snapshots.last()?.values.get(col).copied()
    }

    /// Metric names under a `/`-separated prefix (hierarchical query).
    pub fn names_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.names.iter().map(String::as_str).filter(move |n| {
            n.strip_prefix(prefix)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
        })
    }

    /// Hand-rolled JSON document:
    /// `{"metrics":[...names],"snapshots":[{"label":..,"t_ticks":..,"values":[..]},..]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"metrics\":[");
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", escape(n));
        }
        s.push_str("],\"snapshots\":[");
        for (i, snap) in self.snapshots.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"label\":\"{}\",\"t_ticks\":{},\"values\":[",
                escape(&snap.label),
                snap.at_ticks
            );
            for (j, v) in snap.values.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

fn escape(s: &str) -> String {
    // Metric paths and labels are generated in-repo from ASCII literals;
    // escape the two characters that could still break the document.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.register("bridge/bytes_gathered");
        let b = m.register("bridge/bytes_gathered");
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn counters_and_snapshots() {
        let mut m = MetricsRegistry::new();
        let a = m.register("system/comm_dram_bytes");
        let b = m.register("system/msgs_delivered");
        m.add(a, 100);
        m.inc(b);
        m.snapshot("epoch-0", SimTime::from_ticks(10));
        m.add(a, 50);
        m.set(b, 7);
        m.snapshot("final", SimTime::from_ticks(20));
        assert_eq!(m.get(a), 150);

        let r = m.into_report();
        assert_eq!(r.value("epoch-0", "system/comm_dram_bytes"), Some(100));
        assert_eq!(r.value("final", "system/comm_dram_bytes"), Some(150));
        assert_eq!(r.value("final", "system/msgs_delivered"), Some(7));
        assert_eq!(r.final_value("system/msgs_delivered"), Some(7));
        assert_eq!(r.value("nope", "system/msgs_delivered"), None);
        assert_eq!(r.value("final", "nope"), None);
    }

    #[test]
    fn hierarchical_prefix_query() {
        let mut m = MetricsRegistry::new();
        m.register("bridge/bytes_gathered");
        m.register("bridge/bytes_scattered");
        m.register("bridgex/other");
        m.register("system/epoch");
        let r = m.into_report();
        let under: Vec<&str> = r.names_under("bridge").collect();
        assert_eq!(
            under,
            vec!["bridge/bytes_gathered", "bridge/bytes_scattered"]
        );
    }

    #[test]
    fn json_shape() {
        let mut m = MetricsRegistry::new();
        let a = m.register("a/b");
        m.add(a, 3);
        m.snapshot("epoch-1", SimTime::from_ticks(42));
        let j = m.into_report().to_json();
        assert_eq!(
            j,
            "{\"metrics\":[\"a/b\"],\"snapshots\":[{\"label\":\"epoch-1\",\"t_ticks\":42,\"values\":[3]}]}"
        );
    }

    #[test]
    fn empty_report_is_valid_json() {
        let j = MetricsReport::default().to_json();
        assert_eq!(j, "{\"metrics\":[],\"snapshots\":[]}");
    }

    #[test]
    fn shared_metrics_accumulate_across_clones_and_threads() {
        let shared = SharedMetrics::new();
        let hits = shared.register("sweep/cache_hits");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.inc(hits);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.get(hits), 400);
        shared.snapshot("final", SimTime::ZERO);
        let r = shared.report();
        assert_eq!(r.final_value("sweep/cache_hits"), Some(400));
        // The live registry keeps going after a report.
        shared.add(hits, 1);
        assert_eq!(shared.get(hits), 401);
        assert_eq!(r.final_value("sweep/cache_hits"), Some(400));
    }

    #[test]
    fn live_report_reflects_now_without_mutating_the_registry() {
        let shared = SharedMetrics::new();
        let hits = shared.register("serve/cache_hits");
        shared.add(hits, 3);
        let live = shared.live_report();
        assert_eq!(live.final_value("serve/cache_hits"), Some(3));
        assert_eq!(live.snapshots.last().unwrap().label, "live");

        // No snapshot was recorded; a plain report is still empty, and
        // a second live report sees the newer value with the same shape.
        assert!(shared.report().snapshots.is_empty());
        shared.inc(hits);
        let again = shared.live_report();
        assert_eq!(again.final_value("serve/cache_hits"), Some(4));
        assert_eq!(again.snapshots.len(), 1);
    }
}
