//! Typed trace events and the components that emit them.

use ndpb_sim::SimTime;

/// Identifies the simulated component a [`TraceRecord`] originated from.
///
/// The variants mirror the physical hierarchy of the modelled machine:
/// per-bank NDP units, the level-1 rank bridges (and the rank-internal
/// data buses they drive), the memory channels, the level-2 host bridge,
/// and the optional DIMM-Link peer-to-peer links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentId {
    /// A per-bank NDP unit (flat unit index across the whole machine).
    Unit(u32),
    /// The level-1 bridge of a rank.
    Bridge(u32),
    /// The level-2 bridge at the host memory controller.
    Host,
    /// The shared data bus inside a rank.
    RankBus(u32),
    /// A host memory channel.
    Channel(u32),
    /// A DIMM-Link peer-to-peer link (extension; rank-pair index).
    Link(u32),
}

impl ComponentId {
    /// Chrome `pid` for this component kind — one "process" row per
    /// hardware layer keeps Perfetto timelines grouped sensibly.
    pub fn pid(self) -> u32 {
        match self {
            ComponentId::Unit(_) => 1,
            ComponentId::Bridge(_) => 2,
            ComponentId::Host => 3,
            ComponentId::RankBus(_) => 4,
            ComponentId::Channel(_) => 5,
            ComponentId::Link(_) => 6,
        }
    }

    /// Chrome `tid` within the [`pid`](Self::pid) row: the component
    /// instance index.
    pub fn tid(self) -> u32 {
        match self {
            ComponentId::Unit(i)
            | ComponentId::Bridge(i)
            | ComponentId::RankBus(i)
            | ComponentId::Channel(i)
            | ComponentId::Link(i) => i,
            ComponentId::Host => 0,
        }
    }

    /// Human-readable name of the component *kind* (used as the Chrome
    /// process name).
    pub fn kind_name(self) -> &'static str {
        match self {
            ComponentId::Unit(_) => "ndp-units",
            ComponentId::Bridge(_) => "rank-bridges",
            ComponentId::Host => "host-bridge",
            ComponentId::RankBus(_) => "rank-buses",
            ComponentId::Channel(_) => "channels",
            ComponentId::Link(_) => "dimm-links",
        }
    }
}

/// What happened. Payload fields carry the quantities a timeline viewer
/// wants to see without cross-referencing other events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A bank row activation (row conflict or cold row); `write` is the
    /// access direction that forced it.
    BankActivate {
        /// Row address that was opened.
        row: u64,
        /// Whether the triggering access was a write.
        write: bool,
    },
    /// An explicit precharge (e.g. around a RowClone copy).
    BankPrecharge,
    /// A reservation on a shared bus (rank bus, channel or link).
    BusTransfer {
        /// Bytes moved by this reservation.
        bytes: u64,
    },
    /// A bridge GATHER burst draining one bank mailbox upward.
    Gather {
        /// Bytes pulled out of the mailbox.
        bytes: u64,
        /// Messages pulled out of the mailbox.
        msgs: u32,
        /// True if the slot was reserved but the mailbox was empty.
        wasted: bool,
    },
    /// A bridge SCATTER burst delivering messages down into a bank.
    Scatter {
        /// Bytes written toward the bank.
        bytes: u64,
        /// Messages delivered.
        msgs: u32,
    },
    /// A STATE-GATHER round harvesting per-bank load state.
    StateGather {
        /// Bytes of state records moved over the bus.
        bytes: u64,
    },
    /// A SCHEDULE decision by the load balancer.
    Schedule {
        /// Workload (weighted cycles) the giver was asked to shed.
        budget: u64,
        /// Number of receiver units in this round.
        receivers: u32,
    },
    /// A message accepted into a bank mailbox.
    MailboxEnqueue {
        /// Wire size of the message.
        bytes: u32,
        /// Ring-buffer occupancy after the enqueue.
        used: u64,
    },
    /// A mailbox rejected an enqueue. Emitted once per contiguous
    /// full episode (latched until space frees), not once per retry.
    MailboxFull {
        /// Wire size of the rejected message.
        needed: u32,
        /// Ring-buffer occupancy at the time of rejection.
        used: u64,
    },
    /// A task executed on an NDP core (duration = execute span).
    TaskExec {
        /// Application function id of the task.
        func: u16,
        /// Abstract workload units the task charged.
        workload: u64,
    },
    /// A data block (plus its tasks) migrated between units.
    Migrate {
        /// Block address being moved.
        block: u64,
        /// Source unit.
        from: u32,
        /// Destination unit.
        to: u32,
        /// Tasks that travelled with the block.
        tasks: u32,
    },
    /// The bulk-synchronous epoch barrier opened for a new epoch.
    EpochAdvance {
        /// The epoch that just became current.
        epoch: u32,
    },
}

impl TraceEvent {
    /// Short stable name used as the Chrome event name.
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::BankActivate { .. } => "bank-activate",
            TraceEvent::BankPrecharge => "bank-precharge",
            TraceEvent::BusTransfer { .. } => "bus-transfer",
            TraceEvent::Gather { .. } => "gather",
            TraceEvent::Scatter { .. } => "scatter",
            TraceEvent::StateGather { .. } => "state-gather",
            TraceEvent::Schedule { .. } => "schedule",
            TraceEvent::MailboxEnqueue { .. } => "mailbox-enqueue",
            TraceEvent::MailboxFull { .. } => "mailbox-full",
            TraceEvent::TaskExec { .. } => "task",
            TraceEvent::Migrate { .. } => "migrate",
            TraceEvent::EpochAdvance { .. } => "epoch",
        }
    }
}

/// One recorded occurrence: an event, where it happened, when, and for
/// how long (`dur` is [`SimTime::ZERO`] for instantaneous events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start time of the event.
    pub at: SimTime,
    /// Duration (zero for instants).
    pub dur: SimTime,
    /// Emitting component.
    pub comp: ComponentId,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// An instantaneous record (zero duration).
    pub fn instant(at: SimTime, comp: ComponentId, event: TraceEvent) -> Self {
        TraceRecord {
            at,
            dur: SimTime::ZERO,
            comp,
            event,
        }
    }

    /// A record spanning `[at, at + dur)`.
    pub fn span(at: SimTime, dur: SimTime, comp: ComponentId, event: TraceEvent) -> Self {
        TraceRecord {
            at,
            dur,
            comp,
            event,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_tid_partition_components() {
        let comps = [
            ComponentId::Unit(3),
            ComponentId::Bridge(3),
            ComponentId::Host,
            ComponentId::RankBus(3),
            ComponentId::Channel(3),
            ComponentId::Link(3),
        ];
        for (i, a) in comps.iter().enumerate() {
            for b in &comps[i + 1..] {
                assert_ne!(a.pid(), b.pid(), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(ComponentId::Unit(7).tid(), 7);
        assert_eq!(ComponentId::Host.tid(), 0);
    }

    #[test]
    fn instant_has_zero_duration() {
        let r = TraceRecord::instant(
            SimTime::from_ticks(5),
            ComponentId::Host,
            TraceEvent::BankPrecharge,
        );
        assert_eq!(r.dur, SimTime::ZERO);
        assert_eq!(r.event.name(), "bank-precharge");
    }
}
