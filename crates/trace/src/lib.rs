//! Structured event tracing and metrics for the NDPBridge simulator.
//!
//! The simulator's original observability was a handful of ad-hoc
//! `Counter`s scattered across components, aggregated once at the end of
//! a run. That answers *how much* but never *when*: you cannot see a
//! mailbox stall ride out a GATHER round, or a SCHEDULE migration land
//! just before an epoch barrier. This crate adds the missing timeline:
//!
//! * [`event`] — typed [`TraceEvent`]s (bank activates, bus transfers,
//!   bridge GATHER/SCATTER/STATE-GATHER/SCHEDULE rounds, mailbox
//!   enqueue/full, task execution, migrations, epoch barriers), each
//!   stamped with a [`SimTime`](ndpb_sim::SimTime) and a [`ComponentId`].
//! * [`sink`] — the [`TraceSink`] trait with a bounded [`RingRecorder`]
//!   and a [`NullSink`]. Hot paths take `Option<&mut dyn TraceSink>`, so
//!   a disabled trace costs exactly one branch per hook.
//! * [`chrome`] — a hand-rolled (serde-free) Chrome `trace_event` JSON
//!   writer; the output opens directly in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//! * [`metrics`] — a hierarchical [`MetricsRegistry`] that supersedes the
//!   loose per-`System` aggregate fields, with per-epoch snapshotting for
//!   time-series output.
//!
//! The crate depends only on `ndpb-sim` (for `SimTime`); no external
//! dependencies, so the workspace builds fully offline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod sink;

pub use chrome::{chrome_trace_string, write_chrome_trace};
pub use event::{ComponentId, TraceEvent, TraceRecord};
pub use metrics::{MetricId, MetricsRegistry, MetricsReport, MetricsSnapshot, SharedMetrics};
pub use sink::{NullSink, RingRecorder, TraceSink};
