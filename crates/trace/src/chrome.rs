//! Hand-rolled Chrome `trace_event` JSON writer.
//!
//! Emits the ["JSON Array Format" with a `traceEvents`
//! envelope](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! understood by `chrome://tracing` and <https://ui.perfetto.dev>. No
//! serde: the schema is small and fixed, so the writer is ~100 lines of
//! `write!` — the same approach as `RunResult::to_json`.
//!
//! Mapping: each [`ComponentId`] kind becomes a Chrome *process*
//! (`pid`, named via `process_name` metadata) and each instance a
//! *thread* (`tid`). Records with a duration become `"X"` complete
//! events; instants become `"i"` events with thread scope. Timestamps
//! are microseconds (simulated), durations likewise.

use crate::event::{TraceEvent, TraceRecord};
use std::io::{self, Write};

/// Serialize `records` as a complete Chrome trace JSON document.
///
/// The document is self-contained (`{"traceEvents":[...]}`), so the
/// output file loads directly in a trace viewer.
pub fn write_chrome_trace<W: Write>(w: &mut W, records: &[TraceRecord]) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;

    // One process_name metadata event per component kind present.
    let mut kinds_seen = [false; 7];
    for r in records {
        let pid = r.comp.pid() as usize;
        if !kinds_seen[pid] {
            kinds_seen[pid] = true;
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid,
                r.comp.kind_name()
            )?;
        }
    }

    for r in records {
        sep(w, &mut first)?;
        write_record(w, r)?;
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

fn sep<W: Write>(w: &mut W, first: &mut bool) -> io::Result<()> {
    if *first {
        *first = false;
        Ok(())
    } else {
        writeln!(w, ",")
    }
}

fn write_record<W: Write>(w: &mut W, r: &TraceRecord) -> io::Result<()> {
    let ts_us = r.at.as_ns() / 1000.0;
    write!(
        w,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{:.4}",
        r.event.name(),
        r.comp.kind_name(),
        r.comp.pid(),
        r.comp.tid(),
        ts_us
    )?;
    if r.dur.ticks() > 0 {
        write!(w, ",\"ph\":\"X\",\"dur\":{:.4}", r.dur.as_ns() / 1000.0)?;
    } else {
        write!(w, ",\"ph\":\"i\",\"s\":\"t\"")?;
    }
    write!(w, ",\"args\":{{")?;
    write_args(w, &r.event)?;
    write!(w, "}}}}")
}

fn write_args<W: Write>(w: &mut W, ev: &TraceEvent) -> io::Result<()> {
    match *ev {
        TraceEvent::BankActivate { row, write } => {
            write!(w, "\"row\":{row},\"write\":{write}")
        }
        TraceEvent::BankPrecharge => Ok(()),
        TraceEvent::BusTransfer { bytes } => write!(w, "\"bytes\":{bytes}"),
        TraceEvent::Gather {
            bytes,
            msgs,
            wasted,
        } => write!(w, "\"bytes\":{bytes},\"msgs\":{msgs},\"wasted\":{wasted}"),
        TraceEvent::Scatter { bytes, msgs } => {
            write!(w, "\"bytes\":{bytes},\"msgs\":{msgs}")
        }
        TraceEvent::StateGather { bytes } => write!(w, "\"bytes\":{bytes}"),
        TraceEvent::Schedule { budget, receivers } => {
            write!(w, "\"budget\":{budget},\"receivers\":{receivers}")
        }
        TraceEvent::MailboxEnqueue { bytes, used } => {
            write!(w, "\"bytes\":{bytes},\"used\":{used}")
        }
        TraceEvent::MailboxFull { needed, used } => {
            write!(w, "\"needed\":{needed},\"used\":{used}")
        }
        TraceEvent::TaskExec { func, workload } => {
            write!(w, "\"func\":{func},\"workload\":{workload}")
        }
        TraceEvent::Migrate {
            block,
            from,
            to,
            tasks,
        } => write!(
            w,
            "\"block\":{block},\"from\":{from},\"to\":{to},\"tasks\":{tasks}"
        ),
        TraceEvent::EpochAdvance { epoch } => write!(w, "\"epoch\":{epoch}"),
    }
}

/// Convenience: serialize to an in-memory `String` (used by tests and
/// small tools; large traces should stream to a file).
pub fn chrome_trace_string(records: &[TraceRecord]) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, records).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("writer emits ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ComponentId;
    use ndpb_sim::SimTime;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::span(
                SimTime::from_ticks(0),
                SimTime::from_ticks(12),
                ComponentId::Bridge(1),
                TraceEvent::Gather {
                    bytes: 256,
                    msgs: 4,
                    wasted: false,
                },
            ),
            TraceRecord::instant(
                SimTime::from_ticks(7),
                ComponentId::Unit(3),
                TraceEvent::MailboxFull {
                    needed: 64,
                    used: 960,
                },
            ),
            TraceRecord::instant(
                SimTime::from_ticks(9),
                ComponentId::Host,
                TraceEvent::EpochAdvance { epoch: 2 },
            ),
        ]
    }

    #[test]
    fn output_has_envelope_and_all_events() {
        let s = chrome_trace_string(&sample());
        assert!(s.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(s.trim_end().ends_with("]}"));
        assert!(s.contains("\"name\":\"gather\""));
        assert!(s.contains("\"name\":\"mailbox-full\""));
        assert!(s.contains("\"name\":\"epoch\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        // One metadata row per kind present (bridge, unit, host).
        assert_eq!(s.matches("process_name").count(), 3);
    }

    #[test]
    fn output_is_structurally_balanced_json() {
        // Without serde, check the invariants a parser relies on:
        // balanced braces/brackets and no trailing comma.
        let s = chrome_trace_string(&sample());
        let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
        let mut in_str = false;
        for c in s.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' if !in_str => depth_obj += 1,
                '}' if !in_str => depth_obj -= 1,
                '[' if !in_str => depth_arr += 1,
                ']' if !in_str => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert_eq!(depth_obj, 0);
        assert_eq!(depth_arr, 0);
        assert!(!in_str);
        assert!(!s.contains(",\n]"));
        assert!(!s.contains(",]"));
        assert!(!s.contains(",}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let s = chrome_trace_string(&[]);
        assert!(s.contains("\"traceEvents\":["));
        assert!(s.trim_end().ends_with("]}"));
    }
}
