//! Trace sinks: where hot-path hooks deposit [`TraceRecord`]s.
//!
//! Hook sites throughout the simulator take `Option<&mut dyn TraceSink>`
//! and pass `None` when tracing is off, so the disabled cost is a single
//! discriminant branch — no virtual call, no allocation.

use crate::event::TraceRecord;
use std::collections::VecDeque;

/// A destination for trace records.
///
/// Implementations must be cheap per [`record`](TraceSink::record) call:
/// the simulator can emit millions of events per run.
///
/// `Send` is a supertrait so a `System` holding a boxed sink stays
/// `Send`: the sweep engine moves whole simulations onto worker
/// threads. Sinks are still driven by exactly one simulation at a time,
/// so `Sync` is not required.
pub trait TraceSink: Send {
    /// Whether this sink actually stores anything. Callers holding a
    /// sink by `&mut dyn` may skip building expensive payloads when this
    /// returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Deposit one record.
    fn record(&mut self, rec: TraceRecord);

    /// Drain everything recorded so far, in arrival order.
    fn take_records(&mut self) -> Vec<TraceRecord>;

    /// How many records were offered but not kept (bounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that discards everything. Exists so APIs that *require* a sink
/// can still run untraced.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: TraceRecord) {}

    fn take_records(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
}

/// A bounded ring-buffer recorder: keeps the **most recent** `capacity`
/// records, counting (not storing) older overflow. Bounded so a traced
/// full-scale run cannot exhaust memory; the end of a run is where the
/// interesting tail (stragglers, final barriers) lives.
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded (or everything drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    fn take_records(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, TraceEvent};
    use ndpb_sim::SimTime;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord::instant(
            SimTime::from_ticks(t),
            ComponentId::Unit(0),
            TraceEvent::BankPrecharge,
        )
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(rec(1));
        assert!(s.take_records().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        assert!(r.enabled());
        for t in 0..10 {
            r.record(rec(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let out = r.take_records();
        let ticks: Vec<u64> = out.iter().map(|x| x.at.ticks()).collect();
        assert_eq!(ticks, vec![7, 8, 9]);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(rec(1));
        r.record(rec(2));
        assert_eq!(r.take_records().len(), 1);
    }
}
