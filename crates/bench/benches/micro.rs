//! Microbenchmarks of the substrate data structures the system is
//! built on: the event queue, RNG, Zipfian sampler, hot-data sketch,
//! mailbox, bank timing model and graph generator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ndpb_dram::{BankModel, Bus, DataAddr, DramTiming};
use ndpb_proto::{Mailbox, Message};
use ndpb_sim::{EventQueue, SimRng, SimTime};
use ndpb_sketch::{HotSketch, SketchConfig};
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
use ndpb_workloads::{Graph, Zipfian};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ticks((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("micro/simrng_1m", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("micro/zipf_100k", |b| {
        let z = Zipfian::new(1 << 20, 0.75);
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc += z.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    c.bench_function("micro/sketch_record_100k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut s = HotSketch::new(SketchConfig::paper());
            for i in 0..100_000u64 {
                s.record(i % 1000, (i % 7) + 1, &mut rng);
            }
            black_box(s.hottest())
        })
    });
}

fn bench_mailbox(c: &mut Criterion) {
    let task = Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY);
    c.bench_function("micro/mailbox_push_drain_10k", |b| {
        b.iter(|| {
            let mut mb = Mailbox::new(1 << 20);
            for _ in 0..10_000 {
                mb.push(Message::Task(task, false)).unwrap();
            }
            let mut n = 0;
            while !mb.is_empty() {
                n += mb.drain_up_to(256).len();
            }
            black_box(n)
        })
    });
}

fn bench_bank(c: &mut Criterion) {
    let timing = DramTiming::ddr4_2400();
    c.bench_function("micro/bank_access_100k", |b| {
        b.iter(|| {
            let mut bank = BankModel::new();
            let mut t = SimTime::ZERO;
            for i in 0..100_000u64 {
                t = bank.access(t, i % 64, 64, i % 3 == 0, &timing).end;
            }
            black_box(t)
        })
    });
}

fn bench_bus(c: &mut Criterion) {
    c.bench_function("micro/bus_reserve_100k", |b| {
        b.iter(|| {
            let mut bus = Bus::new(64);
            let mut t = SimTime::ZERO;
            for _ in 0..100_000 {
                t = bus.reserve(t, 256).end;
            }
            black_box(t)
        })
    });
}

fn bench_rmat(c: &mut Criterion) {
    c.bench_function("micro/rmat_scale12", |b| {
        b.iter(|| black_box(Graph::rmat(12, 32_768, 5)))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets =
        bench_event_queue,
        bench_rng,
        bench_zipf,
        bench_sketch,
        bench_mailbox,
        bench_bank,
        bench_bus,
        bench_rmat
);
criterion_main!(micro);
