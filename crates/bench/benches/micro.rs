//! Microbenchmarks of the substrate data structures the system is
//! built on: the event queue, RNG, Zipfian sampler, hot-data sketch,
//! mailbox, bank timing model, graph generator, and the sweep engine's
//! substrate (FNV fingerprinting, the result-cache codec, the JSON
//! reader).
//!
//! `harness = false` binary using the in-repo `Instant` timer
//! (`ndpb_bench::timing`) so no external bench framework is needed.

use ndpb_bench::timing::bench;
use ndpb_dram::{BankModel, Bus, DataAddr, DramTiming};
use ndpb_proto::{Mailbox, Message};
use ndpb_sim::{EventQueue, SimRng, SimTime};
use ndpb_sketch::{HotSketch, SketchConfig};
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
use ndpb_workloads::{Graph, Zipfian};

const ITERS: u32 = 20;

/// The pre-wheel event queue — a plain `BinaryHeap` with a `(time,
/// seq)` tie-break — kept here as the reference implementation for the
/// head-to-head benches below. Same observable contract as
/// [`EventQueue`], so both sides run identical schedules.
mod heap_queue {
    use ndpb_sim::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-queue via inverted compare, FIFO within a tick.
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
        now: SimTime,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn schedule(&mut self, at: SimTime, event: E) {
            assert!(at >= self.now);
            self.heap.push(Entry {
                at,
                seq: self.seq,
                event,
            });
            self.seq += 1;
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let e = self.heap.pop()?;
            self.now = e.at;
            Some((e.at, e.event))
        }
    }
}

/// Drives `schedule`/`pop` through one workload mix. `offset(rng, i)`
/// yields the delay of the `i`-th event after the queue's `now`; the
/// driver keeps ~1k events in flight (steady-state churn, like the
/// simulator) and then drains.
macro_rules! queue_workload {
    ($q:expr, $offset:expr) => {{
        let mut q = $q;
        let mut rng = SimRng::new(7);
        let mut sum = 0u64;
        for i in 0..50_000u64 {
            let at = SimTime::from_ticks(q.now().ticks() + $offset(&mut rng, i));
            q.schedule(at, i);
            if i >= 1_000 {
                sum += q.pop().expect("queue holds 1k events").1;
            }
        }
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    }};
}

/// Head-to-head: timer-wheel `EventQueue` vs the old `BinaryHeap`
/// queue on the three mixes that matter — near-horizon (bucket tier),
/// far-future (overflow tier), and same-tick bursts (FIFO churn).
fn event_queue_head_to_head() {
    let near = |rng: &mut SimRng, _i: u64| rng.next_below(256);
    bench("micro/evq_wheel_near_horizon_50k", ITERS, || {
        queue_workload!(EventQueue::new(), near)
    });
    bench("micro/evq_heap_near_horizon_50k", ITERS, || {
        queue_workload!(heap_queue::HeapQueue::new(), near)
    });

    let far = |rng: &mut SimRng, _i: u64| 4096 + rng.next_below(3 * 4096);
    bench("micro/evq_wheel_far_future_50k", ITERS, || {
        queue_workload!(EventQueue::new(), far)
    });
    bench("micro/evq_heap_far_future_50k", ITERS, || {
        queue_workload!(heap_queue::HeapQueue::new(), far)
    });

    // Bursts of 64 events on one tick, then jump ahead.
    let same_tick = |rng: &mut SimRng, i: u64| {
        if i.is_multiple_of(64) {
            rng.next_below(32)
        } else {
            0
        }
    };
    bench("micro/evq_wheel_same_tick_50k", ITERS, || {
        queue_workload!(EventQueue::new(), same_tick)
    });
    bench("micro/evq_heap_same_tick_50k", ITERS, || {
        queue_workload!(heap_queue::HeapQueue::new(), same_tick)
    });
}

fn main() {
    event_queue_head_to_head();

    bench("micro/event_queue_10k", ITERS, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_ticks((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    });

    let mut rng = SimRng::new(1);
    bench("micro/simrng_1m", ITERS, || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc ^= rng.next_u64();
        }
        acc
    });

    let z = Zipfian::new(1 << 20, 0.75);
    let mut zrng = SimRng::new(2);
    bench("micro/zipf_100k", ITERS, || {
        let mut acc = 0u64;
        for _ in 0..100_000 {
            acc += z.sample(&mut zrng);
        }
        acc
    });

    let mut srng = SimRng::new(3);
    bench("micro/sketch_record_100k", ITERS, || {
        let mut s = HotSketch::new(SketchConfig::paper());
        for i in 0..100_000u64 {
            s.record(i % 1000, (i % 7) + 1, &mut srng);
        }
        s.hottest()
    });

    let task = Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY);
    bench("micro/mailbox_push_drain_10k", ITERS, || {
        let mut mb = Mailbox::new(1 << 20);
        for _ in 0..10_000 {
            mb.push(Message::Task(task, None)).unwrap();
        }
        let mut n = 0;
        while !mb.is_empty() {
            n += mb.drain_up_to(256).len();
        }
        n
    });

    let timing = DramTiming::ddr4_2400();
    bench("micro/bank_access_100k", ITERS, || {
        let mut bank = BankModel::new();
        let mut t = SimTime::ZERO;
        for i in 0..100_000u64 {
            t = bank.access(t, i % 64, 64, i % 3 == 0, &timing).end;
        }
        t
    });

    bench("micro/bus_reserve_100k", ITERS, || {
        let mut bus = Bus::new(64);
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            t = bus.reserve(t, 256).end;
        }
        t
    });

    bench("micro/rmat_scale12", ITERS, || Graph::rmat(12, 32_768, 5));

    bench("micro/fnv1a_config_fingerprint_1k", ITERS, || {
        let cfg = ndpb_core::config::SystemConfig::table1();
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc ^= cfg.fingerprint();
        }
        acc
    });

    let result = {
        let cfg = ndpb_core::config::SystemConfig::with_geometry(
            ndpb_dram::Geometry::with_total_ranks(1),
        );
        ndpb_bench::run_one(
            "ll",
            ndpb_core::design::DesignPoint::O,
            cfg,
            ndpb_workloads::Scale::Tiny,
        )
    };
    bench("micro/cache_encode_100", ITERS, || {
        let mut bytes = 0usize;
        for _ in 0..100 {
            bytes += ndpb_bench::cache::encode_result(&result).len();
        }
        bytes
    });
    let doc = ndpb_bench::cache::encode_result(&result);
    bench("micro/cache_decode_100", ITERS, || {
        let mut tasks = 0u64;
        for _ in 0..100 {
            tasks += ndpb_bench::cache::decode_result(&doc)
                .expect("valid document")
                .tasks_executed;
        }
        tasks
    });
    bench("micro/json_parse_100", ITERS, || {
        let mut nodes = 0usize;
        for _ in 0..100 {
            let j = ndpb_bench::json::Json::parse(&doc).expect("valid document");
            nodes += j
                .get("per_unit_busy")
                .and_then(|v| v.as_arr())
                .map_or(0, <[_]>::len);
        }
        nodes
    });
}
