//! Microbenchmarks of the substrate data structures the system is
//! built on: the event queue, RNG, Zipfian sampler, hot-data sketch,
//! mailbox, bank timing model, graph generator, and the sweep engine's
//! substrate (FNV fingerprinting, the result-cache codec, the JSON
//! reader).
//!
//! `harness = false` binary using the in-repo `Instant` timer
//! (`ndpb_bench::timing`) so no external bench framework is needed.

use ndpb_bench::timing::bench;
use ndpb_dram::{BankModel, Bus, DataAddr, DramTiming};
use ndpb_proto::{Mailbox, Message};
use ndpb_sim::{EventQueue, SimRng, SimTime};
use ndpb_sketch::{HotSketch, SketchConfig};
use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};
use ndpb_workloads::{Graph, Zipfian};

const ITERS: u32 = 20;

fn main() {
    bench("micro/event_queue_10k", ITERS, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_ticks((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    });

    let mut rng = SimRng::new(1);
    bench("micro/simrng_1m", ITERS, || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc ^= rng.next_u64();
        }
        acc
    });

    let z = Zipfian::new(1 << 20, 0.75);
    let mut zrng = SimRng::new(2);
    bench("micro/zipf_100k", ITERS, || {
        let mut acc = 0u64;
        for _ in 0..100_000 {
            acc += z.sample(&mut zrng);
        }
        acc
    });

    let mut srng = SimRng::new(3);
    bench("micro/sketch_record_100k", ITERS, || {
        let mut s = HotSketch::new(SketchConfig::paper());
        for i in 0..100_000u64 {
            s.record(i % 1000, (i % 7) + 1, &mut srng);
        }
        s.hottest()
    });

    let task = Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY);
    bench("micro/mailbox_push_drain_10k", ITERS, || {
        let mut mb = Mailbox::new(1 << 20);
        for _ in 0..10_000 {
            mb.push(Message::Task(task, None)).unwrap();
        }
        let mut n = 0;
        while !mb.is_empty() {
            n += mb.drain_up_to(256).len();
        }
        n
    });

    let timing = DramTiming::ddr4_2400();
    bench("micro/bank_access_100k", ITERS, || {
        let mut bank = BankModel::new();
        let mut t = SimTime::ZERO;
        for i in 0..100_000u64 {
            t = bank.access(t, i % 64, 64, i % 3 == 0, &timing).end;
        }
        t
    });

    bench("micro/bus_reserve_100k", ITERS, || {
        let mut bus = Bus::new(64);
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            t = bus.reserve(t, 256).end;
        }
        t
    });

    bench("micro/rmat_scale12", ITERS, || Graph::rmat(12, 32_768, 5));

    bench("micro/fnv1a_config_fingerprint_1k", ITERS, || {
        let cfg = ndpb_core::config::SystemConfig::table1();
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc ^= cfg.fingerprint();
        }
        acc
    });

    let result = {
        let cfg = ndpb_core::config::SystemConfig::with_geometry(
            ndpb_dram::Geometry::with_total_ranks(1),
        );
        ndpb_bench::run_one(
            "ll",
            ndpb_core::design::DesignPoint::O,
            cfg,
            ndpb_workloads::Scale::Tiny,
        )
    };
    bench("micro/cache_encode_100", ITERS, || {
        let mut bytes = 0usize;
        for _ in 0..100 {
            bytes += ndpb_bench::cache::encode_result(&result).len();
        }
        bytes
    });
    let doc = ndpb_bench::cache::encode_result(&result);
    bench("micro/cache_decode_100", ITERS, || {
        let mut tasks = 0u64;
        for _ in 0..100 {
            tasks += ndpb_bench::cache::decode_result(&doc)
                .expect("valid document")
                .tasks_executed;
        }
        tasks
    });
    bench("micro/json_parse_100", ITERS, || {
        let mut nodes = 0usize;
        for _ in 0..100 {
            let j = ndpb_bench::json::Json::parse(&doc).expect("valid document");
            nodes += j
                .get("per_unit_busy")
                .and_then(|v| v.as_arr())
                .map_or(0, <[_]>::len);
        }
        nodes
    });
}
