//! Benches regenerating each table/figure of the paper at reduced
//! scale. Each case times one end-to-end simulation that produces the
//! corresponding figure's data point(s); `cargo bench` therefore both
//! exercises the full system and reports how fast the simulator itself
//! runs.
//!
//! `harness = false` binary using the in-repo `Instant` timer
//! (`ndpb_bench::timing`) so no external bench framework is needed.
//!
//! The *paper-scale* numbers come from the `repro` binary
//! (`cargo run --release -p ndpb-bench --bin repro -- all --full`).

use ndpb_bench::timing::bench;
use ndpb_bench::{run_host, run_one};
use ndpb_core::config::{SystemConfig, TriggerPolicy};
use ndpb_core::design::DesignPoint;
use ndpb_dram::Geometry;
use ndpb_sketch::SketchConfig;
use ndpb_workloads::Scale;

const ITERS: u32 = 5;

fn small_system() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 7;
    c
}

fn main() {
    bench("fig2/tree_on_C", ITERS, || {
        run_one("tree", DesignPoint::C, small_system(), Scale::Tiny)
    });

    for design in DesignPoint::table2() {
        bench(&format!("fig10/tree_on_{design}"), ITERS, || {
            run_one("tree", design, small_system(), Scale::Tiny)
        });
        bench(&format!("fig10/spmv_on_{design}"), ITERS, || {
            run_one("spmv", design, small_system(), Scale::Tiny)
        });
    }

    bench("fig11/tree_on_H", ITERS, || {
        run_host("tree", small_system(), Scale::Tiny)
    });
    bench("fig11/tree_on_R", ITERS, || {
        run_one("tree", DesignPoint::R, small_system(), Scale::Tiny)
    });

    for ranks in [1u32, 4] {
        bench(&format!("fig12/pr_O_{}_units", ranks * 64), ITERS, || {
            let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(ranks));
            cfg.seed = 7;
            run_one("pr", DesignPoint::O, cfg, Scale::Tiny)
        });
    }

    // Energy is computed by the same run; bench the accounting-heavy
    // design point end to end.
    bench("fig13/wcc_on_O_energy", ITERS, || {
        let r = run_one("wcc", DesignPoint::O, small_system(), Scale::Tiny);
        assert!(r.energy.total_pj() > 0.0);
        r
    });

    for design in [DesignPoint::WAdv, DesignPoint::WFine, DesignPoint::WHot] {
        bench(&format!("fig14a/spmv_on_{design}"), ITERS, || {
            run_one("spmv", design, small_system(), Scale::Tiny)
        });
    }

    for (name, pol) in [
        ("dynamic", TriggerPolicy::Dynamic),
        ("fixed_imin", TriggerPolicy::FixedIMin),
        ("fixed_2imin", TriggerPolicy::Fixed2IMin),
    ] {
        bench(&format!("fig14b/tree_{name}"), ITERS, || {
            let mut cfg = small_system();
            cfg.trigger = pol;
            run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
        });
    }

    for dq in [4u32, 8, 16] {
        bench(&format!("fig15/tree_O_x{dq}"), ITERS, || {
            let mut cfg = SystemConfig::with_geometry(Geometry::with_dq_bits(dq));
            cfg.seed = 7;
            run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
        });
    }

    for gx in [64u32, 256, 1024] {
        bench(&format!("fig16/spmv_O_gxfer_{gx}"), ITERS, || {
            let mut cfg = small_system();
            cfg.g_xfer = gx;
            run_one("spmv", DesignPoint::O, cfg, Scale::Tiny)
        });
    }
    for i_state in [500u64, 2000, 8000] {
        bench(&format!("fig16/ll_O_istate_{i_state}"), ITERS, || {
            let mut cfg = small_system();
            cfg.i_state_cycles = i_state;
            run_one("ll", DesignPoint::O, cfg, Scale::Tiny)
        });
    }
    for (bk, en) in [(4usize, 16usize), (16, 16), (16, 4)] {
        bench(&format!("fig16/ll_O_sketch_{bk}x{en}"), ITERS, || {
            let mut cfg = small_system();
            cfg.sketch = SketchConfig::with_geometry(bk, en);
            run_one("ll", DesignPoint::O, cfg, Scale::Tiny)
        });
    }

    bench("splitdimm/tree_O", ITERS, || {
        let mut cfg = SystemConfig::with_geometry(Geometry::split_dimm_buffer());
        cfg.seed = 7;
        run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
    });
}
