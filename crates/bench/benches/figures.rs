//! Benches regenerating each table/figure of the paper at reduced
//! scale. Each case times one end-to-end simulation that produces the
//! corresponding figure's data point(s); `cargo bench` therefore both
//! exercises the full system and reports how fast the simulator itself
//! runs.
//!
//! `harness = false` binary using the in-repo `Instant` timer
//! (`ndpb_bench::timing`) so no external bench framework is needed.
//!
//! Every case routes through the same [`Sweeper`] the `repro` harness
//! uses — a single-worker, cache-less engine, so the timings measure
//! one simulation through the production sweep path with no disk I/O
//! or cross-point parallelism muddying them.
//!
//! The *paper-scale* numbers come from the `repro` binary
//! (`cargo run --release --bin repro -- all --full`).

use ndpb_bench::timing::bench;
use ndpb_bench::{Column, SweepPoint, Sweeper};
use ndpb_core::config::{SystemConfig, TriggerPolicy};
use ndpb_core::design::DesignPoint;
use ndpb_core::RunResult;
use ndpb_dram::Geometry;
use ndpb_sketch::SketchConfig;
use ndpb_workloads::Scale;

const ITERS: u32 = 5;

fn small_system() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 7;
    c
}

fn main() {
    let sweeper = Sweeper::new(1);
    let run = |app: &str, column: Column, cfg: SystemConfig| -> RunResult {
        sweeper
            .run(vec![SweepPoint::new(app, column, cfg, Scale::Tiny)])
            .pop()
            .expect("one point in, one result out")
    };
    let ndp = |app: &str, d: DesignPoint, cfg: SystemConfig| run(app, Column::Ndp(d), cfg);

    bench("fig2/tree_on_C", ITERS, || {
        ndp("tree", DesignPoint::C, small_system())
    });

    for design in DesignPoint::table2() {
        bench(&format!("fig10/tree_on_{design}"), ITERS, || {
            ndp("tree", design, small_system())
        });
        bench(&format!("fig10/spmv_on_{design}"), ITERS, || {
            ndp("spmv", design, small_system())
        });
    }

    bench("fig11/tree_on_H", ITERS, || {
        run("tree", Column::Host, small_system())
    });
    bench("fig11/tree_on_R", ITERS, || {
        ndp("tree", DesignPoint::R, small_system())
    });

    for ranks in [1u32, 4] {
        bench(&format!("fig12/pr_O_{}_units", ranks * 64), ITERS, || {
            let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(ranks));
            cfg.seed = 7;
            ndp("pr", DesignPoint::O, cfg)
        });
    }

    // Energy is computed by the same run; bench the accounting-heavy
    // design point end to end.
    bench("fig13/wcc_on_O_energy", ITERS, || {
        let r = ndp("wcc", DesignPoint::O, small_system());
        assert!(r.energy.total_pj() > 0.0);
        r
    });

    for design in [DesignPoint::WAdv, DesignPoint::WFine, DesignPoint::WHot] {
        bench(&format!("fig14a/spmv_on_{design}"), ITERS, || {
            ndp("spmv", design, small_system())
        });
    }

    for (name, pol) in [
        ("dynamic", TriggerPolicy::Dynamic),
        ("fixed_imin", TriggerPolicy::FixedIMin),
        ("fixed_2imin", TriggerPolicy::Fixed2IMin),
    ] {
        bench(&format!("fig14b/tree_{name}"), ITERS, || {
            let mut cfg = small_system();
            cfg.trigger = pol;
            ndp("tree", DesignPoint::O, cfg)
        });
    }

    for dq in [4u32, 8, 16] {
        bench(&format!("fig15/tree_O_x{dq}"), ITERS, || {
            let mut cfg = SystemConfig::with_geometry(Geometry::with_dq_bits(dq));
            cfg.seed = 7;
            ndp("tree", DesignPoint::O, cfg)
        });
    }

    for gx in [64u32, 256, 1024] {
        bench(&format!("fig16/spmv_O_gxfer_{gx}"), ITERS, || {
            let mut cfg = small_system();
            cfg.g_xfer = gx;
            ndp("spmv", DesignPoint::O, cfg)
        });
    }
    for i_state in [500u64, 2000, 8000] {
        bench(&format!("fig16/ll_O_istate_{i_state}"), ITERS, || {
            let mut cfg = small_system();
            cfg.i_state_cycles = i_state;
            ndp("ll", DesignPoint::O, cfg)
        });
    }
    for (bk, en) in [(4usize, 16usize), (16, 16), (16, 4)] {
        bench(&format!("fig16/ll_O_sketch_{bk}x{en}"), ITERS, || {
            let mut cfg = small_system();
            cfg.sketch = SketchConfig::with_geometry(bk, en);
            ndp("ll", DesignPoint::O, cfg)
        });
    }

    bench("splitdimm/tree_O", ITERS, || {
        let mut cfg = SystemConfig::with_geometry(Geometry::split_dimm_buffer());
        cfg.seed = 7;
        ndp("tree", DesignPoint::O, cfg)
    });

    // How much the engine itself costs: an 8-point sweep through a
    // 4-worker pool vs the sum of its points above.
    bench("sweep/fig10_matrix_4workers", 3, || {
        let pool = Sweeper::new(4);
        let points: Vec<SweepPoint> = DesignPoint::table2()
            .iter()
            .flat_map(|&d| {
                ["tree", "spmv"]
                    .map(|app| SweepPoint::new(app, Column::Ndp(d), small_system(), Scale::Tiny))
            })
            .collect();
        pool.run(points)
    });
}
