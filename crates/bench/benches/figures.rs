//! Criterion benches regenerating each table/figure of the paper at
//! reduced scale. Each bench measures one end-to-end simulation that
//! produces the corresponding figure's data point(s); `cargo bench`
//! therefore both exercises the full system and reports how fast the
//! simulator itself runs.
//!
//! The *paper-scale* numbers come from the `repro` binary
//! (`cargo run --release -p ndpb-bench --bin repro -- all --full`).

use criterion::{criterion_group, criterion_main, Criterion};
use ndpb_bench::{run_host, run_one};
use ndpb_core::config::{SystemConfig, TriggerPolicy};
use ndpb_core::design::DesignPoint;
use ndpb_dram::Geometry;
use ndpb_sketch::SketchConfig;
use ndpb_workloads::Scale;

fn small_system() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 7;
    c
}

fn bench_fig2_tree_baseline(c: &mut Criterion) {
    c.bench_function("fig2/tree_on_C", |b| {
        b.iter(|| run_one("tree", DesignPoint::C, small_system(), Scale::Tiny))
    });
}

fn bench_fig10_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    for design in DesignPoint::table2() {
        g.bench_function(format!("tree_on_{design}"), |b| {
            b.iter(|| run_one("tree", design, small_system(), Scale::Tiny))
        });
        g.bench_function(format!("spmv_on_{design}"), |b| {
            b.iter(|| run_one("spmv", design, small_system(), Scale::Tiny))
        });
    }
    g.finish();
}

fn bench_fig11_h_and_r(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.bench_function("tree_on_H", |b| {
        b.iter(|| run_host("tree", small_system(), Scale::Tiny))
    });
    g.bench_function("tree_on_R", |b| {
        b.iter(|| run_one("tree", DesignPoint::R, small_system(), Scale::Tiny))
    });
    g.finish();
}

fn bench_fig12_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for ranks in [1u32, 4] {
        g.bench_function(format!("pr_O_{}_units", ranks * 64), |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(ranks));
                cfg.seed = 7;
                run_one("pr", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    g.finish();
}

fn bench_fig13_energy(c: &mut Criterion) {
    // Energy is computed by the same run; bench the accounting-heavy
    // design point end to end.
    c.bench_function("fig13/wcc_on_O_energy", |b| {
        b.iter(|| {
            let r = run_one("wcc", DesignPoint::O, small_system(), Scale::Tiny);
            assert!(r.energy.total_pj() > 0.0);
            r
        })
    });
}

fn bench_fig14a_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14a");
    g.sample_size(10);
    for design in [DesignPoint::WAdv, DesignPoint::WFine, DesignPoint::WHot] {
        g.bench_function(format!("spmv_on_{design}"), |b| {
            b.iter(|| run_one("spmv", design, small_system(), Scale::Tiny))
        });
    }
    g.finish();
}

fn bench_fig14b_triggers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14b");
    g.sample_size(10);
    for (name, pol) in [
        ("dynamic", TriggerPolicy::Dynamic),
        ("fixed_imin", TriggerPolicy::FixedIMin),
        ("fixed_2imin", TriggerPolicy::Fixed2IMin),
    ] {
        g.bench_function(format!("tree_{name}"), |b| {
            b.iter(|| {
                let mut cfg = small_system();
                cfg.trigger = pol;
                run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    g.finish();
}

fn bench_fig15_dq_widths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    for dq in [4u32, 8, 16] {
        g.bench_function(format!("tree_O_x{dq}"), |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::with_geometry(Geometry::with_dq_bits(dq));
                cfg.seed = 7;
                run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    g.finish();
}

fn bench_fig16_parameters(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    for gx in [64u32, 256, 1024] {
        g.bench_function(format!("spmv_O_gxfer_{gx}"), |b| {
            b.iter(|| {
                let mut cfg = small_system();
                cfg.g_xfer = gx;
                run_one("spmv", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    for i_state in [500u64, 2000, 8000] {
        g.bench_function(format!("ll_O_istate_{i_state}"), |b| {
            b.iter(|| {
                let mut cfg = small_system();
                cfg.i_state_cycles = i_state;
                run_one("ll", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    for (bk, en) in [(4usize, 16usize), (16, 16), (16, 4)] {
        g.bench_function(format!("ll_O_sketch_{bk}x{en}"), |b| {
            b.iter(|| {
                let mut cfg = small_system();
                cfg.sketch = SketchConfig::with_geometry(bk, en);
                run_one("ll", DesignPoint::O, cfg, Scale::Tiny)
            })
        });
    }
    g.finish();
}

fn bench_split_dimm(c: &mut Criterion) {
    c.bench_function("splitdimm/tree_O", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::with_geometry(Geometry::split_dimm_buffer());
            cfg.seed = 7;
            run_one("tree", DesignPoint::O, cfg, Scale::Tiny)
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig2_tree_baseline,
        bench_fig10_designs,
        bench_fig11_h_and_r,
        bench_fig12_scalability,
        bench_fig13_energy,
        bench_fig14a_ablations,
        bench_fig14b_triggers,
        bench_fig15_dq_widths,
        bench_fig16_parameters,
        bench_split_dimm
);
criterion_main!(figures);
