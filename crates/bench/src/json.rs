//! A minimal JSON reader for the repo's own serde-free writers.
//!
//! The workspace hand-rolls its JSON *output* (`RunResult::to_json`,
//! `MetricsReport::to_json`, the Chrome trace writer). The result cache
//! and the golden-run tests also need to read those documents back, so
//! this module adds the matching reader: a small recursive-descent
//! parser over the subset those writers emit — objects, arrays,
//! strings with `\\`/`\"` escapes, unsigned/negative integers, floats,
//! `true`/`false`/`null`.
//!
//! Integers are kept exact (`u64`/`i64` variants, no round-trip through
//! `f64`): cached results encode `f64` fields by IEEE-754 *bit
//! pattern*, and those bits must survive parsing unchanged.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    UInt(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, keys assumed unique.
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_u64()`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Convenience: `self.get(key)?.as_f64()`.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `self.get(key)?.as_str()`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or_else(|| self.err("unterminated escape"))? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        // \b \f \uXXXX never appear in our writers.
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad float"))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<i64>()
                .map(|v| Json::Int(-v))
                .map_err(|_| self.err("bad integer"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX),
            "u64::MAX must not round-trip through f64"
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\"").unwrap(),
            Json::Str("a\"b\\c".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let j = Json::parse(r#"{"a":[1,2,{"b":"x"}],"c":{},"d":[]}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].str_field("b"),
            Some("x")
        );
        assert_eq!(j.get("c").unwrap(), &Json::Obj(vec![]));
        assert_eq!(j.get("d").unwrap(), &Json::Arr(vec![]));
        assert!(j.get("nope").is_none());
    }

    #[test]
    fn tolerates_whitespace_and_preserves_order() {
        let j = Json::parse(" {\n \"z\" : 1 ,\t\"a\" : 2 } ").unwrap();
        match &j {
            Json::Obj(m) => {
                assert_eq!(m[0].0, "z");
                assert_eq!(m[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\":}", "1 2", "tru", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reads_own_writers_output() {
        // The document shapes our writers emit parse cleanly.
        let metrics = "{\"metrics\":[\"a/b\"],\"snapshots\":[{\"label\":\"epoch-1\",\"t_ticks\":42,\"values\":[3]}]}";
        let j = Json::parse(metrics).unwrap();
        assert_eq!(
            j.get("snapshots").unwrap().as_arr().unwrap()[0].u64_field("t_ticks"),
            Some(42)
        );
    }
}
