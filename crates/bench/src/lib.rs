//! Reproduction harness: run design points over applications and
//! aggregate the numbers each table/figure of the paper reports.
//!
//! The `repro` binary (`src/bin/repro.rs`) exposes one subcommand per
//! table/figure; the `Instant`-based benches under `benches/` (see
//! [`timing`]) reuse the same entry points at reduced scale.
//!
//! All multi-point work routes through the [`sweep`] engine: a bounded
//! worker pool with deterministic result merging and an optional
//! content-addressed on-disk [`cache`] keyed by
//! `SystemConfig::fingerprint`, so a warm `repro all` rerun simulates
//! nothing. [`json`] holds the matching reader for the workspace's
//! hand-rolled JSON writers.

pub mod cache;
pub mod json;
pub mod sweep;
pub mod timing;

pub use sweep::{SweepPoint, Sweeper};

use ndpb_core::config::SystemConfig;
use ndpb_core::design::DesignPoint;
use ndpb_core::hostonly::{HostOnly, HostOnlyConfig};
use ndpb_core::result::{geomean, RunResult};
use ndpb_core::System;
use ndpb_workloads::{build_app, Scale};

/// Runs one (application, design) pair under `cfg`.
///
/// Routes through [`System::with_app_factory`]: when `cfg.shards > 1`
/// the workload is generated concurrently with the (512-unit, at Table
/// I) system scaffolding, which is where one run's shard speedup comes
/// from — the event loop itself stays serial so results are
/// byte-identical at every shard count.
pub fn run_one(app_name: &str, design: DesignPoint, cfg: SystemConfig, scale: Scale) -> RunResult {
    let geometry = cfg.geometry.clone();
    let seed = cfg.seed;
    System::with_app_factory(cfg, design, move || {
        build_app(app_name, &geometry, scale, seed)
    })
    .run()
}

/// [`run_one`] with tracing: attaches a [`ndpb_trace::RingRecorder`] of
/// `capacity` records, so `RunResult::trace` comes back populated (most
/// recent events win if the ring overflows).
pub fn run_traced(
    app_name: &str,
    design: DesignPoint,
    cfg: SystemConfig,
    scale: Scale,
    capacity: usize,
) -> RunResult {
    let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
    let mut sys = System::new(cfg, design, app);
    sys.set_trace(Box::new(ndpb_trace::RingRecorder::new(capacity)));
    sys.run()
}

/// Runs the host-only baseline **H** for one application.
pub fn run_host(app_name: &str, cfg: SystemConfig, scale: Scale) -> RunResult {
    let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
    HostOnly::new(cfg, HostOnlyConfig::paper(), app).run()
}

/// Runs one column with the event-loop phase profiler armed, so
/// `RunResult::profile` comes back populated (`repro bench --profile`).
/// Profiled runs bypass the sweep cache — the point is the wall-clock
/// attribution, not the result — and take the serial path; the result
/// bytes are identical to an unprofiled run.
pub fn run_profiled(app_name: &str, column: Column, cfg: SystemConfig, scale: Scale) -> RunResult {
    match column {
        Column::Ndp(design) => {
            let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
            let mut sys = System::new(cfg, design, app);
            sys.set_profile();
            sys.run()
        }
        Column::Host => {
            let app = build_app(app_name, &cfg.geometry, scale, cfg.seed);
            let mut host = HostOnly::new(cfg, HostOnlyConfig::paper(), app);
            host.set_profile();
            host.run()
        }
    }
}

/// A labelled design column: either an NDP design point or the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// A simulated NDP design.
    Ndp(DesignPoint),
    /// The host-only baseline.
    Host,
}

impl Column {
    /// Display label.
    pub fn label(self) -> String {
        match self {
            Column::Ndp(d) => d.to_string(),
            Column::Host => "H".to_string(),
        }
    }
}

/// Runs `columns × apps` through the process-wide [`sweep`] engine
/// (bounded worker pool, deterministic merge, optional result cache)
/// and returns results in `[app][column]` order.
///
/// Output is identical for any worker count: each simulation is
/// single-threaded and deterministic, and the engine merges by point
/// index.
pub fn run_matrix(
    apps: &[&str],
    columns: &[Column],
    make_cfg: impl Fn() -> SystemConfig,
    scale: Scale,
) -> Vec<Vec<RunResult>> {
    let make_cfg = &make_cfg;
    let points: Vec<SweepPoint> = apps
        .iter()
        .flat_map(|&app| {
            columns
                .iter()
                .map(move |&col| SweepPoint::new(app, col, make_cfg(), scale))
        })
        .collect();
    let mut flat = sweep::global().run(points).into_iter();
    apps.iter()
        .map(|_| flat.by_ref().take(columns.len()).collect())
        .collect()
}

/// Geometric-mean speedup of column `target` over column `baseline`
/// across all rows of a [`run_matrix`] result.
pub fn matrix_geomean_speedup(matrix: &[Vec<RunResult>], target: usize, baseline: usize) -> f64 {
    let ratios: Vec<f64> = matrix
        .iter()
        .map(|row| row[target].speedup_over(&row[baseline]))
        .collect();
    geomean(&ratios)
}

/// Formats a speedup table (rows = apps, columns relative to the first
/// column's makespan).
pub fn format_speedup_table(
    apps: &[&str],
    columns: &[Column],
    matrix: &[Vec<RunResult>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<8}", "app"));
    for c in columns {
        out.push_str(&format!("{:>10}", c.label()));
    }
    out.push('\n');
    for (i, &app) in apps.iter().enumerate() {
        out.push_str(&format!("{app:<8}"));
        for j in 0..columns.len() {
            let s = matrix[i][j].speedup_over(&matrix[i][0]);
            out.push_str(&format!("{s:>9.2}x"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<8}", "geomean"));
    for j in 0..columns.len() {
        out.push_str(&format!("{:>9.2}x", matrix_geomean_speedup(matrix, j, 0)));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::Geometry;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig::with_geometry(Geometry::with_total_ranks(1))
    }

    #[test]
    fn run_one_produces_work() {
        let r = run_one("ll", DesignPoint::B, tiny_cfg(), Scale::Tiny);
        assert!(r.tasks_executed > 0);
        assert_eq!(r.design, "B");
        assert_eq!(r.app, "ll");
    }

    #[test]
    fn run_host_produces_work() {
        let r = run_host("spmv", tiny_cfg(), Scale::Tiny);
        assert!(r.tasks_executed > 0);
        assert_eq!(r.design, "H");
    }

    #[test]
    fn matrix_shape_and_tables() {
        let apps = ["ll", "spmv"];
        let cols = [Column::Ndp(DesignPoint::C), Column::Ndp(DesignPoint::B)];
        let m = run_matrix(&apps, &cols, tiny_cfg, Scale::Tiny);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 2);
        let table = format_speedup_table(&apps, &cols, &m);
        assert!(table.contains("geomean"));
        assert!(table.contains("ll"));
        let g = matrix_geomean_speedup(&m, 1, 0);
        assert!(g > 0.0);
    }
}
