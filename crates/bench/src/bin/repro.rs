//! `repro` — regenerate every table and figure of the NDPBridge paper.
//!
//! ```text
//! cargo run --release --bin repro -- <subcommand> \
//!     [--tiny|--small|--full] [--apps a,b,c] [--jobs N] \
//!     [--cache-dir path] [--no-cache]
//! ```
//!
//! Subcommands: `table1 table2 fig2 fig10 fig11 fig12 fig13 fig14a
//! fig14b fig15 fig16a fig16b fig16c fig16d split-dimm dimm-link
//! audit gather all`, plus `serve` (the resident ndpb-serve front-end)
//! and `bench` (engine throughput; `--small-tier` appends the
//! Small-scale W vs W+GA gather-traffic section).
//!
//! `serve [--port N] [--jobs N] [--cache-dir D] [--max-queue N]
//! [--max-points N]` runs the simulator as a long-running service:
//! `POST /run`, `GET /job/{id}`, `GET /metrics`, `GET /healthz`,
//! `POST /shutdown` (see `crates/serve`). The service shares the CLI's
//! on-disk result cache, so warm CLI runs make the service fast and
//! vice versa.
//!
//! `--audit` forces the conservation auditor on for every simulated
//! point (message conservation, toArrive balance, dataBorrowed
//! inclusivity, traffic-ledger totals, bus sanity — checked at every
//! epoch boundary; a violation aborts with the full list). The `audit`
//! subcommand additionally prints the per-cause traffic-ledger
//! breakdown for designs B and W.
//!
//! Simulations fan out over the sweep engine: `--jobs N` bounds the
//! worker pool (default: all hardware threads) and results are merged
//! deterministically, so any `--jobs` value prints identical output.
//! Results are cached under `target/repro-cache` (override with
//! `--cache-dir`, disable with `--no-cache`); a warm rerun simulates
//! nothing — the stderr sweep summary shows the hit/miss counters.
//!
//! Absolute numbers will not match the paper (different substrate); the
//! *shape* — orderings, approximate factors, crossovers — is the
//! reproduction target. Each section prints the paper's reported
//! numbers for comparison.

use ndpb_bench::{format_speedup_table, matrix_geomean_speedup, run_matrix, Column};
use ndpb_core::audit::AuditLevel;
use ndpb_core::config::{SystemConfig, TriggerPolicy};
use ndpb_core::design::DesignPoint;
use ndpb_core::result::geomean;
use ndpb_dram::Geometry;
use ndpb_sketch::SketchConfig;
use ndpb_workloads::{Scale, APP_NAMES};

struct Opts {
    scale: Scale,
    /// Whether a scale flag was given explicitly (`bench` defaults to
    /// tiny rather than the sweep default of small).
    scale_explicit: bool,
    apps: Vec<String>,
    json: Option<String>,
    trace: Option<String>,
    metrics_json: Option<String>,
    jobs: Option<usize>,
    /// Per-run shard count (`--shards N`, `0` = auto from
    /// `available_parallelism`): partitions each single run's event
    /// queue across N per-rank timer wheels and executes windows in
    /// parallel where the model admits it. Results are byte-identical
    /// for any value; `bench` also sweeps the {1, 2, 4, 8} ladder and
    /// records the speedup each rung buys.
    shards: Option<usize>,
    cache_dir: Option<String>,
    no_cache: bool,
    audit: bool,
    /// `gather`: override `SystemConfig::steal_budget_gxfer` (`G_xfer`
    /// multiples of steal bytes per `W_th` stolen; default 2).
    steal_budget: Option<u32>,
    /// `bench --small-tier`: append the Small-scale W vs W+GA section
    /// (gather bytes + makespan) to the JSON report.
    small_tier: bool,
    /// `bench`: repetitions per design (default 5, or 2 with --quick).
    reps: Option<u32>,
    /// `bench --profile`: append a profiled pass per design attributing
    /// wall time to queue ops vs. handler dispatch vs. finalize, plus
    /// the same-tick run-length histogram.
    profile: bool,
    /// `bench --full-tier`: append a Scale::Full per-design tier with a
    /// budgeted rep count (Full runs cost minutes, not milliseconds).
    full_tier: bool,
    /// `bench`: fewer reps for a CI smoke.
    quick: bool,
    /// `serve`: TCP port (0 picks an ephemeral one).
    port: u16,
    /// `serve`: admission bound on unique in-flight points.
    max_queue: usize,
    /// `serve`: admission bound on points per request.
    max_points: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut scale = Scale::Small;
    let mut scale_explicit = false;
    let mut apps: Vec<String> = APP_NAMES.iter().map(|s| s.to_string()).collect();
    let mut reps = None;
    let mut quick = false;
    let mut json = None;
    let mut trace = None;
    let mut metrics_json = None;
    let mut jobs = None;
    let mut shards = None;
    let mut cache_dir = None;
    let mut no_cache = false;
    let mut audit = false;
    let mut steal_budget = None;
    let mut small_tier = false;
    let mut profile = false;
    let mut full_tier = false;
    let mut port = 7878u16;
    let mut max_queue = 256usize;
    let mut max_points = 64usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => (scale, scale_explicit) = (Scale::Tiny, true),
            "--small" => (scale, scale_explicit) = (Scale::Small, true),
            "--full" => (scale, scale_explicit) = (Scale::Full, true),
            "--apps" => {
                if let Some(list) = it.next() {
                    apps = list.split(',').map(str::to_string).collect();
                }
            }
            "--json" => json = it.next().cloned(),
            "--trace" => trace = it.next().cloned(),
            "--metrics-json" => metrics_json = it.next().cloned(),
            "--jobs" => {
                jobs = it.next().and_then(|v| v.parse().ok());
                if jobs.is_none() {
                    eprintln!("--jobs expects a worker count, e.g. --jobs 8");
                    std::process::exit(2);
                }
            }
            "--shards" => {
                shards = it.next().and_then(|v| v.parse().ok());
                if shards.is_none() {
                    eprintln!("--shards expects a shard count (0 = auto), e.g. --shards 4");
                    std::process::exit(2);
                }
            }
            "--cache-dir" => cache_dir = it.next().cloned(),
            "--no-cache" => no_cache = true,
            "--audit" => audit = true,
            "--steal-budget" => {
                steal_budget = it.next().and_then(|v| v.parse().ok());
            }
            "--small-tier" => small_tier = true,
            "--profile" => profile = true,
            "--full-tier" => full_tier = true,
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok());
                if reps.is_none() {
                    eprintln!("--reps expects a count, e.g. --reps 5");
                    std::process::exit(2);
                }
            }
            "--quick" => quick = true,
            "--port" => {
                port = match it.next().and_then(|v| v.parse().ok()) {
                    Some(p) => p,
                    None => {
                        eprintln!("--port expects a TCP port, e.g. --port 7878");
                        std::process::exit(2);
                    }
                };
            }
            "--max-queue" => {
                max_queue = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--max-queue expects a count, e.g. --max-queue 256");
                        std::process::exit(2);
                    }
                };
            }
            "--max-points" => {
                max_points = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--max-points expects a count, e.g. --max-points 64");
                        std::process::exit(2);
                    }
                };
            }
            _ => {}
        }
    }
    Opts {
        scale,
        scale_explicit,
        apps,
        json,
        trace,
        metrics_json,
        jobs,
        shards,
        cache_dir,
        no_cache,
        audit,
        steal_budget,
        small_tier,
        reps,
        quick,
        profile,
        full_tier,
        port,
        max_queue,
        max_points,
    }
}

/// `repro serve`: run the resident simulation service (see
/// `crates/serve`) until SIGINT or `POST /shutdown`.
fn serve(o: &Opts) {
    let cfg = ndpb_serve::ServerConfig {
        port: o.port,
        jobs: o.jobs.unwrap_or_else(ndpb_bench::sweep::default_jobs),
        cache_dir: if o.no_cache {
            None
        } else {
            Some(
                o.cache_dir
                    .clone()
                    .unwrap_or_else(|| "target/repro-cache".to_string())
                    .into(),
            )
        },
        max_queue: o.max_queue,
        max_points: o.max_points,
    };
    let server = match ndpb_serve::Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind port {}: {e}", o.port);
            std::process::exit(1);
        }
    };
    eprintln!(
        "[serve] jobs={} cache={} max-queue={} max-points={}",
        cfg.jobs,
        cfg.cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
        cfg.max_queue,
        cfg.max_points
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}

/// Resolves `--shards N` against the host and the standard geometry.
/// `0` asks for one shard per hardware thread. Requests beyond the
/// rank count clamp (ranks are the sharding unit, so extra wheels
/// would sit empty); requests beyond the hardware thread count only
/// warn — lanes fall back to inline execution on the leader thread,
/// which is slower but still byte-identical, so small hosts can
/// exercise any shard count.
fn resolve_shards(o: &Opts) -> Option<usize> {
    let req = o.shards?;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let g = SystemConfig::table1().geometry;
    let ranks = (g.channels * g.ranks_per_channel) as usize;
    let mut n = if req == 0 { hw.clamp(1, ranks) } else { req };
    if req == 0 {
        eprintln!(
            "[--shards 0: auto-selected {n} shard(s) ({hw} hardware thread(s), {ranks} ranks)]"
        );
    } else if n > ranks {
        eprintln!("[--shards {n} exceeds the {ranks}-rank geometry; clamping to {ranks}]");
        n = ranks;
    }
    if n > hw {
        eprintln!("[--shards {n} exceeds {hw} hardware thread(s); lanes run inline on the leader]");
    }
    Some(n)
}

/// Installs the process-wide sweep engine from the CLI flags. Caching
/// is on by default (`target/repro-cache`) so a rerun of an unchanged
/// figure costs file reads, not simulations; `--no-cache` forces fresh
/// simulations and `--cache-dir` relocates the store.
fn configure_sweep(o: &Opts) {
    let mut sweeper =
        ndpb_bench::Sweeper::new(o.jobs.unwrap_or_else(ndpb_bench::sweep::default_jobs));
    if !o.no_cache {
        let dir = o
            .cache_dir
            .clone()
            .unwrap_or_else(|| "target/repro-cache".to_string());
        sweeper = sweeper.with_cache(dir);
    }
    if o.audit {
        // Conservation audit at every epoch boundary; any violated
        // invariant aborts the run with the full violation list.
        sweeper = sweeper.with_audit(AuditLevel::Full);
    }
    if let Some(n) = resolve_shards(o) {
        // Observationally invisible (and excluded from cache keys);
        // shards each run's queue and construction across n wheels.
        sweeper = sweeper.with_shards(n);
    }
    ndpb_bench::sweep::configure(sweeper);
}

/// Writes one JSON array of per-run records for a matrix (only when
/// `--json` was given).
fn dump_json(o: &Opts, matrix: &[Vec<ndpb_core::RunResult>]) {
    let Some(path) = &o.json else { return };
    let records: Vec<String> = matrix.iter().flatten().map(|r| r.to_json()).collect();
    let body = format!("[\n{}\n]\n", records.join(",\n"));
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("failed to write {path}: {e}");
    } else {
        eprintln!("[wrote {} records to {path}]", records.len());
    }
}

fn app_refs(o: &Opts) -> Vec<&str> {
    o.apps.iter().map(String::as_str).collect()
}

/// One instrumented run of design O (`--trace` / `--metrics-json`):
/// records events into a bounded ring, writes a Chrome `trace_event`
/// JSON (open in chrome://tracing or https://ui.perfetto.dev) and the
/// per-epoch metric snapshots.
fn traced_run(o: &Opts) {
    let app = if o.apps.len() == APP_NAMES.len() {
        // Whole default list: pick an iterative app so the timeline shows
        // several epoch barriers (and the metrics JSON several snapshots).
        "pr"
    } else {
        o.apps.first().map(String::as_str).unwrap_or("pr")
    };
    let design = DesignPoint::O;
    println!("== instrumented run: {app} on design {design} ==");
    let mut cfg = SystemConfig::table1();
    if o.audit {
        cfg.audit = AuditLevel::Full;
    }
    let r = ndpb_bench::run_traced(app, design, cfg, o.scale, 1 << 20);
    println!("{}", r.row());
    if let Some(path) = &o.trace {
        let write = || -> std::io::Result<()> {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            ndpb_trace::write_chrome_trace(&mut f, &r.trace)
        };
        match write() {
            Ok(()) => eprintln!(
                "[wrote {} trace events to {path}; open in chrome://tracing or https://ui.perfetto.dev]",
                r.trace.len()
            ),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &o.metrics_json {
        match std::fs::write(path, r.metrics.to_json()) {
            Ok(()) => eprintln!(
                "[wrote {} metric snapshots to {path}]",
                r.metrics.snapshots.len()
            ),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn table1() {
    let c = SystemConfig::table1();
    println!("== Table I: system configuration ==");
    println!(
        "NDP system   : {} channels x {} ranks x {} chips x {} banks = {} units",
        c.geometry.channels,
        c.geometry.ranks_per_channel,
        c.geometry.chips_per_rank,
        c.geometry.banks_per_chip,
        c.geometry.total_units()
    );
    println!(
        "Capacity     : {} GB total ({} MB per bank)",
        (c.geometry.total_units() as u64 * c.geometry.bank_bytes) >> 30,
        c.geometry.bank_bytes >> 20
    );
    println!("NDP core     : in-order, 400 MHz, 10 mW");
    println!(
        "DRAM bank    : {} ns CAS/RCD/RP, 150 pJ / 64-bit access",
        c.timing.t_cas.as_ns().round()
    );
    println!(
        "Unit SRAM    : isLent bitmap; dataBorrowed {} entries",
        c.unit_borrowed_entries
    );
    println!(
        "Unit DRAM    : {} MB mailbox, {} MB borrowed region",
        c.mailbox_bytes >> 20,
        c.borrowed_region_bytes >> 20
    );
    println!(
        "Bridge SRAM  : {} kB scatter bufs, {} kB backup, {} kB mailbox, dataBorrowed {} entries",
        (c.scatter_buffer_bytes * c.geometry.units_per_rank() as u64) >> 10,
        c.backup_buffer_bytes >> 10,
        c.bridge_mailbox_bytes >> 10,
        c.bridge_borrowed_entries
    );
    println!(
        "Sketch       : {} buckets x {} entries",
        c.sketch.buckets, c.sketch.entries_per_bucket
    );
    println!(
        "Comm         : G_xfer = {} B, I_state = {} cycles, I_min = {} ticks",
        c.g_xfer,
        c.i_state_cycles,
        c.i_min().ticks()
    );
}

fn table2() {
    println!("== Table II: evaluated designs ==");
    println!("{:<8}{:<26}load balancing", "design", "communication");
    for d in DesignPoint::table2() {
        let comm = match d.comm_path() {
            ndpb_core::CommPath::HostForward => "forwarded by host CPU",
            ndpb_core::CommPath::Bridges => "bridges (ours)",
            ndpb_core::CommPath::RowClone => "RowClone intra-chip",
        };
        let lb = d.lb_policy();
        let lbs = if !lb.enabled {
            "none".to_string()
        } else if lb.hot_data {
            "data-transfer-aware (ours)".to_string()
        } else {
            "work stealing".to_string()
        };
        println!("{:<8}{:<26}{}", d.to_string(), comm, lbs);
    }
}

fn fig2(o: &Opts) {
    println!("== Figure 2: tree traversal on baseline DRAM-bank NDP (design C) ==");
    println!("paper: 32.9% wait time; large max-vs-average gap (512 units)\n");
    let m = run_matrix(
        &["tree"],
        &[Column::Ndp(DesignPoint::C)],
        SystemConfig::table1,
        o.scale,
    );
    let r = &m[0][0];
    println!(
        "total (slowest unit): {:>12.1} us\naverage across units: {:>12.1} us  ({:.1}% of total)\nwait time fraction  : {:>11.1} %",
        r.makespan.as_ns() / 1000.0,
        r.avg_unit_time.as_ns() / 1000.0,
        r.balance * 100.0,
        r.wait_fraction * 100.0,
    );
}

fn fig10(o: &Opts) {
    println!("== Figure 10: C / B / W / O across applications ==");
    println!("paper: B=1.51x, W=2.23x, O=2.98x over C on average; W can hurt tree\n");
    let apps = app_refs(o);
    let cols: Vec<Column> = DesignPoint::table2()
        .iter()
        .map(|&d| Column::Ndp(d))
        .collect();
    let m = run_matrix(&apps, &cols, SystemConfig::table1, o.scale);
    dump_json(o, &m);
    print!("{}", format_speedup_table(&apps, &cols, &m));
    println!("\nbalance (avg unit time / total, paper: B 22.4%, W 47.0%, O 59.0%):");
    print!("{:<8}", "app");
    for c in &cols {
        print!("{:>10}", c.label());
    }
    println!();
    for (i, app) in apps.iter().enumerate() {
        print!("{app:<8}");
        for row in &m[i][..cols.len()] {
            print!("{:>9.1}%", row.balance * 100.0);
        }
        println!();
    }
    println!("\nwait fraction of total time (paper: C large, B 1.4%, W 18.6%, O 10.0%):");
    print!("{:<8}", "app");
    for c in &cols {
        print!("{:>10}", c.label());
    }
    println!();
    for (i, app) in apps.iter().enumerate() {
        print!("{app:<8}");
        for row in &m[i][..cols.len()] {
            print!("{:>9.1}%", row.wait_fraction * 100.0);
        }
        println!();
    }
}

fn fig11(o: &Opts) {
    println!("== Figure 11: vs host-only (H) and RowClone (R) ==");
    println!("paper: O=3.59x over H; R=1.35x over C; B=1.12x over R; O=2.23x over R\n");
    let apps = app_refs(o);
    let cols = [
        Column::Host,
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::R),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::O),
    ];
    let m = run_matrix(&apps, &cols, SystemConfig::table1, o.scale);
    print!("{}", format_speedup_table(&apps, &cols, &m));
    println!(
        "\nO over H: {:.2}x   R over C: {:.2}x   B over R: {:.2}x   O over R: {:.2}x",
        matrix_geomean_speedup(&m, 4, 0),
        matrix_geomean_speedup(&m, 2, 1),
        matrix_geomean_speedup(&m, 3, 2),
        matrix_geomean_speedup(&m, 4, 2),
    );
}

fn fig12(o: &Opts) {
    println!("== Figure 12: scalability on pr, 64..1024 units ==");
    println!("paper: speedups over baselines grow with scale; O@1024 = 1.68x O@512;");
    println!("       W fails to beat B at 1024 units\n");
    let cols: Vec<Column> = DesignPoint::table2()
        .iter()
        .map(|&d| Column::Ndp(d))
        .collect();
    println!(
        "{:<8}{:>10}{:>10}{:>10}{:>10}   (makespan us; speedup vs C-at-64-units)",
        "units", "C", "B", "W", "O"
    );
    let mut base: Option<f64> = None;
    for ranks in [1u32, 2, 4, 8, 16] {
        let geom = Geometry::with_total_ranks(ranks);
        let units = geom.total_units();
        let m = run_matrix(
            &["pr"],
            &cols,
            || SystemConfig::with_geometry(Geometry::with_total_ranks(ranks)),
            o.scale,
        );
        let c0 = m[0][0].makespan.as_ns() / 1000.0;
        if base.is_none() {
            base = Some(c0);
        }
        print!("{units:<8}");
        for cell in &m[0][..4] {
            print!("{:>10.1}", cell.makespan.as_ns() / 1000.0);
        }
        println!();
    }
    let _ = base;
}

fn fig13(o: &Opts) {
    println!("== Figure 13: energy breakdown (core+SRAM / local DRAM / comm DRAM / static) ==");
    println!("paper: O reduces total energy 56.4% vs C on average\n");
    let apps = app_refs(o);
    let cols: Vec<Column> = DesignPoint::table2()
        .iter()
        .map(|&d| Column::Ndp(d))
        .collect();
    let m = run_matrix(&apps, &cols, SystemConfig::table1, o.scale);
    println!(
        "{:<8}{:<8}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "app", "design", "core+sram", "dram-local", "dram-comm", "static", "total(uJ)"
    );
    for (i, app) in apps.iter().enumerate() {
        for (j, c) in cols.iter().enumerate() {
            let e = &m[i][j].energy;
            println!(
                "{:<8}{:<8}{:>11.1}%{:>11.1}%{:>11.1}%{:>11.1}%{:>12.1}",
                app,
                c.label(),
                e.fractions()[0] * 100.0,
                e.fractions()[1] * 100.0,
                e.fractions()[2] * 100.0,
                e.fractions()[3] * 100.0,
                e.total_pj() / 1e6,
            );
        }
    }
    let reductions: Vec<f64> = (0..apps.len())
        .map(|i| m[i][3].energy.total_pj() / m[i][0].energy.total_pj())
        .collect();
    println!(
        "\nO total energy vs C (geomean): {:.1}% (paper: 43.6%, i.e. a 56.4% reduction)",
        geomean(&reductions) * 100.0
    );
}

fn fig14a(o: &Opts) {
    println!("== Figure 14a: data-transfer-aware LB ablation over W ==");
    println!("paper: +Adv 1.046x, +Fine 1.19x, +Hot 1.29x, O 1.35x over W (geomean)\n");
    let apps = app_refs(o);
    let cols = [
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::WAdv),
        Column::Ndp(DesignPoint::WFine),
        Column::Ndp(DesignPoint::WHot),
        Column::Ndp(DesignPoint::O),
    ];
    let m = run_matrix(&apps, &cols, SystemConfig::table1, o.scale);
    print!("{}", format_speedup_table(&apps, &cols, &m));
}

fn fig14b(o: &Opts) {
    println!("== Figure 14b: dynamic communication triggering ==");
    println!("paper: dynamic saves 29.5% access energy vs fixed I_min at -0.4% perf;");
    println!("       fixed 2*I_min loses 31% performance\n");
    let apps = app_refs(o);
    let policies = [
        ("dynamic", TriggerPolicy::Dynamic),
        ("I_min", TriggerPolicy::FixedIMin),
        ("2*I_min", TriggerPolicy::Fixed2IMin),
    ];
    let mut results = Vec::new();
    for (label, pol) in policies {
        let m = run_matrix(
            &app_refs(o),
            &[Column::Ndp(DesignPoint::O)],
            move || {
                let mut c = SystemConfig::table1();
                c.trigger = pol;
                c
            },
            o.scale,
        );
        results.push((label, m));
    }
    println!(
        "{:<10}{:>14}{:>18}{:>16}",
        "trigger", "perf vs dyn", "comm energy", "wasted gathers"
    );
    let dyn_m = &results[0].1;
    for (label, m) in &results {
        let perf: Vec<f64> = (0..apps.len())
            .map(|i| dyn_m[i][0].makespan.ticks() as f64 / m[i][0].makespan.ticks() as f64)
            .collect();
        let energy: Vec<f64> = (0..apps.len())
            .map(|i| m[i][0].energy.dram_comm_pj / dyn_m[i][0].energy.dram_comm_pj.max(1.0))
            .collect();
        let wasted: u64 = (0..apps.len()).map(|i| m[i][0].comm_dram_bytes).sum();
        println!(
            "{:<10}{:>13.2}x{:>17.1}%{:>16}",
            label,
            geomean(&perf),
            geomean(&energy) * 100.0,
            wasted / 1024,
        );
    }
}

fn fig15(o: &Opts) {
    println!("== Figure 15: chip DQ widths x4 / x8 / x16 ==");
    println!("paper: O = 3.26x/2.98x/2.58x over C; B gains most at x4 (2.33x),");
    println!("       LB gains most at x16 (W 1.79x, O 2.3x over B)\n");
    let apps = app_refs(o);
    let cols: Vec<Column> = DesignPoint::table2()
        .iter()
        .map(|&d| Column::Ndp(d))
        .collect();
    for dq in [4u32, 8, 16] {
        let m = run_matrix(
            &apps,
            &cols,
            move || SystemConfig::with_geometry(Geometry::with_dq_bits(dq)),
            o.scale,
        );
        println!(
            "x{dq:<3} B/C {:>5.2}x  W/C {:>5.2}x  O/C {:>5.2}x  |  W/B {:>5.2}x  O/B {:>5.2}x",
            matrix_geomean_speedup(&m, 1, 0),
            matrix_geomean_speedup(&m, 2, 0),
            matrix_geomean_speedup(&m, 3, 0),
            matrix_geomean_speedup(&m, 2, 1),
            matrix_geomean_speedup(&m, 3, 1),
        );
    }
}

fn fig16a(o: &Opts) {
    println!("== Figure 16a: G_xfer x metadata-size sweep (design O) ==");
    println!("paper: 256 B is the sweet spot; 64 B needs 4x metadata to win\n");
    let apps = app_refs(o);
    println!(
        "{:<10}{:>12}{:>12}{:>12}   (geomean makespan vs 256B/1x)",
        "G_xfer", "1/4x meta", "1x meta", "4x meta"
    );
    let mut baseline: Option<f64> = None;
    let mut rows = Vec::new();
    for gx in [64u32, 256, 1024] {
        let mut row = Vec::new();
        for meta in [0.25f64, 1.0, 4.0] {
            let m = run_matrix(
                &apps,
                &[Column::Ndp(DesignPoint::O)],
                move || {
                    let mut c = SystemConfig::table1().scale_metadata(meta);
                    c.g_xfer = gx;
                    c
                },
                o.scale,
            );
            let g = geomean(
                &(0..apps.len())
                    .map(|i| m[i][0].makespan.ticks() as f64)
                    .collect::<Vec<_>>(),
            );
            if gx == 256 && meta == 1.0 {
                baseline = Some(g);
            }
            row.push(g);
        }
        rows.push((gx, row));
    }
    let base = baseline.expect("256/1x in sweep");
    for (gx, row) in rows {
        println!(
            "{:<10}{:>11.2}x{:>11.2}x{:>11.2}x",
            format!("{gx}B"),
            row[0] / base,
            row[1] / base,
            row[2] / base
        );
    }
    println!("(>1 means slower than the default)");
}

fn fig16b(o: &Opts) {
    println!("== Figure 16b: I_state sweep (design O) ==");
    println!("paper: 2000 cycles retains performance\n");
    let apps = app_refs(o);
    let base = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        SystemConfig::table1,
        o.scale,
    );
    for i_state in [500u64, 1000, 2000, 4000, 8000] {
        let m = run_matrix(
            &apps,
            &[Column::Ndp(DesignPoint::O)],
            move || {
                let mut c = SystemConfig::table1();
                c.i_state_cycles = i_state;
                c
            },
            o.scale,
        );
        let rel: Vec<f64> = (0..apps.len())
            .map(|i| base[i][0].makespan.ticks() as f64 / m[i][0].makespan.ticks() as f64)
            .collect();
        println!(
            "I_state={i_state:<6} perf vs 2000-cycle default: {:.3}x",
            geomean(&rel)
        );
    }
}

fn fig16cd(o: &Opts, buckets: bool) {
    let (name, what) = if buckets {
        ("fig16c", "sketch bucket count")
    } else {
        ("fig16d", "sketch entries per bucket")
    };
    println!("== Figure {name}: {what} sweep (design O) ==");
    println!("paper: the 16x16 default is sufficient\n");
    let apps = app_refs(o);
    let base = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        SystemConfig::table1,
        o.scale,
    );
    for k in [4usize, 8, 16, 32] {
        let m = run_matrix(
            &apps,
            &[Column::Ndp(DesignPoint::O)],
            move || {
                let mut c = SystemConfig::table1();
                c.sketch = if buckets {
                    SketchConfig::with_geometry(k, 16)
                } else {
                    SketchConfig::with_geometry(16, k)
                };
                c
            },
            o.scale,
        );
        let rel: Vec<f64> = (0..apps.len())
            .map(|i| base[i][0].makespan.ticks() as f64 / m[i][0].makespan.ticks() as f64)
            .collect();
        println!("{what} = {k:<4} perf vs default: {:.3}x", geomean(&rel));
    }
}

fn split_dimm(o: &Opts) {
    println!("== Section VIII-A: split DIMM buffers (chameleon-s) ==");
    println!("paper: 9.1% performance degradation, 35.3% more wait time\n");
    let apps = app_refs(o);
    let unified = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        SystemConfig::table1,
        o.scale,
    );
    let split = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        || SystemConfig::with_geometry(Geometry::split_dimm_buffer()),
        o.scale,
    );
    let perf: Vec<f64> = (0..apps.len())
        .map(|i| split[i][0].makespan.ticks() as f64 / unified[i][0].makespan.ticks() as f64)
        .collect();
    let waits: Vec<f64> = (0..apps.len())
        .map(|i| (split[i][0].wait_fraction + 1e-9) / (unified[i][0].wait_fraction + 1e-9))
        .collect();
    println!(
        "split-DIMM slowdown: {:.1}% (geomean)   wait-time ratio: {:.2}x",
        (geomean(&perf) - 1.0) * 100.0,
        geomean(&waits)
    );
}

fn dimm_link(o: &Opts) {
    println!("== Extension: NDPBridge + DIMM-Link cross-rank links ==");
    println!("(Section V-A: NDPBridge is orthogonal to and can work in tandem");
    println!(" with DIMM-Link; the paper's evaluation uses plain DDR channels.)\n");
    let apps = app_refs(o);
    let base = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        SystemConfig::table1,
        o.scale,
    );
    let linked = run_matrix(
        &apps,
        &[Column::Ndp(DesignPoint::O)],
        || SystemConfig::table1().with_dimm_link(),
        o.scale,
    );
    println!(
        "{:<8}{:>12}{:>14}{:>14}",
        "app", "speedup", "chan KB", "chan KB+link"
    );
    let mut sp = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let s = linked[i][0].speedup_over(&base[i][0]);
        sp.push(s);
        println!(
            "{:<8}{:>11.2}x{:>14}{:>14}",
            app,
            s,
            base[i][0].channel_bytes / 1024,
            linked[i][0].channel_bytes / 1024,
        );
    }
    println!("geomean {:>11.2}x", geomean(&sp));
}

/// `repro bench`: wall-clock benchmark of the simulation engine itself.
///
/// Runs the fig10-style sweep (all apps × the six golden-column
/// designs C/B/W/O/H/R) `reps` times per design — sequentially,
/// bypassing the result cache so every run is a real simulation — and
/// reports the median wall seconds and events/sec per design. Writes
/// `BENCH_repro.json` (or `--json path`) for machine consumption.
/// Defaults to `--tiny` so a full bench stays in seconds.
fn bench_engine(o: &Opts) {
    let reps = o.reps.unwrap_or(if o.quick { 2 } else { 5 });
    let scale = if o.scale_explicit {
        o.scale
    } else {
        Scale::Tiny
    };
    let apps = app_refs(o);
    let cols: Vec<Column> = vec![
        Column::Ndp(DesignPoint::C),
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::O),
        Column::Host,
        Column::Ndp(DesignPoint::R),
    ];
    println!(
        "== engine bench: {} apps x {} designs, {} rep(s), scale {:?} ==",
        apps.len(),
        cols.len(),
        reps,
        scale
    );
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
    let mut events: Vec<u64> = vec![0; cols.len()];
    for rep in 0..reps {
        for (ci, col) in cols.iter().enumerate() {
            let start = std::time::Instant::now();
            let mut ev = 0u64;
            for app in &apps {
                let r = match col {
                    Column::Ndp(d) => ndpb_bench::run_one(app, *d, SystemConfig::table1(), scale),
                    Column::Host => ndpb_bench::run_host(app, SystemConfig::table1(), scale),
                };
                ev += r.events;
            }
            walls[ci].push(start.elapsed().as_secs_f64());
            // Simulations are deterministic: the event count per design
            // must not vary across reps.
            if rep == 0 {
                events[ci] = ev;
            } else {
                assert_eq!(events[ci], ev, "nondeterministic event count for {col:?}");
            }
        }
    }
    println!(
        "\n{:<8}{:>12}{:>14}{:>16}",
        "design", "events", "median s", "events/sec"
    );
    let mut rows = Vec::new();
    let mut stat_rows: Vec<(String, u64, f64)> = Vec::new();
    let mut total_events = 0u64;
    let mut total_median = 0.0;
    for (ci, col) in cols.iter().enumerate() {
        let med = ndpb_bench::timing::median(&walls[ci]);
        let eps = if med > 0.0 {
            events[ci] as f64 / med
        } else {
            0.0
        };
        println!(
            "{:<8}{:>12}{:>14.4}{:>16.0}",
            col.label(),
            events[ci],
            med,
            eps
        );
        total_events += events[ci];
        total_median += med;
        stat_rows.push((col.label(), events[ci], eps));
        let wall_list = walls[ci]
            .iter()
            .map(|w| format!("{w:.6}"))
            .collect::<Vec<_>>()
            .join(",");
        rows.push(format!(
            "{{\"design\":\"{}\",\"events\":{},\"wall_seconds\":[{}],\"median_wall_seconds\":{:.6},\"events_per_sec\":{:.1}}}",
            col.label(),
            events[ci],
            wall_list,
            med,
            eps
        ));
    }
    let total_eps = if total_median > 0.0 {
        total_events as f64 / total_median
    } else {
        0.0
    };
    println!(
        "{:<8}{:>12}{:>14.4}{:>16.0}",
        "total", total_events, total_median, total_eps
    );
    // --shards: end-to-end scaling ladder. The serial (shards=1) rung
    // reuses the per-rep totals already measured above; each further
    // rung {2, 4, 8} reruns the same sweep with every run's queue and
    // construction split across that many shards, recording the
    // windowed engine's own counters (windows opened, serial-fallback
    // steps, barrier stall) alongside the wall clock. Event counts
    // must not move — shard count is observationally invisible — so
    // any drift aborts.
    let mut shard_rows: Vec<String> = Vec::new();
    if resolve_shards(o).is_some() {
        let g = SystemConfig::table1().geometry;
        let ranks = (g.channels * g.ranks_per_channel) as usize;
        let serial_totals: Vec<f64> = (0..reps as usize)
            .map(|rep| walls.iter().map(|w| w[rep]).sum())
            .collect();
        let serial_med = ndpb_bench::timing::median(&serial_totals);
        println!(
            "\n{:<8}{:>12}{:>14}{:>10}{:>10}{:>12}{:>12}",
            "shards", "median s", "events/sec", "speedup", "windows", "fallback", "stall ms"
        );
        let mut emit = |shards: usize, med: f64, windows: u64, fallback: u64, stall: u64| {
            let eps = if med > 0.0 {
                total_events as f64 / med
            } else {
                0.0
            };
            let speedup = if med > 0.0 { serial_med / med } else { 0.0 };
            println!(
                "{shards:<8}{med:>12.4}{eps:>14.0}{speedup:>9.2}x{windows:>10}{fallback:>12}{:>12.1}",
                stall as f64 / 1e6
            );
            shard_rows.push(format!(
                "{{\"shards\":{shards},\"median_wall_seconds\":{med:.6},\"events_per_sec\":{eps:.1},\"speedup_over_serial\":{speedup:.3},\"windows\":{windows},\"serial_fallback_steps\":{fallback},\"barrier_stall_ns\":{stall}}}"
            ));
        };
        emit(1, serial_med, 0, 0, 0);
        for n in [2usize, 4, 8] {
            if n > ranks {
                println!("[skipping shards={n}: exceeds the {ranks}-rank geometry]");
                continue;
            }
            let mut totals: Vec<f64> = Vec::new();
            let (mut windows, mut fallback, mut stall) = (0u64, 0u64, 0u64);
            for rep in 0..reps {
                let start = std::time::Instant::now();
                let mut ev = 0u64;
                let (mut w, mut f, mut s) = (0u64, 0u64, 0u64);
                for col in &cols {
                    for app in &apps {
                        let mut cfg = SystemConfig::table1();
                        cfg.shards = n;
                        let r = match col {
                            Column::Ndp(d) => ndpb_bench::run_one(app, *d, cfg, scale),
                            Column::Host => ndpb_bench::run_host(app, cfg, scale),
                        };
                        ev += r.events;
                        if let Some(p) = r.parallel {
                            w += p.windows;
                            f += p.serial_fallback_steps;
                            s += p.barrier_stall_ns;
                        }
                    }
                }
                assert_eq!(
                    ev, total_events,
                    "event count drifted at shards={n}: sharding must be invisible"
                );
                if rep == 0 {
                    (windows, fallback) = (w, f);
                } else {
                    // Window structure is deterministic; only the
                    // wall-clock counters may vary across reps.
                    assert_eq!(
                        (windows, fallback),
                        (w, f),
                        "nondeterministic window structure at shards={n}"
                    );
                }
                stall = stall.max(s);
                totals.push(start.elapsed().as_secs_f64());
            }
            emit(
                n,
                ndpb_bench::timing::median(&totals),
                windows,
                fallback,
                stall,
            );
        }
        // Non-gating scaling delta against the committed baseline
        // (machines differ; the honest number travels in the JSON).
        if let Ok(text) = std::fs::read_to_string("docs/repro/BENCH_repro.json") {
            if let Ok(base) = ndpb_bench::json::Json::parse(&text) {
                if let Some(rows) = base.get("shards").and_then(|s| s.as_arr()) {
                    for row in rows {
                        let (Some(n), Some(sp)) = (
                            row.u64_field("shards"),
                            row.get("speedup_over_serial").and_then(|v| v.as_f64()),
                        ) else {
                            continue;
                        };
                        if n > 1 {
                            println!("[baseline speedup_over_serial at {n} shards: {sp:.3}x]");
                        }
                    }
                }
            }
        }
    }
    let shards_json = if shard_rows.is_empty() {
        String::new()
    } else {
        format!("\"shards\":[\n{}\n],", shard_rows.join(",\n"))
    };
    // --small-tier: the Small-scale gather-traffic tier (ROADMAP item
    // 1 acceptance: W+GA moves >= 2x fewer gather bytes than W with
    // makespan no worse). One pass per design — the numbers recorded
    // are deterministic byte counts and makespans, not wall times.
    let mut small_tier_json = String::new();
    if o.small_tier {
        let tier_cols = [DesignPoint::W, DesignPoint::WGather];
        let mut tier_rows = Vec::new();
        let mut gathers = [0u64; 2];
        let mut app_gathers: Vec<Vec<f64>> = vec![Vec::new(); 2];
        let mut makespans: Vec<Vec<f64>> = vec![Vec::new(); 2];
        println!(
            "\n{:<8}{:>14}{:>18}{:>12}   (Small-scale gather tier)",
            "design", "gather KB", "geomean ticks", "events"
        );
        for (ci, d) in tier_cols.iter().enumerate() {
            let mut ev = 0u64;
            for app in &apps {
                let r = ndpb_bench::run_one(app, *d, SystemConfig::table1(), Scale::Small);
                let g = r.metrics.final_value("ledger/comm/gather").unwrap_or(0);
                gathers[ci] += g;
                app_gathers[ci].push(g.max(1) as f64);
                makespans[ci].push(r.makespan.ticks() as f64);
                ev += r.events;
            }
            let gm = geomean(&makespans[ci]);
            println!(
                "{:<8}{:>14}{:>18.0}{:>12}",
                d.to_string(),
                gathers[ci] >> 10,
                gm,
                ev
            );
            tier_rows.push(format!(
                "{{\"design\":\"{d}\",\"gather_bytes\":{},\"geomean_makespan_ticks\":{gm:.1},\"events\":{ev}}}",
                gathers[ci]
            ));
        }
        // Geomean of per-app gather ratios (== ratio of geomeans), the
        // same statistic the invariants suite pins — a sum would let
        // one heavy app's traffic floor mask the per-app reduction.
        let reduction = geomean(&app_gathers[0]) / geomean(&app_gathers[1]);
        let perf = geomean(&makespans[0]) / geomean(&makespans[1]);
        println!("gather reduction W+GA vs W: {reduction:.2}x   W+GA speedup over W: {perf:.3}x");
        // Non-gating delta against the committed baseline's small tier.
        if let Ok(text) = std::fs::read_to_string("docs/repro/BENCH_repro.json") {
            if let Ok(base) = ndpb_bench::json::Json::parse(&text) {
                if let Some(br) = base
                    .get("small_tier")
                    .and_then(|t| t.get("gather_reduction_x"))
                    .and_then(|v| v.as_f64())
                {
                    println!(
                        "[baseline small-tier gather reduction {br:.2}x, this run {reduction:.2}x]"
                    );
                }
            }
        }
        small_tier_json = format!(
            "\"small_tier\":{{\"scale\":\"Small\",\"designs\":[\n{}\n],\"gather_reduction_x\":{reduction:.3},\"speedup_x\":{perf:.4}}},",
            tier_rows.join(",\n")
        );
    }
    // --profile: one extra profiled pass per design, run *after* the
    // timing reps so the profiler's clock reads never contaminate the
    // medians above. Attribution: queue ops vs. handler dispatch vs.
    // finalize, plus the same-tick run-length histogram that shows what
    // batched dispatch is fusing (DESIGN.md §3c).
    let mut profile_rows: Vec<(String, ndpb_core::result::ProfileStats)> = Vec::new();
    let mut profile_json = String::new();
    if o.profile {
        println!(
            "\n{:<8}{:>9}{:>10}{:>11}{:>11}{:>12}   (profiled pass)",
            "design", "queue%", "dispatch%", "finalize%", "ev/batch", "batches"
        );
        let mut agg_rows = Vec::new();
        for col in &cols {
            let mut agg = ndpb_core::result::ProfileStats::default();
            for app in &apps {
                let r = ndpb_bench::run_profiled(app, *col, SystemConfig::table1(), scale);
                agg.merge(
                    r.profile
                        .as_ref()
                        .expect("profiled run must report a profile"),
                );
            }
            let total = (agg.queue_ns + agg.dispatch_ns + agg.finalize_ns).max(1) as f64;
            println!(
                "{:<8}{:>8.1}%{:>9.1}%{:>10.1}%{:>11.2}{:>12}",
                col.label(),
                100.0 * agg.queue_ns as f64 / total,
                100.0 * agg.dispatch_ns as f64 / total,
                100.0 * agg.finalize_ns as f64 / total,
                agg.events_per_batch(),
                agg.batches
            );
            agg_rows.push(format!(
                "{{\"design\":\"{}\",\"stats\":{}}}",
                col.label(),
                agg.to_json()
            ));
            profile_rows.push((col.label(), agg));
        }
        let mut hist = [0u64; 8];
        for (_, p) in &profile_rows {
            for (h, v) in hist.iter_mut().zip(p.run_len_hist) {
                *h += v;
            }
        }
        let total_batches: u64 = hist.iter().sum::<u64>().max(1);
        let line: Vec<String> = ndpb_core::result::ProfileStats::RUN_LEN_LABELS
            .iter()
            .zip(hist)
            .map(|(l, v)| format!("{l}:{:.1}%", 100.0 * v as f64 / total_batches as f64))
            .collect();
        println!("events-per-pop histogram  {}", line.join("  "));
        profile_json = format!("\"profile\":[\n{}\n],", agg_rows.join(",\n"));
    }
    // --full-tier: the first Scale::Full per-design tier. Full runs
    // cost minutes, not milliseconds, so the rep count is budgeted
    // (default 1 with --quick, else 2) — the numbers are a trajectory
    // marker, not a micro-benchmark.
    let mut full_rows: Vec<(String, u64, f64)> = Vec::new();
    let mut full_json = String::new();
    if o.full_tier {
        let full_reps = if o.quick { 1 } else { 2 };
        println!(
            "\n== Full tier: {} apps x {} designs, {} rep(s), scale Full ==",
            apps.len(),
            cols.len(),
            full_reps
        );
        let mut fwalls: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
        let mut fevents: Vec<u64> = vec![0; cols.len()];
        for rep in 0..full_reps {
            for (ci, col) in cols.iter().enumerate() {
                let start = std::time::Instant::now();
                let mut ev = 0u64;
                for app in &apps {
                    let r = match col {
                        Column::Ndp(d) => {
                            ndpb_bench::run_one(app, *d, SystemConfig::table1(), Scale::Full)
                        }
                        Column::Host => {
                            ndpb_bench::run_host(app, SystemConfig::table1(), Scale::Full)
                        }
                    };
                    ev += r.events;
                }
                fwalls[ci].push(start.elapsed().as_secs_f64());
                if rep == 0 {
                    fevents[ci] = ev;
                } else {
                    assert_eq!(fevents[ci], ev, "nondeterministic event count for {col:?}");
                }
            }
        }
        println!(
            "{:<8}{:>12}{:>14}{:>16}",
            "design", "events", "median s", "events/sec"
        );
        let mut frows = Vec::new();
        let (mut ftotal_events, mut ftotal_median) = (0u64, 0.0f64);
        for (ci, col) in cols.iter().enumerate() {
            let med = ndpb_bench::timing::median(&fwalls[ci]);
            let eps = if med > 0.0 {
                fevents[ci] as f64 / med
            } else {
                0.0
            };
            println!(
                "{:<8}{:>12}{:>14.4}{:>16.0}",
                col.label(),
                fevents[ci],
                med,
                eps
            );
            ftotal_events += fevents[ci];
            ftotal_median += med;
            full_rows.push((col.label(), fevents[ci], eps));
            frows.push(format!(
                "{{\"design\":\"{}\",\"events\":{},\"median_wall_seconds\":{:.6},\"events_per_sec\":{:.1}}}",
                col.label(),
                fevents[ci],
                med,
                eps
            ));
        }
        let ftotal_eps = if ftotal_median > 0.0 {
            ftotal_events as f64 / ftotal_median
        } else {
            0.0
        };
        println!(
            "{:<8}{:>12}{:>14.4}{:>16.0}",
            "total", ftotal_events, ftotal_median, ftotal_eps
        );
        full_json = format!(
            "\"full_tier\":{{\"scale\":\"Full\",\"reps\":{full_reps},\"designs\":[\n{}\n],\"total_events\":{ftotal_events},\"total_median_wall_seconds\":{ftotal_median:.6},\"total_events_per_sec\":{ftotal_eps:.1}}},",
            frows.join(",\n")
        );
    }
    // Honest context for the scaling rungs: speedup numbers from a
    // host with fewer threads than shards are inline-lane numbers.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let body = format!(
        "{{\"bench\":\"fig10\",\"scale\":\"{:?}\",\"reps\":{},\"host_parallelism\":{host_parallelism},\"apps\":[{}],\"designs\":[\n{}\n],{}{}{}{}\"total_events\":{},\"total_median_wall_seconds\":{:.6},\"total_events_per_sec\":{:.1}}}\n",
        scale,
        reps,
        apps.iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(","),
        rows.join(",\n"),
        shards_json,
        small_tier_json,
        profile_json,
        full_json,
        total_events,
        total_median,
        total_eps
    );
    let path = o.json.as_deref().unwrap_or("BENCH_repro.json");
    match std::fs::write(path, &body) {
        Ok(()) => eprintln!("[wrote {path}]"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    print_baseline_delta(&stat_rows, scale, &profile_rows, &full_rows);
}

/// Compares a `repro bench` run against the committed baseline in
/// `docs/repro/BENCH_repro.json`, when one exists. Throughput ratios
/// are informational (machines differ); event-count drift is called
/// out loudly because the simulator is deterministic — a changed count
/// means changed behaviour, not noise.
fn print_baseline_delta(
    rows: &[(String, u64, f64)],
    scale: Scale,
    profile_rows: &[(String, ndpb_core::result::ProfileStats)],
    full_rows: &[(String, u64, f64)],
) {
    let path = std::path::Path::new("docs/repro/BENCH_repro.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(base) = ndpb_bench::json::Json::parse(&text) else {
        eprintln!(
            "[baseline {} is not valid JSON; skipping delta]",
            path.display()
        );
        return;
    };
    let base_scale = base.str_field("scale").unwrap_or("?");
    if base_scale != format!("{scale:?}") {
        eprintln!(
            "[baseline {} is scale {base_scale}, this run is {scale:?}; skipping delta]",
            path.display()
        );
        return;
    }
    let Some(designs) = base.get("designs").and_then(|d| d.as_arr()) else {
        return;
    };
    println!(
        "\nvs committed baseline ({}, reps={}):",
        path.display(),
        base.u64_field("reps").unwrap_or(0)
    );
    println!(
        "{:<8}{:>14}{:>14}{:>10}",
        "design", "base ev/s", "now ev/s", "ratio"
    );
    for (label, events, eps) in rows {
        let Some(b) = designs
            .iter()
            .find(|d| d.str_field("design") == Some(label.as_str()))
        else {
            println!("{label:<8}{:>14}{:>14.0}{:>10}", "-", eps, "new");
            continue;
        };
        let base_eps = b
            .get("events_per_sec")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let ratio = if base_eps > 0.0 { eps / base_eps } else { 0.0 };
        print!("{label:<8}{base_eps:>14.0}{eps:>14.0}{ratio:>9.2}x");
        match b.u64_field("events") {
            Some(be) if be != *events => {
                println!("   EVENT-COUNT DRIFT: {be} -> {events}");
            }
            _ => println!(),
        }
    }
    // Newer sections diff only when both sides carry them: old
    // baselines (and runs without the flags) silently skip.
    if !profile_rows.is_empty() {
        if let Some(base_prof) = base.get("profile").and_then(|p| p.as_arr()) {
            println!(
                "\nprofile vs baseline: {:<8}{:>12}{:>12}{:>14}{:>14}",
                "design", "base q%", "now q%", "base ev/b", "now ev/b"
            );
            for (label, p) in profile_rows {
                let Some(stats) = base_prof
                    .iter()
                    .find(|d| d.str_field("design") == Some(label.as_str()))
                    .and_then(|d| d.get("stats"))
                else {
                    continue;
                };
                let f = |k: &str| stats.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
                let base_total = (f("queue_ns") + f("dispatch_ns") + f("finalize_ns")).max(1.0);
                let now_total = (p.queue_ns + p.dispatch_ns + p.finalize_ns).max(1) as f64;
                println!(
                    "{:<29}{:>11.1}%{:>11.1}%{:>14.2}{:>14.2}",
                    label,
                    100.0 * f("queue_ns") / base_total,
                    100.0 * p.queue_ns as f64 / now_total,
                    f("events_per_batch"),
                    p.events_per_batch()
                );
            }
        }
    }
    if !full_rows.is_empty() {
        if let Some(base_full) = base
            .get("full_tier")
            .and_then(|t| t.get("designs"))
            .and_then(|d| d.as_arr())
        {
            println!(
                "\nfull tier vs baseline: {:<8}{:>14}{:>14}{:>10}",
                "design", "base ev/s", "now ev/s", "ratio"
            );
            for (label, events, eps) in full_rows {
                let Some(b) = base_full
                    .iter()
                    .find(|d| d.str_field("design") == Some(label.as_str()))
                else {
                    continue;
                };
                let base_eps = b
                    .get("events_per_sec")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                let ratio = if base_eps > 0.0 { eps / base_eps } else { 0.0 };
                print!("{label:<31}{base_eps:>14.0}{eps:>14.0}{ratio:>9.2}x");
                match b.u64_field("events") {
                    Some(be) if be != *events => {
                        println!("   EVENT-COUNT DRIFT: {be} -> {events}");
                    }
                    _ => println!(),
                }
            }
        }
    }
}

/// `repro audit`: fully-audited B-vs-W runs with the per-cause traffic
/// ledger broken down Figure-13-style. Every epoch boundary checks
/// message conservation, toArrive balance, dataBorrowed inclusivity,
/// ledger totals and bus sanity; any violation aborts the run, so a
/// completed table doubles as an invariant certificate.
fn audit_breakdown(o: &Opts) {
    println!("== Traffic ledger: per-cause DRAM data movement, B vs W (audited) ==");
    println!("(W adds work stealing over B; the ledger shows where the extra bytes");
    println!(" go — scheduled-task mail, block migration, return traffic.)\n");
    let apps = app_refs(o);
    let cols = [
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::WGather),
    ];
    let m = run_matrix(
        &apps,
        &cols,
        || {
            let mut c = SystemConfig::table1();
            c.audit = AuditLevel::Full;
            c
        },
        o.scale,
    );
    let groups: [(&str, &[&str]); 6] = [
        ("taskq", &["ledger/comm/taskq"]),
        (
            "mailbox",
            &[
                "ledger/comm/mail_task",
                "ledger/comm/mail_sched",
                "ledger/comm/mail_data",
                "ledger/comm/mail_return",
            ],
        ),
        ("gather", &["ledger/comm/gather"]),
        ("scatter", &["ledger/comm/scatter"]),
        (
            "host",
            &["ledger/comm/host_gather", "ledger/comm/host_scatter"],
        ),
        ("rowclone", &["ledger/comm/rowclone"]),
    ];
    let bytes = |r: &ndpb_core::RunResult, names: &[&str]| -> u64 {
        names.iter().filter_map(|n| r.metrics.final_value(n)).sum()
    };
    print!("{:<8}{:<8}", "app", "design");
    for (g, _) in &groups {
        print!("{g:>10}");
    }
    println!("{:>10}{:>12}", "total", "makespan");
    for (i, app) in apps.iter().enumerate() {
        for (j, c) in cols.iter().enumerate() {
            let r = &m[i][j];
            print!("{:<8}{:<8}", app, c.label());
            for (_, names) in &groups {
                print!("{:>10}", bytes(r, names) >> 10);
            }
            println!(
                "{:>10}{:>10.1}us",
                r.comm_dram_bytes >> 10,
                r.makespan.as_ns() / 1000.0
            );
        }
    }
    println!("(traffic columns in KB; the ledger rows sum to `total` exactly —");
    println!(" the auditor checks that identity at every epoch)\n");
    println!("W vs B per cause (geomean bytes ratio; >1 = W moves more):");
    for (g, names) in &groups {
        let ratios: Vec<f64> = (0..apps.len())
            .map(|i| bytes(&m[i][1], names).max(1) as f64 / bytes(&m[i][0], names).max(1) as f64)
            .collect();
        println!("  {g:<10}{:>8.2}x", geomean(&ratios));
    }
    let perf: Vec<f64> = (0..apps.len())
        .map(|i| m[i][0].makespan.ticks() as f64 / m[i][1].makespan.ticks() as f64)
        .collect();
    let comm: Vec<f64> = (0..apps.len())
        .map(|i| m[i][1].comm_dram_bytes.max(1) as f64 / m[i][0].comm_dram_bytes.max(1) as f64)
        .collect();
    println!(
        "\nW speedup over B (geomean): {:.2}x   W/B total comm bytes: {:.2}x",
        geomean(&perf),
        geomean(&comm)
    );
    println!("auditor: zero violations (a violation would have aborted the sweep)");
}

/// `repro gather`: the gather-cost-aware stealing ablation (ROADMAP
/// item 1 / DESIGN.md §10) — a fig10-analog sweep over B, the W
/// ablation ladder (byte budget, lent preference, both) and O±GA, with
/// the per-design `ledger/comm/gather` bytes that motivated the policy.
/// The ledger rows are always registered, so no `--audit` is needed.
fn gather_aware(o: &Opts) {
    println!(
        "== Gather-cost-aware stealing: W ablations + O, scale {:?} ==",
        o.scale
    );
    println!("(steal batches budgeted by wire bytes; tasks for already-lent blocks");
    println!(
        " forward task-only — see DESIGN.md §10; budget {} x G_xfer per W_th)\n",
        o.steal_budget
            .unwrap_or_else(|| SystemConfig::table1().steal_budget_gxfer)
    );
    let apps = app_refs(o);
    let cols = [
        Column::Ndp(DesignPoint::B),
        Column::Ndp(DesignPoint::W),
        Column::Ndp(DesignPoint::WByte),
        Column::Ndp(DesignPoint::WLent),
        Column::Ndp(DesignPoint::WGather),
        Column::Ndp(DesignPoint::O),
        Column::Ndp(DesignPoint::OGather),
    ];
    let steal_budget = o.steal_budget;
    let m = run_matrix(
        &apps,
        &cols,
        move || {
            let mut c = SystemConfig::table1();
            if let Some(b) = steal_budget {
                c.steal_budget_gxfer = b;
            }
            c
        },
        o.scale,
    );
    dump_json(o, &m);
    print!("{}", format_speedup_table(&apps, &cols, &m));
    let gather = |r: &ndpb_core::RunResult| -> u64 {
        r.metrics.final_value("ledger/comm/gather").unwrap_or(0)
    };
    println!("\ngather traffic (KB; the bytes the byte budget rations):");
    print!("{:<8}", "app");
    for c in &cols {
        print!("{:>10}", c.label());
    }
    println!();
    for (i, app) in apps.iter().enumerate() {
        print!("{app:<8}");
        for cell in &m[i][..cols.len()] {
            print!("{:>10}", gather(cell) >> 10);
        }
        println!();
    }
    // Per-design geomean ratios vs plain W: the acceptance metric is
    // W+GA moving >= 2x fewer gather bytes at makespan no worse.
    println!("\nvs W (geomean over apps; gather <1 = fewer bytes, perf >1 = faster):");
    println!("{:<10}{:>12}{:>12}", "design", "gather", "perf");
    for (j, c) in cols.iter().enumerate() {
        if c.label() == "W" {
            continue;
        }
        let gr: Vec<f64> = (0..apps.len())
            .map(|i| gather(&m[i][j]).max(1) as f64 / gather(&m[i][1]).max(1) as f64)
            .collect();
        let perf: Vec<f64> = (0..apps.len())
            .map(|i| m[i][1].makespan.ticks() as f64 / m[i][j].makespan.ticks() as f64)
            .collect();
        println!(
            "{:<10}{:>11.3}x{:>11.3}x",
            c.label(),
            geomean(&gr),
            geomean(&perf)
        );
    }
    let wga_gather: Vec<f64> = (0..apps.len())
        .map(|i| gather(&m[i][1]).max(1) as f64 / gather(&m[i][4]).max(1) as f64)
        .collect();
    let wga_perf: Vec<f64> = (0..apps.len())
        .map(|i| m[i][1].makespan.ticks() as f64 / m[i][4].makespan.ticks() as f64)
        .collect();
    println!(
        "\ngather reduction W+GA vs W: {:.2}x   W+GA speedup over W: {:.3}x",
        geomean(&wga_gather),
        geomean(&wga_perf)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Flags-first invocation (`repro --trace out.json`) implies the
    // instrumented run, so tracing needs no subcommand.
    let cmd = match args.first().map(String::as_str) {
        Some(f) if f.starts_with("--") => "trace",
        Some(c) => c,
        None => "all",
    };
    let skip = usize::from(!args.first().is_none_or(|a| a.starts_with("--")));
    let o = parse_opts(&args[skip.min(args.len())..]);
    configure_sweep(&o);
    let start = std::time::Instant::now();
    match cmd {
        "trace" => traced_run(&o),
        "table1" => table1(),
        "table2" => table2(),
        "fig2" => fig2(&o),
        "fig10" => fig10(&o),
        "fig11" => fig11(&o),
        "fig12" => fig12(&o),
        "fig13" => fig13(&o),
        "fig14a" => fig14a(&o),
        "fig14b" => fig14b(&o),
        "fig15" => fig15(&o),
        "fig16a" => fig16a(&o),
        "fig16b" => fig16b(&o),
        "fig16c" => fig16cd(&o, true),
        "fig16d" => fig16cd(&o, false),
        "split-dimm" => split_dimm(&o),
        "dimm-link" => dimm_link(&o),
        "audit" => audit_breakdown(&o),
        "gather" => gather_aware(&o),
        "bench" => bench_engine(&o),
        "serve" => serve(&o),
        "all" => {
            table1();
            println!();
            table2();
            for f in [
                fig2 as fn(&Opts),
                fig10,
                fig11,
                fig12,
                fig13,
                fig14a,
                fig14b,
                fig15,
                fig16a,
                fig16b,
            ] {
                println!();
                f(&o);
            }
            println!();
            fig16cd(&o, true);
            println!();
            fig16cd(&o, false);
            println!();
            split_dimm(&o);
            println!();
            dimm_link(&o);
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            eprintln!("usage: repro <table1|table2|fig2|fig10|fig11|fig12|fig13|fig14a|fig14b|fig15|fig16a|fig16b|fig16c|fig16d|split-dimm|dimm-link|audit|gather|bench|serve|trace|all> [--tiny|--small|--full] [--apps a,b,c] [--jobs N] [--cache-dir path] [--no-cache] [--audit] [--steal-budget N] [--json path] [--trace path] [--metrics-json path] [--reps N] [--quick] [--small-tier] [--profile] [--full-tier] [--shards N] [--port N] [--max-queue N] [--max-points N]");
            std::process::exit(2);
        }
    }
    let engine = ndpb_bench::sweep::global();
    if let Some(summary) = engine.summary() {
        eprintln!("\n{summary}");
    }
    // For sweep subcommands, `--metrics-json` dumps the engine's
    // counters (cache hits/misses, per-worker progress, one snapshot
    // per sweep); the `trace` subcommand already wrote the simulation's
    // own per-epoch metrics above.
    if cmd != "trace" {
        if let Some(path) = &o.metrics_json {
            let report = engine.metrics().report();
            match std::fs::write(path, report.to_json()) {
                Ok(()) => eprintln!("[wrote sweep metrics to {path}]"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
    eprintln!("\n[{} completed in {:.1?}]", cmd, start.elapsed());
    if cmd == "all" {
        let (flag, file) = match o.scale {
            Scale::Full => ("--full", "docs/repro/repro_full.txt"),
            _ => ("--small", "docs/repro/repro_small.txt"),
        };
        eprintln!("[reference outputs live in docs/repro/; regenerate with:");
        eprintln!(" cargo run --release --bin repro -- all {flag} > {file}]");
    }
}
