//! Content-addressed on-disk result cache for the sweep engine.
//!
//! Every sweep point is identified by a 64-bit FNV-1a key over
//! everything that determines its outcome: the cache format version,
//! the crate version, the application name, the design-column label,
//! the workload scale, and the full [`SystemConfig::fingerprint`]
//! (which folds in geometry, timing, energy, sketch, trigger policy,
//! DIMM-Link mode and the master seed). Two points with the same key
//! would run byte-identical simulations, so their `RunResult` can be
//! reused from disk.
//!
//! The cached document must reproduce the in-memory result *exactly* —
//! `repro` output printed from a cache hit has to be byte-identical to
//! output printed from a live run. Integers are stored plainly; every
//! `f64` is stored as its IEEE-754 bit pattern (a `u64`), because a
//! decimal rendering like `{:.6}` cannot round-trip the low mantissa
//! bits. A human-readable decimal copy rides along for `git diff` /
//! eyeballing but is ignored by the decoder.
//!
//! Decoding is fail-open: any parse error, format-version mismatch or
//! missing field is reported as a cache miss and the entry is
//! re-simulated and overwritten. A stale or corrupt cache can cost
//! time, never correctness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ndpb_core::config::SystemConfig;
use ndpb_core::result::RunResult;
use ndpb_dram::EnergyBreakdown;
use ndpb_sim::{Fnv1a64, SimTime};
use ndpb_trace::{MetricsReport, MetricsSnapshot};
use ndpb_workloads::Scale;

use crate::json::Json;

/// Bump when the cached document layout changes; old entries then miss
/// and are regenerated instead of being misread.
pub const CACHE_FORMAT: u32 = 1;

/// The cache key for one sweep point.
pub fn point_key(app: &str, column_label: &str, scale: Scale, cfg: &SystemConfig) -> u64 {
    let mut h = Fnv1a64::new();
    h.write_u64(CACHE_FORMAT as u64);
    // Simulator behaviour may change between releases; never serve a
    // previous version's results.
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_str(app);
    h.write_str(column_label);
    h.write_str(&format!("{scale:?}"));
    h.write_u64(cfg.fingerprint());
    h.finish()
}

/// Serializes a [`RunResult`] as the cache/golden JSON document:
/// pretty-printed one field per line (diff-friendly), floats duplicated
/// as decimal (for humans) and bit pattern (for exact decode).
///
/// The `trace` field is deliberately not persisted — traced runs bypass
/// the cache entirely, and untraced runs have an empty trace.
pub fn encode_result(r: &RunResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": {CACHE_FORMAT},");
    let _ = writeln!(s, "  \"app\": \"{}\",", escape(&r.app));
    let _ = writeln!(s, "  \"design\": \"{}\",", escape(&r.design));
    let _ = writeln!(s, "  \"makespan_ticks\": {},", r.makespan.ticks());
    let _ = writeln!(s, "  \"avg_unit_ticks\": {},", r.avg_unit_time.ticks());
    let _ = writeln!(s, "  \"max_unit_ticks\": {},", r.max_unit_time.ticks());
    let _ = writeln!(s, "  \"wait_fraction\": {:.6},", r.wait_fraction);
    let _ = writeln!(
        s,
        "  \"wait_fraction_bits\": {},",
        r.wait_fraction.to_bits()
    );
    let _ = writeln!(s, "  \"balance\": {:.6},", r.balance);
    let _ = writeln!(s, "  \"balance_bits\": {},", r.balance.to_bits());
    let _ = writeln!(s, "  \"tasks_executed\": {},", r.tasks_executed);
    let _ = writeln!(s, "  \"tasks_rerouted\": {},", r.tasks_rerouted);
    let _ = writeln!(s, "  \"messages_delivered\": {},", r.messages_delivered);
    let _ = writeln!(s, "  \"rank_bus_bytes\": {},", r.rank_bus_bytes);
    let _ = writeln!(s, "  \"channel_bytes\": {},", r.channel_bytes);
    let _ = writeln!(s, "  \"comm_dram_bytes\": {},", r.comm_dram_bytes);
    let _ = writeln!(s, "  \"local_dram_bytes\": {},", r.local_dram_bytes);
    let _ = writeln!(s, "  \"lb_rounds\": {},", r.lb_rounds);
    let _ = writeln!(s, "  \"blocks_migrated\": {},", r.blocks_migrated);
    let _ = writeln!(
        s,
        "  \"energy_pj\": {{\"core_sram\": {:.1}, \"dram_local\": {:.1}, \"dram_comm\": {:.1}, \"static\": {:.1}}},",
        r.energy.core_sram_pj, r.energy.dram_local_pj, r.energy.dram_comm_pj, r.energy.static_pj
    );
    let _ = writeln!(
        s,
        "  \"energy_bits\": {{\"core_sram\": {}, \"dram_local\": {}, \"dram_comm\": {}, \"static\": {}}},",
        r.energy.core_sram_pj.to_bits(),
        r.energy.dram_local_pj.to_bits(),
        r.energy.dram_comm_pj.to_bits(),
        r.energy.static_pj.to_bits()
    );
    let _ = writeln!(s, "  \"checksum\": {},", r.checksum);
    let _ = writeln!(s, "  \"events\": {},", r.events);
    s.push_str("  \"per_unit_busy\": [");
    for (i, b) in r.per_unit_busy.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{b}");
    }
    s.push_str("],\n");
    // Reuse the existing serde-free writer for the metrics block.
    let _ = writeln!(s, "  \"metrics\": {}", r.metrics.to_json());
    s.push_str("}\n");
    s
}

/// Decodes a document produced by [`encode_result`]. `None` on any
/// mismatch (treated as a cache miss by callers).
pub fn decode_result(text: &str) -> Option<RunResult> {
    let j = Json::parse(text).ok()?;
    if j.u64_field("format")? != CACHE_FORMAT as u64 {
        return None;
    }
    let energy_bits = j.get("energy_bits")?;
    let metrics = decode_metrics(j.get("metrics")?)?;
    Some(RunResult {
        app: j.str_field("app")?.to_string(),
        design: j.str_field("design")?.to_string(),
        makespan: SimTime::from_ticks(j.u64_field("makespan_ticks")?),
        avg_unit_time: SimTime::from_ticks(j.u64_field("avg_unit_ticks")?),
        max_unit_time: SimTime::from_ticks(j.u64_field("max_unit_ticks")?),
        wait_fraction: f64::from_bits(j.u64_field("wait_fraction_bits")?),
        balance: f64::from_bits(j.u64_field("balance_bits")?),
        tasks_executed: j.u64_field("tasks_executed")?,
        tasks_rerouted: j.u64_field("tasks_rerouted")?,
        messages_delivered: j.u64_field("messages_delivered")?,
        rank_bus_bytes: j.u64_field("rank_bus_bytes")?,
        channel_bytes: j.u64_field("channel_bytes")?,
        comm_dram_bytes: j.u64_field("comm_dram_bytes")?,
        local_dram_bytes: j.u64_field("local_dram_bytes")?,
        lb_rounds: j.u64_field("lb_rounds")?,
        blocks_migrated: j.u64_field("blocks_migrated")?,
        energy: EnergyBreakdown {
            core_sram_pj: f64::from_bits(energy_bits.u64_field("core_sram")?),
            dram_local_pj: f64::from_bits(energy_bits.u64_field("dram_local")?),
            dram_comm_pj: f64::from_bits(energy_bits.u64_field("dram_comm")?),
            static_pj: f64::from_bits(energy_bits.u64_field("static")?),
        },
        checksum: j.u64_field("checksum")?,
        events: j.u64_field("events")?,
        per_unit_busy: j
            .get("per_unit_busy")?
            .as_arr()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<u64>>>()?,
        metrics,
        trace: Vec::new(),
        // Cache hits replay a past run; parallel-engine wall-clock
        // stats describe only the run that produced them.
        parallel: None,
        profile: None,
    })
}

fn decode_metrics(j: &Json) -> Option<MetricsReport> {
    let names = j
        .get("metrics")?
        .as_arr()?
        .iter()
        .map(|n| n.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()?;
    let snapshots = j
        .get("snapshots")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(MetricsSnapshot {
                label: s.str_field("label")?.to_string(),
                at_ticks: s.u64_field("t_ticks")?,
                values: s
                    .get("values")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Option<Vec<u64>>>()?,
            })
        })
        .collect::<Option<Vec<MetricsSnapshot>>>()?;
    Some(MetricsReport { names, snapshots })
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A directory of cached results, one file per key.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads the result for `key`, if a valid entry exists.
    pub fn load(&self, key: u64) -> Option<RunResult> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        decode_result(&text)
    }

    /// Stores `result` under `key`, creating the directory if needed.
    /// Writes via a temp file + atomic rename so a crashed run never
    /// leaves a torn entry behind. The temp name is unique per writer
    /// (pid + process-local counter): the server and a concurrent CLI
    /// run may both store the same key into a shared `--cache-dir`, and
    /// with a shared temp name the loser's rename would fail on a file
    /// the winner already moved. Both writers produce identical bytes
    /// for a given key, so last-rename-wins is correct.
    pub fn store(&self, key: u64, result: &RunResult) -> io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            "{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_result(result))?;
        fs::rename(&tmp, self.path_for(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_one;
    use ndpb_core::design::DesignPoint;
    use ndpb_dram::Geometry;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig::with_geometry(Geometry::with_total_ranks(1))
    }

    fn assert_exact_roundtrip(r: &RunResult) {
        let back = decode_result(&encode_result(r)).expect("decode");
        assert_eq!(back.app, r.app);
        assert_eq!(back.design, r.design);
        assert_eq!(back.makespan, r.makespan);
        assert_eq!(back.avg_unit_time, r.avg_unit_time);
        assert_eq!(back.max_unit_time, r.max_unit_time);
        assert_eq!(back.wait_fraction.to_bits(), r.wait_fraction.to_bits());
        assert_eq!(back.balance.to_bits(), r.balance.to_bits());
        assert_eq!(back.tasks_executed, r.tasks_executed);
        assert_eq!(back.per_unit_busy, r.per_unit_busy);
        assert_eq!(back.metrics, r.metrics);
        assert_eq!(
            back.energy.total_pj().to_bits(),
            r.energy.total_pj().to_bits()
        );
        // The byte-identity that matters downstream: printed output of a
        // cache hit equals printed output of the live run.
        assert_eq!(back.to_json(), r.to_json());
        assert_eq!(back.row(), r.row());
        assert_eq!(back.metrics.to_json(), r.metrics.to_json());
    }

    #[test]
    fn roundtrip_is_bit_exact_on_a_real_run() {
        let r = run_one("ll", DesignPoint::O, tiny_cfg(), Scale::Tiny);
        assert!(r.tasks_executed > 0);
        assert_exact_roundtrip(&r);
    }

    #[test]
    fn keys_separate_every_dimension() {
        let cfg = tiny_cfg();
        let base = point_key("ll", "O", Scale::Tiny, &cfg);
        assert_eq!(base, point_key("ll", "O", Scale::Tiny, &cfg), "stable");
        assert_ne!(base, point_key("ht", "O", Scale::Tiny, &cfg), "app");
        assert_ne!(base, point_key("ll", "B", Scale::Tiny, &cfg), "column");
        assert_ne!(base, point_key("ll", "O", Scale::Small, &cfg), "scale");
        let mut other = tiny_cfg();
        other.seed ^= 1;
        assert_ne!(base, point_key("ll", "O", Scale::Tiny, &other), "config");
    }

    #[test]
    fn store_load_and_corruption_handling() {
        let dir = std::env::temp_dir().join(format!("ndpb-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let r = run_one("spmv", DesignPoint::B, tiny_cfg(), Scale::Tiny);
        let key = point_key("spmv", "B", Scale::Tiny, &tiny_cfg());
        assert!(cache.load(key).is_none(), "cold cache misses");
        cache.store(key, &r).expect("store");
        let hit = cache.load(key).expect("warm cache hits");
        assert_eq!(hit.to_json(), r.to_json());
        // Corrupt entries miss instead of erroring.
        fs::write(cache.path_for(key), "{\"format\": 1, \"app\": tru").unwrap();
        assert!(cache.load(key).is_none());
        // Entries from a different format version miss.
        let stale =
            encode_result(&r).replacen(&format!("\"format\": {CACHE_FORMAT}"), "\"format\": 0", 1);
        fs::write(cache.path_for(key), stale).unwrap();
        assert!(cache.load(key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_of_one_key_all_succeed() {
        let dir = std::env::temp_dir().join(format!("ndpb-cache-race-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let r = run_one("ll", DesignPoint::C, tiny_cfg(), Scale::Tiny);
        let key = point_key("ll", "C", Scale::Tiny, &tiny_cfg());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..16 {
                        cache.store(key, &r).expect("store under contention");
                    }
                });
            }
        });
        let hit = cache.load(key).expect("entry readable after the race");
        assert_eq!(hit.to_json(), r.to_json());
        // No temp litter left behind, only the entry itself.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(
            leftovers,
            vec![std::ffi::OsString::from(format!("{key:016x}.json"))]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_missing_fields() {
        assert!(decode_result("{}").is_none());
        assert!(decode_result("not json").is_none());
        assert!(decode_result("{\"format\": 1}").is_none());
    }
}
