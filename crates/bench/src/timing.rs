//! Minimal wall-clock bench harness built on `std::time::Instant`.
//!
//! Replaces the former Criterion dependency so the workspace builds
//! fully offline. The benches under `benches/` are `harness = false`
//! binaries that call [`bench`] directly; output is one line per case,
//! stable enough to eyeball across commits (this is a smoke-level
//! timer, not a statistics engine).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `iters` calls of `f` after one untimed warm-up call and prints
/// `name  iters  total  per-iter`. Returns the mean per-iteration time
/// so callers can assert coarse budgets if they want to.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Duration {
    let _ = black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per = total / iters.max(1);
    println!("{name:<44} {iters:>5} iters  {total:>12.3?} total  {per:>12.3?}/iter");
    per
}

/// Median of a sample (average of the middle two for even sizes).
/// Returns `0.0` for an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in timing samples"));
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    fn bench_runs_and_returns_mean() {
        let mut calls = 0u32;
        let per = bench("noop", 8, || calls += 1);
        // warm-up + 8 timed iterations
        assert_eq!(calls, 9);
        assert!(per <= Duration::from_secs(1));
    }
}
