//! Minimal wall-clock bench harness built on `std::time::Instant`.
//!
//! Replaces the former Criterion dependency so the workspace builds
//! fully offline. The benches under `benches/` are `harness = false`
//! binaries that call [`bench`] directly; output is one line per case,
//! stable enough to eyeball across commits (this is a smoke-level
//! timer, not a statistics engine).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `iters` calls of `f` after one untimed warm-up call and prints
/// `name  iters  total  per-iter`. Returns the mean per-iteration time
/// so callers can assert coarse budgets if they want to.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Duration {
    let _ = black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per = total / iters.max(1);
    println!("{name:<44} {iters:>5} iters  {total:>12.3?} total  {per:>12.3?}/iter");
    per
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns_mean() {
        let mut calls = 0u32;
        let per = bench("noop", 8, || calls += 1);
        // warm-up + 8 timed iterations
        assert_eq!(calls, 9);
        assert!(per <= Duration::from_secs(1));
    }
}
