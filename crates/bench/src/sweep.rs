//! The sweep engine: a bounded worker pool that fans simulation points
//! across threads, with an optional content-addressed result cache.
//!
//! Every table/figure of the paper is a *sweep*: a list of
//! (application, design column, configuration, scale) points whose
//! simulations are completely independent — each one is single-threaded
//! and deterministic given its config seed. The engine exploits exactly
//! that independence and nothing more:
//!
//! * **Bounded parallelism.** `--jobs N` workers pull point indices
//!   from one shared queue (work stealing over a `Mutex<VecDeque>`;
//!   whichever worker finishes first takes the next point), instead of
//!   the former one-thread-per-cell free-for-all that oversubscribed
//!   the machine on large figures.
//! * **Deterministic merge.** Results are written into a slot vector by
//!   point index, so callers observe the same ordering regardless of
//!   worker count or scheduling. `--jobs 1` and `--jobs 8` produce
//!   byte-identical harness output.
//! * **Result cache.** With a cache directory configured, each point's
//!   [`cache::point_key`] is probed before simulating; hits skip the
//!   simulation entirely and misses are stored after it. A warm rerun
//!   of `repro all` simulates nothing.
//! * **Observability.** Point counts, cache hits/misses, simulations
//!   and per-worker progress all land in a [`SharedMetrics`] table the
//!   harness can snapshot and dump (`sweep/points_total`,
//!   `sweep/cache_hits`, `sweep/cache_misses`, `sweep/simulated`,
//!   `sweep/worker-N/points`).

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread;

use ndpb_core::audit::AuditLevel;
use ndpb_core::config::SystemConfig;
use ndpb_core::result::RunResult;
use ndpb_sim::SimTime;
use ndpb_trace::SharedMetrics;
use ndpb_workloads::Scale;

use crate::cache::{point_key, ResultCache};
use crate::{run_host, run_one, Column};

/// One independent simulation in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Application name (see `ndpb_workloads::APP_NAMES`).
    pub app: String,
    /// Design column to simulate.
    pub column: Column,
    /// Full system configuration (folded into the cache key).
    pub cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
}

impl SweepPoint {
    /// Builds a point.
    pub fn new(app: impl Into<String>, column: Column, cfg: SystemConfig, scale: Scale) -> Self {
        SweepPoint {
            app: app.into(),
            column,
            cfg,
            scale,
        }
    }

    /// The point's content-addressed cache key.
    pub fn key(&self) -> u64 {
        point_key(&self.app, &self.column.label(), self.scale, &self.cfg)
    }

    /// Runs the simulation for this point.
    pub fn simulate(self) -> RunResult {
        match self.column {
            Column::Ndp(d) => run_one(&self.app, d, self.cfg, self.scale),
            Column::Host => run_host(&self.app, self.cfg, self.scale),
        }
    }
}

/// A claim on the result of one point handed to [`Sweeper::submit`].
///
/// Dropping the ticket abandons the result; the simulation still runs
/// to completion (and still populates the cache).
#[derive(Debug)]
pub struct PointTicket {
    rx: mpsc::Receiver<RunResult>,
}

impl PointTicket {
    /// Blocks until the point's simulation finishes.
    ///
    /// # Panics
    ///
    /// Panics if the pool worker died (a simulation panicked) before
    /// delivering the result.
    pub fn wait(self) -> RunResult {
        self.rx
            .recv()
            .expect("resident pool worker died before delivering its result")
    }

    /// Non-blocking probe: the result if it is already available.
    pub fn try_wait(&self) -> Option<RunResult> {
        self.rx.try_recv().ok()
    }
}

/// Shared state of the resident pool: a job queue plus the condvar
/// workers park on while it is empty.
#[derive(Debug, Default)]
struct ResidentPool {
    queue: Mutex<VecDeque<(SweepPoint, mpsc::Sender<RunResult>)>>,
    ready: Condvar,
}

/// The sweep executor: worker count, optional cache, shared metrics.
#[derive(Debug)]
pub struct Sweeper {
    jobs: usize,
    cache: Option<ResultCache>,
    audit: Option<AuditLevel>,
    shards: Option<usize>,
    metrics: SharedMetrics,
    sweeps_run: AtomicU64,
    resident: OnceLock<Arc<ResidentPool>>,
}

impl Sweeper {
    /// An engine with `jobs` workers and no cache.
    pub fn new(jobs: usize) -> Self {
        Sweeper {
            jobs: jobs.max(1),
            cache: None,
            audit: None,
            shards: None,
            metrics: SharedMetrics::new(),
            sweeps_run: AtomicU64::new(0),
            resident: OnceLock::new(),
        }
    }

    /// Enables the on-disk result cache rooted at `dir`.
    pub fn with_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = Some(ResultCache::new(dir));
        self
    }

    /// Forces every point's [`AuditLevel`] (the `repro --audit` flag).
    ///
    /// The override is applied *before* the cache key is computed — the
    /// audit level is part of `SystemConfig::fingerprint`, so an
    /// audited sweep is never satisfied by a cached unaudited result
    /// (which would silently skip the invariant checks).
    pub fn with_audit(mut self, level: AuditLevel) -> Self {
        self.audit = Some(level);
        self
    }

    /// The forced audit level, if any.
    pub fn audit(&self) -> Option<AuditLevel> {
        self.audit
    }

    /// Forces every point's shard count (the `repro --shards` flag).
    ///
    /// Unlike [`with_audit`](Self::with_audit), this must NOT move the
    /// cache key: shard count is observationally invisible
    /// (`SystemConfig::fingerprint` normalizes it away), so serial and
    /// sharded runs share one cache namespace — a result stored at
    /// `shards=1` satisfies `--shards 4` and vice versa.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// The forced shard count, if any.
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache directory, if caching is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache.as_ref().map(ResultCache::dir)
    }

    /// The engine's metrics table (sweep counters, worker progress).
    pub fn metrics(&self) -> &SharedMetrics {
        &self.metrics
    }

    /// Runs all points and returns their results in input order.
    ///
    /// Cache probing happens serially up front (it is pure file I/O);
    /// only the misses go to the worker pool. The output is a pure
    /// function of `points` — worker count and scheduling never show.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any simulation.
    pub fn run(&self, points: Vec<SweepPoint>) -> Vec<RunResult> {
        let m = &self.metrics;
        let total_id = m.register("sweep/points_total");
        let hits_id = m.register("sweep/cache_hits");
        let miss_id = m.register("sweep/cache_misses");
        let sim_id = m.register("sweep/simulated");
        m.add(total_id, points.len() as u64);

        let mut slots: Vec<Option<RunResult>> = (0..points.len()).map(|_| None).collect();
        let mut pending: VecDeque<(usize, SweepPoint)> = VecDeque::new();
        for (i, mut p) in points.into_iter().enumerate() {
            if let Some(level) = self.audit {
                p.cfg.audit = level;
            }
            if let Some(shards) = self.shards {
                p.cfg.shards = shards;
            }
            match self.cache.as_ref().and_then(|c| c.load(p.key())) {
                Some(hit) => {
                    m.inc(hits_id);
                    slots[i] = Some(hit);
                }
                None => {
                    m.inc(miss_id);
                    pending.push_back((i, p));
                }
            }
        }

        let workers = self.jobs.min(pending.len());
        if workers > 0 {
            // Register worker gauges serially so metric column order
            // does not depend on thread scheduling.
            let worker_ids: Vec<_> = (0..workers)
                .map(|w| m.register(&format!("sweep/worker-{w}/points")))
                .collect();
            let queue = Mutex::new(pending);
            let (tx, rx) = mpsc::channel::<(usize, RunResult)>();
            thread::scope(|s| {
                for &worker_id in &worker_ids {
                    let tx = tx.clone();
                    let queue = &queue;
                    let metrics = m.clone();
                    let cache = self.cache.as_ref();
                    s.spawn(move || loop {
                        let job = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                        let Some((idx, point)) = job else { break };
                        let key = point.key();
                        let result = point.simulate();
                        if let Some(c) = cache {
                            // Best-effort: an unwritable cache directory
                            // slows reruns down, it does not fail them.
                            let _ = c.store(key, &result);
                        }
                        metrics.inc(sim_id);
                        metrics.inc(worker_id);
                        if tx.send((idx, result)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (idx, result) in rx {
                    slots[idx] = Some(result);
                }
            });
        }

        let seq = self.sweeps_run.fetch_add(1, Ordering::Relaxed);
        m.snapshot(format!("sweep-{seq}"), SimTime::ZERO);
        slots
            .into_iter()
            .map(|s| s.expect("sweep worker died before delivering its result"))
            .collect()
    }

    /// Probes the result cache for `point` without scheduling anything.
    ///
    /// The audit override is applied before the key is computed, exactly
    /// as [`run`](Self::run) and [`submit`](Self::submit) do, so a probe
    /// and a later submit of the same point agree on the key. A hit
    /// counts into `sweep/points_total` and `sweep/cache_hits`; a miss
    /// counts nothing (the caller is expected to `submit`, which does).
    pub fn cached(&self, point: &SweepPoint) -> Option<RunResult> {
        let cache = self.cache.as_ref()?;
        let key = match self.audit {
            Some(level) => {
                let mut p = point.clone();
                p.cfg.audit = level;
                p.key()
            }
            // No shards override here: shard count never moves the key.
            None => point.key(),
        };
        let hit = cache.load(key)?;
        let m = &self.metrics;
        m.inc(m.register("sweep/points_total"));
        m.inc(m.register("sweep/cache_hits"));
        Some(hit)
    }

    /// Schedules one point on the engine's *resident* pool and returns
    /// a ticket for its result.
    ///
    /// Unlike [`run`](Self::run) — which spawns scoped workers for the
    /// duration of one batch — the resident pool's `jobs` workers are
    /// detached daemon threads created on first submit and kept parked
    /// on a condvar between jobs. That is the shape a long-running
    /// server needs: callers submit from many request threads, results
    /// fan back through per-ticket channels, and the pool never has to
    /// be re-warmed. The cache (if configured) is *not* probed here —
    /// callers that want the fast path probe [`cached`](Self::cached)
    /// first — but completed simulations are stored to it.
    pub fn submit(&self, mut point: SweepPoint) -> PointTicket {
        if let Some(level) = self.audit {
            point.cfg.audit = level;
        }
        if let Some(shards) = self.shards {
            point.cfg.shards = shards;
        }
        let m = &self.metrics;
        m.inc(m.register("sweep/points_total"));
        m.inc(m.register("sweep/cache_misses"));
        let pool = self.resident.get_or_init(|| self.spawn_resident_pool());
        let (tx, rx) = mpsc::channel();
        pool.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back((point, tx));
        pool.ready.notify_one();
        PointTicket { rx }
    }

    fn spawn_resident_pool(&self) -> Arc<ResidentPool> {
        let pool = Arc::new(ResidentPool::default());
        let sim_id = self.metrics.register("sweep/simulated");
        for w in 0..self.jobs {
            let worker_id = self
                .metrics
                .register(&format!("sweep/pool-worker-{w}/points"));
            let pool = Arc::clone(&pool);
            let metrics = self.metrics.clone();
            let cache = self.cache.clone();
            // Detached on purpose: the workers live for the rest of the
            // process, parked when idle. Service shutdown drains by
            // waiting on outstanding tickets, not by joining these.
            thread::Builder::new()
                .name(format!("sweep-pool-{w}"))
                .spawn(move || loop {
                    let (point, tx) = {
                        let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            match q.pop_front() {
                                Some(job) => break job,
                                None => q = pool.ready.wait(q).unwrap_or_else(|e| e.into_inner()),
                            }
                        }
                    };
                    let key = point.key();
                    let result = point.simulate();
                    if let Some(c) = &cache {
                        // Best-effort, as in `run`: an unwritable cache
                        // slows reruns down, it does not fail them.
                        let _ = c.store(key, &result);
                    }
                    metrics.inc(sim_id);
                    metrics.inc(worker_id);
                    let _ = tx.send(result);
                })
                .expect("spawn resident pool worker");
        }
        pool
    }

    /// Formats a one-line summary of the engine's lifetime counters
    /// (for the harness's stderr footer). `None` before any sweep ran.
    pub fn summary(&self) -> Option<String> {
        let report = {
            self.metrics.snapshot("summary", SimTime::ZERO);
            self.metrics.report()
        };
        let total = report.final_value("sweep/points_total")?;
        if total == 0 {
            return None;
        }
        let hits = report.final_value("sweep/cache_hits").unwrap_or(0);
        let simulated = report.final_value("sweep/simulated").unwrap_or(0);
        let cache = match self.cache_dir() {
            Some(d) => format!("{}", d.display()),
            None => "off".to_string(),
        };
        Some(format!(
            "[sweep: {total} points, {hits} cache hits, {simulated} simulated, jobs={}, cache={cache}]",
            self.jobs
        ))
    }
}

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

static GLOBAL: OnceLock<Sweeper> = OnceLock::new();

/// Installs the process-wide engine (the `repro` harness calls this
/// once from its CLI flags). Returns `false` if an engine was already
/// installed — the existing one keeps running, matching `OnceLock`
/// semantics.
pub fn configure(sweeper: Sweeper) -> bool {
    GLOBAL.set(sweeper).is_ok()
}

/// The process-wide engine `run_matrix` routes through. Defaults to
/// all hardware threads and **no cache** (library users and tests get
/// pure in-memory behaviour unless they opt in via [`configure`]).
pub fn global() -> &'static Sweeper {
    GLOBAL.get_or_init(|| Sweeper::new(default_jobs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_core::design::DesignPoint;
    use ndpb_dram::Geometry;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig::with_geometry(Geometry::with_total_ranks(1))
    }

    fn points() -> Vec<SweepPoint> {
        ["ll", "spmv", "ht"]
            .iter()
            .flat_map(|&app| {
                [DesignPoint::C, DesignPoint::O]
                    .map(|d| SweepPoint::new(app, Column::Ndp(d), tiny_cfg(), Scale::Tiny))
            })
            .collect()
    }

    fn fingerprint(results: &[RunResult]) -> Vec<String> {
        results.iter().map(RunResult::to_json).collect()
    }

    #[test]
    fn merge_order_matches_input_order_for_any_job_count() {
        let baseline = fingerprint(&Sweeper::new(1).run(points()));
        for jobs in [2, 8, 32] {
            let got = fingerprint(&Sweeper::new(jobs).run(points()));
            assert_eq!(got, baseline, "jobs={jobs} must be invisible");
        }
        // Results land app-major, column-minor, like the input.
        let r = Sweeper::new(4).run(points());
        assert_eq!(r[0].app, "ll");
        assert_eq!(r[0].design, "C");
        assert_eq!(r[1].design, "O");
        assert_eq!(r[4].app, "ht");
    }

    #[test]
    fn warm_cache_simulates_nothing_and_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("ndpb-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cold = Sweeper::new(4).with_cache(&dir);
        let first = fingerprint(&cold.run(points()));
        let report = cold.metrics().report();
        assert_eq!(report.final_value("sweep/cache_hits"), Some(0));
        assert_eq!(report.final_value("sweep/cache_misses"), Some(6));
        assert_eq!(report.final_value("sweep/simulated"), Some(6));

        let warm = Sweeper::new(4).with_cache(&dir);
        let second = fingerprint(&warm.run(points()));
        assert_eq!(second, first, "cache hits must reproduce live output");
        let report = warm.metrics().report();
        assert_eq!(report.final_value("sweep/cache_hits"), Some(6));
        assert_eq!(
            report.final_value("sweep/simulated"),
            Some(0),
            "warm rerun must not simulate"
        );
        assert!(warm.summary().unwrap().contains("6 cache hits"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audited_sweep_bypasses_unaudited_cache_but_matches_results() {
        let dir = std::env::temp_dir().join(format!("ndpb-sweep-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold unaudited sweep populates the cache. `Off` is forced
        // explicitly — under debug builds the config *default* is
        // already `Full`, which would collapse the two key spaces.
        let plain = Sweeper::new(2).with_cache(&dir).with_audit(AuditLevel::Off);
        let baseline = fingerprint(&plain.run(points()));

        // The audited sweep must not consume those entries (the audit
        // level is folded into the key), yet — the auditor being purely
        // observational — its results must be bit-identical.
        let audited = Sweeper::new(2)
            .with_cache(&dir)
            .with_audit(AuditLevel::Full);
        assert_eq!(audited.audit(), Some(AuditLevel::Full));
        let got = fingerprint(&audited.run(points()));
        assert_eq!(got, baseline, "audit must not perturb results");
        let report = audited.metrics().report();
        assert_eq!(
            report.final_value("sweep/cache_hits"),
            Some(0),
            "audited points must never reuse unaudited cache entries"
        );
        assert_eq!(report.final_value("sweep/simulated"), Some(6));

        // A second audited sweep hits the now-audited entries.
        let warm = Sweeper::new(2)
            .with_cache(&dir)
            .with_audit(AuditLevel::Full);
        assert_eq!(fingerprint(&warm.run(points())), baseline);
        assert_eq!(
            warm.metrics().report().final_value("sweep/cache_hits"),
            Some(6)
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_progress_counters_cover_all_simulations() {
        let sw = Sweeper::new(3);
        let n = sw.run(points()).len() as u64;
        let report = sw.metrics().report();
        let per_worker: u64 = report
            .names_under("sweep")
            .filter(|name| name.ends_with("/points"))
            .filter_map(|name| report.final_value(name))
            .sum();
        assert_eq!(per_worker, n, "every point is attributed to a worker");
        assert_eq!(report.final_value("sweep/points_total"), Some(n));
    }

    #[test]
    fn empty_sweep_is_fine_and_summary_reports_nothing() {
        let sw = Sweeper::new(8);
        assert!(sw.run(Vec::new()).is_empty());
        assert!(sw.summary().is_none());
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let sw = Sweeper::new(0);
        assert_eq!(sw.jobs(), 1);
        assert_eq!(sw.run(points()).len(), 6);
    }

    #[test]
    fn submitted_points_match_batch_results() {
        let sw = Sweeper::new(3);
        let batch = fingerprint(&Sweeper::new(1).run(points()));
        let tickets: Vec<_> = points().into_iter().map(|p| sw.submit(p)).collect();
        let got: Vec<String> = tickets.into_iter().map(|t| t.wait().to_json()).collect();
        assert_eq!(got, batch, "resident pool must reproduce batch output");
        let report = sw.metrics().live_report();
        assert_eq!(report.final_value("sweep/simulated"), Some(6));
        assert_eq!(report.final_value("sweep/points_total"), Some(6));
    }

    #[test]
    fn cached_probe_hits_after_submit_and_respects_audit_override() {
        let dir = std::env::temp_dir().join(format!("ndpb-submit-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let sw = Sweeper::new(2).with_cache(&dir).with_audit(AuditLevel::Off);
        let p = SweepPoint::new("ll", Column::Ndp(DesignPoint::C), tiny_cfg(), Scale::Tiny);
        assert!(sw.cached(&p).is_none(), "cold cache misses");
        let live = sw.submit(p.clone()).wait();
        let hit = sw.cached(&p).expect("submit populated the cache");
        assert_eq!(hit.to_json(), live.to_json());

        // A different audit level keys differently, so it misses.
        let audited = Sweeper::new(2)
            .with_cache(&dir)
            .with_audit(AuditLevel::Full);
        assert!(audited.cached(&p).is_none());

        let report = sw.metrics().live_report();
        assert_eq!(report.final_value("sweep/cache_hits"), Some(1));
        assert_eq!(report.final_value("sweep/points_total"), Some(2));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_engine_is_installed_once() {
        // Whichever call wins, subsequent configuration is rejected and
        // the instance stays stable.
        let first = global() as *const Sweeper;
        assert!(!configure(Sweeper::new(2)), "global already initialized");
        assert_eq!(first, global() as *const Sweeper);
    }
}
