//! Randomized tests for the core metadata structures and epoch
//! tracker, checked against reference models and driven by the in-repo
//! deterministic `SimRng`.

use ndpb_core::epoch::EpochTracker;
use ndpb_core::metadata::{LentBitmap, LruTable};
use ndpb_dram::BlockAddr;
use ndpb_sim::SimRng;
use ndpb_tasks::Timestamp;

const CASES: usize = 64;

/// The LRU table agrees with a brute-force reference model on
/// membership, size and eviction choice.
#[test]
fn lru_matches_reference() {
    let mut rng = SimRng::new(0xC0DE_0001);
    for _ in 0..CASES {
        let cap = 1 + rng.next_index(15);
        let n_ops = 1 + rng.next_index(299);
        let mut t: LruTable<u64, u64> = LruTable::new(cap);
        // Reference: Vec of (key, value) ordered by recency (front = LRU).
        let mut model: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n_ops {
            let key = rng.next_below(32);
            let op = rng.next_below(3) as u8;
            match op {
                0 => {
                    // insert key -> key*10
                    let evicted = t.insert(key, key * 10);
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        model.remove(pos);
                        model.push((key, key * 10));
                        assert!(evicted.is_none());
                    } else {
                        model.push((key, key * 10));
                        if model.len() > cap {
                            let lru = model.remove(0);
                            assert_eq!(evicted, Some(lru));
                        } else {
                            assert!(evicted.is_none());
                        }
                    }
                }
                1 => {
                    let got = t.get(&key).copied();
                    let want = model.iter().position(|(k, _)| *k == key).map(|pos| {
                        let e = model.remove(pos);
                        let v = e.1;
                        model.push(e);
                        v
                    });
                    assert_eq!(got, want);
                }
                _ => {
                    let got = t.remove(&key);
                    let want = model
                        .iter()
                        .position(|(k, _)| *k == key)
                        .map(|pos| model.remove(pos).1);
                    assert_eq!(got, want);
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }
}

/// Lent bitmap behaves as a set.
#[test]
fn lent_bitmap_is_a_set() {
    let mut rng = SimRng::new(0xC0DE_0002);
    for _ in 0..CASES {
        let n_ops = 1 + rng.next_index(199);
        let mut b = LentBitmap::new();
        let mut model = std::collections::HashSet::new();
        for _ in 0..n_ops {
            let block = BlockAddr(rng.next_below(64));
            if rng.chance(0.5) {
                assert_eq!(b.set(block), model.insert(block));
            } else {
                assert_eq!(b.clear(block), model.remove(&block));
            }
            assert_eq!(b.count(), model.len());
            assert_eq!(b.is_lent(block), model.contains(&block));
        }
    }
}

/// Epoch tracker: spawning tasks across epochs and completing them
/// in epoch order always terminates with `all_done`, and the current
/// epoch only ever increases.
#[test]
fn epochs_always_drain() {
    let mut rng = SimRng::new(0xC0DE_0003);
    for _ in 0..CASES {
        let n_epochs = 1 + rng.next_index(9);
        let counts: Vec<u64> = (0..n_epochs).map(|_| rng.next_below(10)).collect();
        let mut t = EpochTracker::new();
        let mut total = 0u64;
        for (e, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                t.spawned(Timestamp(e as u32));
                total += 1;
            }
        }
        assert_eq!(t.total_outstanding(), total);
        let mut last_epoch = 0u32;
        for (e, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                assert!(t.is_ready(Timestamp(e as u32)));
                if let Some(next) = t.completed(Timestamp(e as u32)) {
                    assert!(next.0 > last_epoch);
                    last_epoch = next.0;
                }
            }
        }
        assert!(t.all_done());
    }
}
