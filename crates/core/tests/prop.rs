//! Property-based tests for the core metadata structures and epoch
//! tracker, checked against reference models.

use ndpb_core::epoch::EpochTracker;
use ndpb_core::metadata::{LentBitmap, LruTable};
use ndpb_dram::BlockAddr;
use ndpb_tasks::Timestamp;
use proptest::prelude::*;

proptest! {
    /// The LRU table agrees with a brute-force reference model on
    /// membership, size and eviction choice.
    #[test]
    fn lru_matches_reference(
        ops in prop::collection::vec((0u64..32, 0u8..3), 1..300),
        cap in 1usize..16,
    ) {
        let mut t: LruTable<u64, u64> = LruTable::new(cap);
        // Reference: Vec of (key, value) ordered by recency (front = LRU).
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (key, op) in ops {
            match op {
                0 => {
                    // insert key -> key*10
                    let evicted = t.insert(key, key * 10);
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        model.remove(pos);
                        model.push((key, key * 10));
                        prop_assert!(evicted.is_none());
                    } else {
                        model.push((key, key * 10));
                        if model.len() > cap {
                            let lru = model.remove(0);
                            prop_assert_eq!(evicted, Some(lru));
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                    }
                }
                1 => {
                    let got = t.get(&key).copied();
                    let want = model.iter().position(|(k, _)| *k == key).map(|pos| {
                        let e = model.remove(pos);
                        let v = e.1;
                        model.push(e);
                        v
                    });
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let got = t.remove(&key);
                    let want = model
                        .iter()
                        .position(|(k, _)| *k == key)
                        .map(|pos| model.remove(pos).1);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
    }

    /// Lent bitmap behaves as a set.
    #[test]
    fn lent_bitmap_is_a_set(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut b = LentBitmap::new();
        let mut model = std::collections::HashSet::new();
        for (block, set) in ops {
            let block = BlockAddr(block);
            if set {
                prop_assert_eq!(b.set(block), model.insert(block));
            } else {
                prop_assert_eq!(b.clear(block), model.remove(&block));
            }
            prop_assert_eq!(b.count(), model.len());
            prop_assert_eq!(b.is_lent(block), model.contains(&block));
        }
    }

    /// Epoch tracker: spawning tasks across epochs and completing them
    /// in epoch order always terminates with `all_done`, and the current
    /// epoch only ever increases.
    #[test]
    fn epochs_always_drain(counts in prop::collection::vec(0u64..10, 1..10)) {
        let mut t = EpochTracker::new();
        let mut total = 0u64;
        for (e, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                t.spawned(Timestamp(e as u32));
                total += 1;
            }
        }
        prop_assert_eq!(t.total_outstanding(), total);
        let mut last_epoch = 0u32;
        for (e, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                prop_assert!(t.is_ready(Timestamp(e as u32)));
                if let Some(next) = t.completed(Timestamp(e as u32)) {
                    prop_assert!(next.0 > last_epoch);
                    last_epoch = next.0;
                }
            }
        }
        prop_assert!(t.all_done());
    }
}
