//! End-to-end tests of the full system simulation with toy applications.

use ndpb_core::config::SystemConfig;
use ndpb_core::design::DesignPoint;
use ndpb_core::System;
use ndpb_dram::{AddressMap, DataAddr, Geometry, UnitId};
use ndpb_sim::SimTime;
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

fn small_config() -> SystemConfig {
    // One rank (64 units) keeps the tests fast.
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
    c.seed = 42;
    c
}

fn map_of(c: &SystemConfig) -> AddressMap {
    AddressMap::new(&c.geometry, c.g_xfer, c.timing.row_bytes)
}

/// Purely local work: `per_unit` tasks on each of the first `units`
/// units; no cross-unit messages ever.
struct LocalOnly {
    units: u32,
    per_unit: u32,
    bank_bytes: u64,
    executed: u64,
}

impl LocalOnly {
    fn new(c: &SystemConfig, units: u32, per_unit: u32) -> Self {
        LocalOnly {
            units,
            per_unit,
            bank_bytes: c.geometry.bank_bytes,
            executed: 0,
        }
    }
}

impl Application for LocalOnly {
    fn name(&self) -> &str {
        "local-only"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        let mut v = Vec::new();
        for u in 0..self.units {
            for i in 0..self.per_unit {
                v.push(Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    DataAddr(u as u64 * self.bank_bytes + i as u64 * 64),
                    50,
                    TaskArgs::EMPTY,
                ));
            }
        }
        v
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(50);
        ctx.read(task.data, 64);
        self.executed += 1;
    }
    fn checksum(&self) -> u64 {
        self.executed
    }
}

/// A chain: each task hops to the next unit `hops` times. Exercises
/// cross-unit messaging.
struct HopChain {
    total_units: u64,
    bank_bytes: u64,
    hops: u32,
    chains: u32,
    completed: u64,
}

impl HopChain {
    fn new(c: &SystemConfig, chains: u32, hops: u32) -> Self {
        HopChain {
            total_units: c.geometry.total_units() as u64,
            bank_bytes: c.geometry.bank_bytes,
            hops,
            chains,
            completed: 0,
        }
    }
}

impl Application for HopChain {
    fn name(&self) -> &str {
        "hop-chain"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.chains)
            .map(|i| {
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    DataAddr((i as u64 % self.total_units) * self.bank_bytes),
                    20,
                    TaskArgs::two(self.hops as u64, i as u64),
                )
            })
            .collect()
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(20);
        ctx.read(task.data, 64);
        let remaining = task.args.get(0);
        let chain = task.args.get(1);
        if remaining == 0 {
            self.completed += 1;
            return;
        }
        let cur_unit = task.data.0 / self.bank_bytes;
        let next_unit = (cur_unit + 1) % self.total_units;
        ctx.enqueue_task(
            TaskFnId(0),
            task.ts,
            DataAddr(next_unit * self.bank_bytes + chain * 64),
            20,
            TaskArgs::two(remaining - 1, chain),
        );
    }
    fn checksum(&self) -> u64 {
        self.completed
    }
}

/// Heavily skewed: all the work lands on unit 0 (many independent
/// tasks), so only load balancing can spread it.
struct Skewed {
    tasks: u32,
    executed: u64,
}

impl Application for Skewed {
    fn name(&self) -> &str {
        "skewed"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.tasks)
            .map(|i| {
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    // Many distinct blocks of unit 0.
                    DataAddr((i as u64 % 512) * 256),
                    200,
                    TaskArgs::EMPTY,
                )
            })
            .collect()
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(200);
        ctx.read(task.data, 64);
        self.executed += 1;
    }
    fn checksum(&self) -> u64 {
        self.executed
    }
}

/// Bulk-synchronous two-epoch app verifying the barrier globally.
struct Epochal {
    units: u32,
    bank_bytes: u64,
    phase0_done: u64,
    out_of_order: u64,
}

impl Application for Epochal {
    fn name(&self) -> &str {
        "epochal"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.units)
            .map(|u| {
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    DataAddr(u as u64 * self.bank_bytes),
                    30,
                    TaskArgs::EMPTY,
                )
            })
            .collect()
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(30);
        if task.ts == Timestamp(0) {
            self.phase0_done += 1;
            // Next-epoch task on the *next* unit (cross-unit + barrier).
            let next = (task.data.0 / self.bank_bytes + 1) % self.units as u64;
            ctx.enqueue_task(
                TaskFnId(1),
                Timestamp(1),
                DataAddr(next * self.bank_bytes),
                30,
                TaskArgs::EMPTY,
            );
        } else if self.phase0_done < self.units as u64 {
            self.out_of_order += 1;
        }
    }
    fn checksum(&self) -> u64 {
        self.out_of_order
    }
}

#[test]
fn local_only_completes_on_every_design() {
    for design in [
        DesignPoint::C,
        DesignPoint::B,
        DesignPoint::W,
        DesignPoint::O,
        DesignPoint::R,
    ] {
        let c = small_config();
        let app = LocalOnly::new(&c, 32, 4);
        let r = System::new(c, design, Box::new(app)).run();
        assert_eq!(r.tasks_executed, 128, "{design}");
        assert_eq!(r.checksum, 128, "{design}");
        assert!(r.makespan > SimTime::ZERO, "{design}");
    }
}

#[test]
fn local_only_needs_no_messages_without_lb() {
    for design in [DesignPoint::C, DesignPoint::B, DesignPoint::R] {
        let c = small_config();
        let app = LocalOnly::new(&c, 16, 4);
        let r = System::new(c, design, Box::new(app)).run();
        assert_eq!(r.messages_delivered, 0, "{design}");
        assert_eq!(r.channel_bytes, 0, "{design}");
    }
}

#[test]
fn hop_chain_completes_on_every_design() {
    for design in [
        DesignPoint::C,
        DesignPoint::B,
        DesignPoint::W,
        DesignPoint::O,
        DesignPoint::R,
    ] {
        let c = small_config();
        let app = HopChain::new(&c, 16, 10);
        let r = System::new(c, design, Box::new(app)).run();
        // 16 chains × (10 hops + 1 final) tasks.
        assert_eq!(r.tasks_executed, 16 * 11, "{design}");
        assert_eq!(r.checksum, 16, "{design}");
        assert!(r.messages_delivered > 0, "{design}");
    }
}

#[test]
fn bridges_beat_host_forwarding_on_messaging() {
    // The bridge advantage needs ranks *sharing* a channel (Table I has
    // four per channel); with one rank per channel C's polling is cheap.
    let mk = |design| {
        let mut c = SystemConfig::table1();
        c.seed = 42;
        let app = HopChain::new(&c, 256, 20);
        System::new(c, design, Box::new(app)).run()
    };
    let c_run = mk(DesignPoint::C);
    let b_run = mk(DesignPoint::B);
    assert!(
        b_run.makespan < c_run.makespan,
        "B ({}) should beat C ({})",
        b_run.makespan,
        c_run.makespan
    );
}

#[test]
fn load_balancing_helps_skewed_work() {
    let mk = |design| {
        let c = small_config();
        let app = Skewed {
            tasks: 2000,
            executed: 0,
        };
        System::new(c, design, Box::new(app)).run()
    };
    let b = mk(DesignPoint::B);
    let o = mk(DesignPoint::O);
    assert_eq!(b.tasks_executed, 2000);
    assert_eq!(o.tasks_executed, 2000);
    assert!(o.blocks_migrated > 0, "O must migrate blocks");
    assert!(
        o.makespan < b.makespan,
        "O ({}) should beat B ({}) on skew",
        o.makespan,
        b.makespan
    );
    // Balance (avg/max) must improve.
    assert!(o.balance > b.balance);
}

#[test]
fn epochs_are_globally_synchronized() {
    for design in [DesignPoint::C, DesignPoint::B, DesignPoint::O] {
        let c = small_config();
        let units = c.geometry.total_units();
        let app = Epochal {
            units,
            bank_bytes: c.geometry.bank_bytes,
            phase0_done: 0,
            out_of_order: 0,
        };
        let r = System::new(c, design, Box::new(app)).run();
        assert_eq!(r.tasks_executed as u32, units * 2, "{design}");
        assert_eq!(r.checksum, 0, "epoch barrier violated under {design}");
    }
}

#[test]
fn runs_are_deterministic() {
    let mk = || {
        let c = small_config();
        let app = HopChain::new(&c, 32, 8);
        System::new(c, DesignPoint::O, Box::new(app)).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tasks_executed, b.tasks_executed);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.channel_bytes, b.channel_bytes);
    assert_eq!(a.events, b.events);
}

#[test]
fn rowclone_uses_less_channel_than_host_forwarding() {
    // Same-chip ring: hops stay within chip 0 of rank 0 where possible.
    let mk = |design| {
        let c = small_config();
        let app = HopChain::new(&c, 8, 6);
        System::new(c, design, Box::new(app)).run()
    };
    let c_run = mk(DesignPoint::C);
    let r_run = mk(DesignPoint::R);
    // HopChain hops unit k → k+1, which stays in-chip 7 of 8 times.
    assert!(
        r_run.channel_bytes < c_run.channel_bytes,
        "R ({}) should move fewer channel bytes than C ({})",
        r_run.channel_bytes,
        c_run.channel_bytes
    );
    assert!(r_run.makespan <= c_run.makespan);
}

#[test]
fn energy_breakdown_is_populated() {
    let c = small_config();
    let app = HopChain::new(&c, 16, 4);
    let r = System::new(c, DesignPoint::B, Box::new(app)).run();
    assert!(r.energy.core_sram_pj > 0.0);
    assert!(r.energy.dram_local_pj > 0.0);
    assert!(r.energy.dram_comm_pj > 0.0);
    assert!(r.energy.static_pj > 0.0);
    assert!(r.energy.total_pj() > 0.0);
}

#[test]
fn wait_fraction_bounded() {
    let c = small_config();
    let app = HopChain::new(&c, 16, 16);
    let r = System::new(c, DesignPoint::C, Box::new(app)).run();
    assert!(
        (0.0..=1.0).contains(&r.wait_fraction),
        "{}",
        r.wait_fraction
    );
    assert!((0.0..=1.0).contains(&r.balance));
    assert!(r.avg_unit_time <= r.makespan);
}

#[test]
fn address_map_accessor_matches_config() {
    let c = small_config();
    let g = c.g_xfer;
    let app = LocalOnly::new(&c, 1, 1);
    let sys = System::new(c, DesignPoint::B, Box::new(app));
    assert_eq!(sys.address_map().block_bytes(), g);
    assert_eq!(sys.address_map().home_unit(DataAddr(0)), UnitId(0));
    let _ = map_of(&small_config());
}
