//! Targeted tests of the system's internal mechanisms: mailbox stalls,
//! bridge buffer pressure, borrowed-region eviction, RowClone paths,
//! and workload correction — exercised through the public API with
//! deliberately tiny buffers.

use ndpb_core::config::SystemConfig;
use ndpb_core::design::DesignPoint;
use ndpb_core::System;
use ndpb_dram::{DataAddr, Geometry};
use ndpb_tasks::{Application, ExecCtx, Task, TaskArgs, TaskFnId, Timestamp};

fn tiny_cfg() -> SystemConfig {
    let mut c = SystemConfig::with_geometry(Geometry::with_total_ranks(1));
    c.seed = 99;
    c
}

/// A fan-out app: unit 0 holds one element whose task spawns `fan`
/// children on every other unit — a message burst from one core.
struct FanOut {
    bank_bytes: u64,
    units: u64,
    fan: u32,
    done: u64,
}

impl Application for FanOut {
    fn name(&self) -> &str {
        "fan-out"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        vec![Task::new(
            TaskFnId(0),
            Timestamp(0),
            DataAddr(0),
            10,
            TaskArgs::one(0),
        )]
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(10);
        if task.func == TaskFnId(0) {
            for i in 0..self.fan {
                let unit = 1 + (i as u64 % (self.units - 1));
                ctx.enqueue_task(
                    TaskFnId(1),
                    task.ts,
                    DataAddr(unit * self.bank_bytes + (i as u64) * 64),
                    10,
                    TaskArgs::EMPTY,
                );
            }
        } else {
            self.done += 1;
        }
    }
    fn checksum(&self) -> u64 {
        self.done
    }
}

#[test]
fn mailbox_stall_blocks_then_recovers() {
    // A mailbox that holds only one G_xfer transfer (~12 task messages)
    // forces the 200-message burst through the stall/flush path;
    // everything must still be delivered.
    let mut cfg = tiny_cfg();
    cfg.mailbox_bytes = cfg.g_xfer as u64;
    let app = FanOut {
        bank_bytes: cfg.geometry.bank_bytes,
        units: cfg.geometry.total_units() as u64,
        fan: 200,
        done: 0,
    };
    let r = System::new(cfg, DesignPoint::B, Box::new(app)).run();
    assert_eq!(r.checksum, 200);
    assert_eq!(r.tasks_executed, 201);
}

#[test]
fn bridge_buffer_pressure_pauses_but_delivers() {
    // Tiny scatter + backup buffers: the bridge must pause gathering
    // under pressure and still deliver every message.
    let mut cfg = tiny_cfg();
    cfg.scatter_buffer_bytes = 64;
    cfg.backup_buffer_bytes = 128;
    let app = FanOut {
        bank_bytes: cfg.geometry.bank_bytes,
        units: cfg.geometry.total_units() as u64,
        fan: 300,
        done: 0,
    };
    let r = System::new(cfg, DesignPoint::B, Box::new(app)).run();
    assert_eq!(r.checksum, 300);
}

/// Skewed single-epoch work on unit 0, with per-task distinct blocks:
/// forces many migrations under O.
struct Pile {
    tasks: u32,
    done: u64,
}

impl Application for Pile {
    fn name(&self) -> &str {
        "pile"
    }
    fn initial_tasks(&mut self) -> Vec<Task> {
        (0..self.tasks)
            .map(|i| {
                Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    DataAddr(i as u64 * 256),
                    500,
                    TaskArgs::EMPTY,
                )
            })
            .collect()
    }
    fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
        ctx.compute(500);
        ctx.read(task.data, 64);
        self.done += 1;
    }
    fn checksum(&self) -> u64 {
        self.done
    }
}

#[test]
fn borrowed_region_eviction_returns_blocks_home() {
    // Receivers can hold at most 4 borrowed blocks: migrations beyond
    // that must evict and return blocks home, and the run still
    // completes with all tasks executed.
    let mut cfg = tiny_cfg();
    cfg.unit_borrowed_entries = 4;
    let app = Pile {
        tasks: 1500,
        done: 0,
    };
    let r = System::new(cfg, DesignPoint::O, Box::new(app)).run();
    assert_eq!(r.checksum, 1500);
    assert!(r.blocks_migrated > 0, "skew must trigger migration");
}

#[test]
fn migration_spreads_piled_work() {
    let mk = |design| {
        let cfg = tiny_cfg();
        let app = Pile {
            tasks: 1500,
            done: 0,
        };
        System::new(cfg, design, Box::new(app)).run()
    };
    let b = mk(DesignPoint::B);
    let o = mk(DesignPoint::O);
    assert!(
        o.makespan < b.makespan,
        "O {} vs B {}",
        o.makespan,
        b.makespan
    );
    assert!(o.busy_gini() < b.busy_gini(), "Gini must drop under O");
}

#[test]
fn rowclone_handles_intra_chip_fanout() {
    // Fan out only to units in the same chip as unit 0 (units 1..8 in
    // Table I layout): R must use row-copies, not the channel.
    let cfg = tiny_cfg();
    struct SameChip {
        bank_bytes: u64,
        done: u64,
    }
    impl Application for SameChip {
        fn name(&self) -> &str {
            "same-chip"
        }
        fn initial_tasks(&mut self) -> Vec<Task> {
            vec![Task::new(
                TaskFnId(0),
                Timestamp(0),
                DataAddr(0),
                10,
                TaskArgs::EMPTY,
            )]
        }
        fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
            ctx.compute(10);
            if task.func == TaskFnId(0) {
                for u in 1..8u64 {
                    ctx.enqueue_task(
                        TaskFnId(1),
                        task.ts,
                        DataAddr(u * self.bank_bytes),
                        10,
                        TaskArgs::EMPTY,
                    );
                }
            } else {
                self.done += 1;
            }
        }
        fn checksum(&self) -> u64 {
            self.done
        }
    }
    let app = SameChip {
        bank_bytes: cfg.geometry.bank_bytes,
        done: 0,
    };
    let r = System::new(cfg, DesignPoint::R, Box::new(app)).run();
    assert_eq!(r.checksum, 7);
    assert_eq!(r.channel_bytes, 0, "same-chip hops must bypass the channel");
    assert_eq!(r.rank_bus_bytes, 0, "RowClone stays inside the chip");
}

#[test]
fn per_unit_profile_is_exported() {
    let cfg = tiny_cfg();
    let units = cfg.geometry.total_units() as usize;
    let app = Pile {
        tasks: 200,
        done: 0,
    };
    let r = System::new(cfg, DesignPoint::B, Box::new(app)).run();
    assert_eq!(r.per_unit_busy.len(), units);
    // All the pile sits on unit 0 under B.
    assert!(r.per_unit_busy[0] > 0);
    assert_eq!(r.per_unit_busy.iter().filter(|&&b| b > 0).count(), 1);
    assert_eq!(r.busy_histogram().iter().sum::<u64>(), units as u64);
}

#[test]
fn dimm_link_bypasses_channel_for_cross_rank_traffic() {
    // Fan out from rank 0 to units in rank 1: with DIMM-Links the
    // messages travel bridge-to-bridge; without them they cross the
    // DDR channel twice.
    let mk = |link: bool| {
        let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
        cfg.seed = 99;
        if link {
            cfg = cfg.with_dimm_link();
        }
        struct CrossRank {
            bank_bytes: u64,
            done: u64,
        }
        impl Application for CrossRank {
            fn name(&self) -> &str {
                "cross-rank"
            }
            fn initial_tasks(&mut self) -> Vec<Task> {
                vec![Task::new(
                    TaskFnId(0),
                    Timestamp(0),
                    DataAddr(0),
                    10,
                    TaskArgs::EMPTY,
                )]
            }
            fn execute(&mut self, task: &Task, ctx: &mut ExecCtx) {
                ctx.compute(10);
                if task.func == TaskFnId(0) {
                    for u in 64..128u64 {
                        ctx.enqueue_task(
                            TaskFnId(1),
                            task.ts,
                            DataAddr(u * self.bank_bytes),
                            10,
                            TaskArgs::EMPTY,
                        );
                    }
                } else {
                    self.done += 1;
                }
            }
            fn checksum(&self) -> u64 {
                self.done
            }
        }
        let app = CrossRank {
            bank_bytes: cfg.geometry.bank_bytes,
            done: 0,
        };
        System::new(cfg, DesignPoint::B, Box::new(app)).run()
    };
    let host_path = mk(false);
    let linked = mk(true);
    assert_eq!(host_path.checksum, 64);
    assert_eq!(linked.checksum, 64);
    assert!(host_path.channel_bytes > 0, "host path uses the channel");
    assert_eq!(linked.channel_bytes, 0, "links bypass the channel entirely");
    assert!(
        linked.makespan <= host_path.makespan,
        "links must not be slower: {} vs {}",
        linked.makespan,
        host_path.makespan
    );
}
