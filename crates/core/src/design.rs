//! Design points (Table II and Section VII's extra baselines).

use std::fmt;

/// How cross-unit messages travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommPath {
    /// Baseline **C**: every message is gathered by the host CPU over
    /// the DDR channel and scattered back — the execution model of
    /// existing DRAM-bank NDP products.
    HostForward,
    /// NDPBridge: level-1 bridges handle intra-rank messages; the
    /// level-2 bridge (host runtime) forwards only cross-rank messages.
    Bridges,
    /// Baseline **R**: RowClone-style direct bank-to-bank copies within
    /// a DRAM chip; everything else falls back to host forwarding.
    RowClone,
}

/// Load-balancing policy knobs (Section VI; ablated in Figure 14a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbPolicy {
    /// Whether dynamic load balancing runs at all.
    pub enabled: bool,
    /// `+Adv`: schedule *in advance* of queue exhaustion, using the
    /// `W_th` threshold, to hide transfer latency.
    pub in_advance: bool,
    /// `+Fine`: fine-grained stealing — move only ~`2·W_th` of workload
    /// per round instead of half the victim queue.
    pub fine_grained: bool,
    /// `+Hot`: select hot blocks (sketch + reserved queue) to reduce
    /// transfer traffic.
    pub hot_data: bool,
    /// Workload correction with the `toArrive` counter (applied to both
    /// W and O per Section VII).
    pub workload_correction: bool,
    /// `+Byte`: budget each steal batch by estimated wire bytes moved,
    /// amortized against the gather/scatter cost `W_th` already models
    /// (see `crate::steal::steal_byte_budget`). Steals that would blow
    /// the byte budget are deferred to a later round.
    pub byte_budget: bool,
    /// `+Lent`: prefer forwarding tasks whose blocks are *already
    /// lent out* — a task-only transfer straight to the current
    /// holder, with no gather/scatter at all — over moving fresh
    /// blocks. (Those tasks would be rerouted to the holder
    /// one-by-one on pop anyway; the steal round batches them.)
    pub prefer_lent: bool,
}

impl LbPolicy {
    /// No load balancing (designs C, B, R).
    pub const NONE: LbPolicy = LbPolicy {
        enabled: false,
        in_advance: false,
        fine_grained: false,
        hot_data: false,
        workload_correction: false,
        byte_budget: false,
        prefer_lent: false,
    };

    /// Traditional work stealing with workload correction (design W).
    pub const WORK_STEALING: LbPolicy = LbPolicy {
        enabled: true,
        in_advance: false,
        fine_grained: false,
        hot_data: false,
        workload_correction: true,
        byte_budget: false,
        prefer_lent: false,
    };

    /// Full data-transfer-aware policy (design O).
    pub const DATA_AWARE: LbPolicy = LbPolicy {
        enabled: true,
        in_advance: true,
        fine_grained: true,
        hot_data: true,
        workload_correction: true,
        byte_budget: false,
        prefer_lent: false,
    };

    /// Gather-cost-aware stealing (design `W+GA`): traditional work
    /// stealing plus the byte budget and the lent-block preference.
    pub const GATHER_AWARE: LbPolicy = LbPolicy {
        byte_budget: true,
        prefer_lent: true,
        ..LbPolicy::WORK_STEALING
    };
}

/// A named design point from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignPoint {
    /// Host-CPU forwarding, no load balancing.
    C,
    /// Hardware bridges, no load balancing.
    B,
    /// Bridges + traditional work stealing.
    W,
    /// Bridges + data-transfer-aware load balancing (NDPBridge).
    O,
    /// RowClone intra-chip transfers, host forwarding across chips.
    R,
    /// W plus in-advance scheduling only (Figure 14a `+Adv`).
    WAdv,
    /// W plus fine-grained stealing only (Figure 14a `+Fine`).
    WFine,
    /// W plus hot-data selection only (Figure 14a `+Hot`).
    WHot,
    /// W plus the steal byte budget only (`W+Byte`): steal-half still
    /// picks blindly, but each round defers steals past its byte cap.
    WByte,
    /// W plus the lent-block preference only (`W+Lent`): task-only
    /// forwards to current holders beat fresh block moves.
    WLent,
    /// Gather-cost-aware work stealing (`W+GA` = `W+Byte+Lent`): the
    /// ROADMAP item-1 policy closing the Fig 10 gather-traffic gap.
    WGather,
    /// The full design plus the gather-aware knobs (`O+GA`).
    OGather,
}

impl DesignPoint {
    /// The communication path of this design.
    pub fn comm_path(self) -> CommPath {
        match self {
            DesignPoint::C => CommPath::HostForward,
            DesignPoint::R => CommPath::RowClone,
            _ => CommPath::Bridges,
        }
    }

    /// The load-balancing policy of this design.
    pub fn lb_policy(self) -> LbPolicy {
        match self {
            DesignPoint::C | DesignPoint::B | DesignPoint::R => LbPolicy::NONE,
            DesignPoint::W => LbPolicy::WORK_STEALING,
            DesignPoint::O => LbPolicy::DATA_AWARE,
            DesignPoint::WAdv => LbPolicy {
                in_advance: true,
                ..LbPolicy::WORK_STEALING
            },
            DesignPoint::WFine => LbPolicy {
                fine_grained: true,
                ..LbPolicy::WORK_STEALING
            },
            DesignPoint::WHot => LbPolicy {
                hot_data: true,
                ..LbPolicy::WORK_STEALING
            },
            DesignPoint::WByte => LbPolicy {
                byte_budget: true,
                ..LbPolicy::WORK_STEALING
            },
            DesignPoint::WLent => LbPolicy {
                prefer_lent: true,
                ..LbPolicy::WORK_STEALING
            },
            DesignPoint::WGather => LbPolicy::GATHER_AWARE,
            DesignPoint::OGather => LbPolicy {
                byte_budget: true,
                prefer_lent: true,
                ..LbPolicy::DATA_AWARE
            },
        }
    }

    /// All four Table II rows, in the paper's order.
    pub fn table2() -> [DesignPoint; 4] {
        [
            DesignPoint::C,
            DesignPoint::B,
            DesignPoint::W,
            DesignPoint::O,
        ]
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DesignPoint::C => "C",
            DesignPoint::B => "B",
            DesignPoint::W => "W",
            DesignPoint::O => "O",
            DesignPoint::R => "R",
            DesignPoint::WAdv => "W+Adv",
            DesignPoint::WFine => "W+Fine",
            DesignPoint::WHot => "W+Hot",
            DesignPoint::WByte => "W+Byte",
            DesignPoint::WLent => "W+Lent",
            DesignPoint::WGather => "W+GA",
            DesignPoint::OGather => "O+GA",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let t = DesignPoint::table2();
        assert_eq!(t[0].comm_path(), CommPath::HostForward);
        assert!(!t[0].lb_policy().enabled);
        assert_eq!(t[1].comm_path(), CommPath::Bridges);
        assert!(!t[1].lb_policy().enabled);
        assert!(t[2].lb_policy().enabled);
        assert!(!t[2].lb_policy().hot_data);
        assert!(t[3].lb_policy().hot_data);
    }

    #[test]
    fn w_has_workload_correction() {
        // Section VII: "We also apply workload correction to W".
        assert!(DesignPoint::W.lb_policy().workload_correction);
    }

    #[test]
    fn ablations_add_one_knob_each() {
        assert!(DesignPoint::WAdv.lb_policy().in_advance);
        assert!(!DesignPoint::WAdv.lb_policy().fine_grained);
        assert!(DesignPoint::WFine.lb_policy().fine_grained);
        assert!(!DesignPoint::WFine.lb_policy().hot_data);
        assert!(DesignPoint::WHot.lb_policy().hot_data);
        assert!(!DesignPoint::WHot.lb_policy().in_advance);
    }

    #[test]
    fn rowclone_is_its_own_path() {
        assert_eq!(DesignPoint::R.comm_path(), CommPath::RowClone);
        assert!(!DesignPoint::R.lb_policy().enabled);
    }

    #[test]
    fn display_names() {
        assert_eq!(DesignPoint::O.to_string(), "O");
        assert_eq!(DesignPoint::WHot.to_string(), "W+Hot");
        assert_eq!(DesignPoint::WGather.to_string(), "W+GA");
        assert_eq!(DesignPoint::OGather.to_string(), "O+GA");
    }

    #[test]
    fn gather_aware_knobs_compose() {
        // Single-knob ablations toggle exactly one new field over W.
        let byte = DesignPoint::WByte.lb_policy();
        assert!(byte.byte_budget && !byte.prefer_lent);
        let lent = DesignPoint::WLent.lb_policy();
        assert!(lent.prefer_lent && !lent.byte_budget);
        // W+GA is both; everything else stays W.
        let ga = DesignPoint::WGather.lb_policy();
        assert!(ga.byte_budget && ga.prefer_lent);
        assert_eq!(
            LbPolicy {
                byte_budget: false,
                prefer_lent: false,
                ..ga
            },
            LbPolicy::WORK_STEALING
        );
        // O+GA keeps O's four knobs and adds the two new ones.
        let oga = DesignPoint::OGather.lb_policy();
        assert!(oga.byte_budget && oga.prefer_lent && oga.hot_data && oga.in_advance);
        // Every baseline design leaves the new knobs off (golden runs
        // must stay byte-identical).
        for d in [
            DesignPoint::C,
            DesignPoint::B,
            DesignPoint::W,
            DesignPoint::O,
            DesignPoint::R,
            DesignPoint::WAdv,
            DesignPoint::WFine,
            DesignPoint::WHot,
        ] {
            let p = d.lb_policy();
            assert!(!p.byte_budget && !p.prefer_lent, "{d} grew a new knob");
        }
    }
}
