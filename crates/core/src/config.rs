//! System configuration (Table I) and sweep knobs.

use crate::audit::AuditLevel;
use ndpb_dram::{DramTiming, EnergyParams, Geometry};
use ndpb_sim::{SimTime, TICKS_PER_CORE_CYCLE};
use ndpb_sketch::SketchConfig;

/// When the bridges run task/data message gather/scatter rounds
/// (Section V-C, evaluated in Figure 14b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerPolicy {
    /// The paper's dynamic scheme: gather immediately when a mailbox
    /// exceeds `G_xfer`; gather at `I_min` frequency while any child is
    /// idle and messages are pending; otherwise wait.
    Dynamic,
    /// Fixed rounds every `I_min` (bandwidth-wasteful baseline).
    FixedIMin,
    /// Fixed rounds every `2 × I_min` (too-infrequent baseline; the
    /// paper reports a 31% performance loss).
    Fixed2IMin,
}

/// Full system configuration. Defaults reproduce Table I.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM hierarchy.
    pub geometry: Geometry,
    /// DDR timing.
    pub timing: DramTiming,
    /// Energy model parameters.
    pub energy: EnergyParams,
    /// Message transfer and load-balancing granularity `G_xfer` (bytes).
    pub g_xfer: u32,
    /// Steal byte budget, in `G_xfer` multiples per `W_th` of stolen
    /// workload (only read when `LbPolicy::byte_budget` is on). The
    /// default 2 mirrors the `W_th` derivation — one gather out plus
    /// one scatter back stays latency-hidden per threshold of work.
    pub steal_budget_gxfer: u32,
    /// Giver overload gate, in `W_th` multiples (only read when
    /// `LbPolicy::byte_budget` is on). A giver spends *data* bytes on
    /// block moves only while its queued backlog exceeds
    /// `steal_gate_wth · W_th`; shallower queues drain on their own
    /// before rebalancing pays, and each block move costs a full
    /// gather-round sweep (`chips · G_xfer` of ledger traffic), so
    /// transient imbalance is left alone. Task-only forwards ignore
    /// the gate. Sweeping 2..512 at Small scale: gather reduction
    /// grows monotonically, makespan peaks near 256.
    pub steal_gate_wth: u32,
    /// State-gathering period `I_state` in NDP core cycles.
    pub i_state_cycles: u64,
    /// Per-unit in-DRAM mailbox region (1 MB).
    pub mailbox_bytes: u64,
    /// Per-unit in-DRAM borrowed data region (1 MB).
    pub borrowed_region_bytes: u64,
    /// Level-1 bridge SRAM mailbox for upward messages (128 kB).
    pub bridge_mailbox_bytes: u64,
    /// Per-child scatter buffer in the bridge (1 kB each).
    pub scatter_buffer_bytes: u64,
    /// Bridge backup buffer (64 kB).
    pub backup_buffer_bytes: u64,
    /// Entries in each unit's `dataBorrowed` table (16 kB, 8-way,
    /// 16 B entries ⇒ 1024).
    pub unit_borrowed_entries: usize,
    /// Entries in each bridge's `dataBorrowed` table (1 MB, 16-way,
    /// 16 B entries ⇒ 65536).
    pub bridge_borrowed_entries: usize,
    /// Hot-data sketch geometry.
    pub sketch: SketchConfig,
    /// Reserved-queue chunk pool per unit (1280 chunks).
    pub reserved_chunks: usize,
    /// Tasks per reserved-queue chunk (`G_xfer` / 32 B task records).
    pub reserved_tasks_per_chunk: usize,
    /// Communication trigger policy.
    pub trigger: TriggerPolicy,
    /// Host software latency per forwarding round (the level-2 bridge is
    /// a host-side runtime in the paper's evaluation).
    pub host_round_latency: SimTime,
    /// Optional DIMM-Link-style peer-to-peer links between ranks
    /// (Section V-A: "NDPBridge is orthogonal to and can work in tandem
    /// with them"). `Some(bits_per_tick)` routes cross-rank messages
    /// bridge-to-bridge over dedicated links instead of through the
    /// host; DIMM-Link's 25.6 GB/s per link ≈ 88 bits/tick.
    pub dimm_link: Option<u32>,
    /// Master seed for all randomized decisions (matching, decay).
    pub seed: u64,
    /// Conservation-audit level. Purely observational (any level
    /// produces bit-identical results), but deliberately part of the
    /// fingerprint: an audited sweep must never be satisfied by a
    /// cached result whose run was not actually audited.
    pub audit: AuditLevel,
    /// Execution shards for one run: ranks are partitioned across this
    /// many per-shard timer wheels (see `ndpb_sim::shard` and DESIGN.md
    /// §9). Observationally invisible — the sharded queue's exact-merge
    /// contract makes results byte-identical for every value — so it is
    /// deliberately *excluded* from [`fingerprint`](Self::fingerprint):
    /// a result cached at one shard count must satisfy any other.
    pub shards: usize,
}

impl SystemConfig {
    /// The paper's Table I defaults.
    pub fn table1() -> Self {
        SystemConfig {
            geometry: Geometry::table1(),
            timing: DramTiming::ddr4_2400(),
            energy: EnergyParams::paper(),
            g_xfer: 256,
            steal_budget_gxfer: 2,
            steal_gate_wth: 256,
            i_state_cycles: 2000,
            mailbox_bytes: 1 << 20,
            borrowed_region_bytes: 1 << 20,
            bridge_mailbox_bytes: 128 << 10,
            scatter_buffer_bytes: 1 << 10,
            backup_buffer_bytes: 64 << 10,
            unit_borrowed_entries: 1024,
            bridge_borrowed_entries: 65536,
            sketch: SketchConfig::paper(),
            reserved_chunks: 1280,
            reserved_tasks_per_chunk: 8,
            trigger: TriggerPolicy::Dynamic,
            host_round_latency: SimTime::from_ns_ceil(500),
            dimm_link: None,
            seed: 0x5EED,
            audit: AuditLevel::default(),
            shards: 1,
        }
    }

    /// Table I with a different geometry (Figures 12 and 15).
    pub fn with_geometry(geometry: Geometry) -> Self {
        SystemConfig {
            geometry,
            ..Self::table1()
        }
    }

    /// Enables DIMM-Link-style cross-rank links at DIMM-Link's
    /// published 25.6 GB/s (≈ 88 bits per tick).
    pub fn with_dimm_link(mut self) -> Self {
        self.dimm_link = Some(88);
        self
    }

    /// Scales both `dataBorrowed` tables by `factor` (Figure 16a's ¼×,
    /// 1×, 4× metadata sweep).
    pub fn scale_metadata(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "metadata scale must be positive");
        self.unit_borrowed_entries = ((self.unit_borrowed_entries as f64 * factor) as usize).max(1);
        self.bridge_borrowed_entries =
            ((self.bridge_borrowed_entries as f64 * factor) as usize).max(1);
        self
    }

    /// The state-gathering period as a time.
    pub fn i_state(&self) -> SimTime {
        SimTime::from_core_cycles(self.i_state_cycles)
    }

    /// `I_min`: the time one full gather/scatter round across all
    /// children of a rank takes — bank positions are visited round-robin
    /// and each position moves `G_xfer` bytes per chip over the
    /// intra-rank data pins.
    pub fn i_min(&self) -> SimTime {
        // Per position, G_xfer bytes per chip over the chip's data pins,
        // all chips in parallel; a round has gather + scatter phases.
        let per_chip_bits =
            (self.geometry.intra_rank_data_bits() / self.geometry.chips_per_rank) as u64;
        let t = (self.g_xfer as u64 * 8).div_ceil(per_chip_bits);
        SimTime::from_ticks(2 * t * self.geometry.banks_per_chip as u64)
    }

    /// Sanity-checks the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero `G_xfer`, `G_xfer` not
    /// dividing buffers, DQ multiplexing eating every pin).
    pub fn validate(&self) {
        assert!(self.g_xfer > 0, "G_xfer must be positive");
        assert!(
            self.steal_budget_gxfer > 0,
            "steal byte budget must be positive"
        );
        assert!(
            self.steal_gate_wth > 0,
            "steal overload gate must be positive"
        );
        assert!(
            self.geometry.intra_rank_data_bits() > 0,
            "C/A multiplexing must leave data pins"
        );
        assert!(
            self.mailbox_bytes >= self.g_xfer as u64,
            "mailbox must hold at least one transfer"
        );
        assert!(
            self.borrowed_region_bytes >= self.g_xfer as u64,
            "borrowed region must hold at least one block"
        );
        assert!(self.i_state_cycles > 0, "I_state must be positive");
        assert!(self.shards > 0, "shards must be positive");
    }

    /// The minimum cross-rank hop latency, in ticks: the smallest
    /// possible message (a bare header) crossing the fastest cross-rank
    /// wire (the DDR channel, or a DIMM-Link when enabled). This is the
    /// conservative engine's *lookahead* — no event on one rank can
    /// affect another rank sooner than this (derivation in DESIGN.md
    /// §9).
    pub fn min_hop_latency(&self) -> SimTime {
        let header_bits = ndpb_proto::message::MESSAGE_HEADER_BYTES as u64 * 8;
        let mut ticks = header_bits.div_ceil(self.geometry.channel_dq_bits() as u64);
        if let Some(link_bits) = self.dimm_link {
            ticks = ticks.min(header_bits.div_ceil(link_bits as u64));
        }
        SimTime::from_ticks(ticks.max(1))
    }

    /// Maximum number of blocks the borrowed-data region can hold; the
    /// `dataBorrowed` table may be the tighter limit.
    pub fn borrowed_capacity_blocks(&self) -> usize {
        ((self.borrowed_region_bytes / self.g_xfer as u64) as usize).min(self.unit_borrowed_entries)
    }

    /// A cheap, stable 64-bit content fingerprint covering every
    /// outcome-affecting field — the sweep engine's cache key
    /// component for the configuration.
    ///
    /// Hashes the derived `Debug` rendering through the in-tree FNV-1a
    /// hasher: the rendering spells out every field (geometry, timing,
    /// energy, sketch, trigger, seed, …), so adding a field to any
    /// nested config struct automatically changes the fingerprint — a
    /// new knob can never alias a cached result from before it existed.
    ///
    /// One deliberate exception: [`shards`](Self::shards) is normalized
    /// to 1 before hashing. Shard count cannot affect results (the
    /// determinism suite enforces byte-identity), so a cached result
    /// from any shard count must be a hit for every other — the sweep
    /// cache and `ndpb-serve`'s request dedup both rely on this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = ndpb_sim::Fnv1a64::new();
        if self.shards == 1 {
            h.write_str(&format!("{self:?}"));
        } else {
            let mut normalized = self.clone();
            normalized.shards = 1;
            h.write_str(&format!("{normalized:?}"));
        }
        h.finish()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// The in-advance scheduling threshold `W_th = 2 · G_xfer · S_exe /
/// S_xfer` (Section VI-C), in workload units, from the bridge's current
/// speed estimates.
pub fn w_threshold(
    g_xfer: u32,
    s_exe_cycles_per_workload: f64,
    s_xfer_bytes_per_cycle: f64,
) -> u64 {
    if s_xfer_bytes_per_cycle <= 0.0 || s_exe_cycles_per_workload <= 0.0 {
        return g_xfer as u64; // conservative fallback before estimates exist
    }
    // Transfer time of 2·G_xfer bytes, in cycles, converted to workload
    // units via the execution speed.
    let transfer_cycles = 2.0 * g_xfer as f64 / s_xfer_bytes_per_cycle;
    (transfer_cycles / s_exe_cycles_per_workload).ceil() as u64
}

/// Converts NDP core cycles to ticks (convenience for tests and apps).
pub fn cycles_to_ticks(cycles: u64) -> u64 {
    cycles * TICKS_PER_CORE_CYCLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_validates() {
        let c = SystemConfig::table1();
        c.validate();
        assert_eq!(c.g_xfer, 256);
        assert_eq!(c.i_state_cycles, 2000);
        assert_eq!(c.geometry.total_units(), 512);
    }

    #[test]
    fn i_min_scales_with_gxfer() {
        let mut c = SystemConfig::table1();
        let base = c.i_min();
        c.g_xfer = 1024;
        assert_eq!(c.i_min().ticks(), base.ticks() * 4);
    }

    #[test]
    fn i_min_table1_value() {
        // x8 chips: 256 B per chip at 8 bits/tick = 256 ticks per
        // position; 8 positions, gather+scatter = 4096 ticks.
        assert_eq!(SystemConfig::table1().i_min().ticks(), 4096);
    }

    #[test]
    fn metadata_scaling() {
        let c = SystemConfig::table1().scale_metadata(0.25);
        assert_eq!(c.unit_borrowed_entries, 256);
        assert_eq!(c.bridge_borrowed_entries, 16384);
        let c = SystemConfig::table1().scale_metadata(4.0);
        assert_eq!(c.unit_borrowed_entries, 4096);
    }

    #[test]
    fn borrowed_capacity_is_min_of_region_and_table() {
        let c = SystemConfig::table1();
        // Region holds 4096 blocks but the table only 1024.
        assert_eq!(c.borrowed_capacity_blocks(), 1024);
    }

    #[test]
    fn w_threshold_formula() {
        // S_exe = 10 cycles per workload unit, S_xfer = 1 byte/cycle:
        // 2·256/1 = 512 cycles of transfer = 51.2 → 52 workload units.
        assert_eq!(w_threshold(256, 10.0, 1.0), 52);
        // Degenerate estimates fall back to G_xfer.
        assert_eq!(w_threshold(256, 0.0, 1.0), 256);
    }

    #[test]
    #[should_panic(expected = "G_xfer must be positive")]
    fn zero_gxfer_fails_validation() {
        let mut c = SystemConfig::table1();
        c.g_xfer = 0;
        c.validate();
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        assert_eq!(
            SystemConfig::table1().fingerprint(),
            SystemConfig::table1().fingerprint()
        );
        let base = SystemConfig::table1().fingerprint();
        let mut c = SystemConfig::table1();
        c.seed += 1;
        assert_ne!(c.fingerprint(), base, "seed must be part of the key");
        let mut c = SystemConfig::table1();
        c.g_xfer = 1024;
        assert_ne!(c.fingerprint(), base);
        let mut c = SystemConfig::table1();
        c.steal_budget_gxfer = 4;
        assert_ne!(
            c.fingerprint(),
            base,
            "the steal byte budget is a policy knob and must key the cache"
        );
        let mut c = SystemConfig::table1();
        c.steal_gate_wth = 8;
        assert_ne!(
            c.fingerprint(),
            base,
            "the overload gate is a policy knob and must key the cache"
        );
        let mut c = SystemConfig::table1();
        c.trigger = TriggerPolicy::Fixed2IMin;
        assert_ne!(c.fingerprint(), base);
        assert_ne!(SystemConfig::table1().with_dimm_link().fingerprint(), base);
        let mut c = SystemConfig::table1();
        c.audit = if c.audit == AuditLevel::Off {
            AuditLevel::Full
        } else {
            AuditLevel::Off
        };
        assert_ne!(
            c.fingerprint(),
            base,
            "an audited sweep must not reuse unaudited cache entries"
        );
        assert_ne!(
            SystemConfig::with_geometry(ndpb_dram::Geometry::with_total_ranks(1)).fingerprint(),
            base
        );
        // Shard count is the one observationally-invisible knob: it must
        // NOT move the fingerprint, or sharded runs would miss the cache
        // entries serial runs wrote (and vice versa).
        for shards in [2, 4, 8] {
            let mut c = SystemConfig::table1();
            c.shards = shards;
            assert_eq!(
                c.fingerprint(),
                base,
                "shards={shards} must alias the serial cache key"
            );
        }
    }

    #[test]
    fn min_hop_latency_is_positive_and_bounded_by_a_header_transfer() {
        let c = SystemConfig::table1();
        let la = c.min_hop_latency();
        assert!(la > SimTime::ZERO);
        // 2-byte header over the channel pins can't take longer than it
        // takes over a single pin.
        assert!(la.ticks() <= 16);
        // A DIMM-Link can only lower the bound, never raise it.
        assert!(SystemConfig::table1().with_dimm_link().min_hop_latency() <= la);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_fails_validation() {
        let mut c = SystemConfig::table1();
        c.shards = 0;
        c.validate();
    }

    #[test]
    fn split_dimm_geometry_validates() {
        let c = SystemConfig::with_geometry(ndpb_dram::Geometry::split_dimm_buffer());
        c.validate();
        assert!(c.i_min() > SystemConfig::table1().i_min());
    }
}
