//! The hardware bridges (Figure 4(a)).
//!
//! A level-1 (rank) bridge lives in the DIMM buffer chip: per-child
//! scatter buffers, a backup buffer, an upward mailbox for cross-rank
//! messages, a `dataBorrowed` table, per-child state snapshots and the
//! `toArrive` workload-correction counters. The level-2 bridge (host
//! runtime in the paper's evaluation) keeps per-rank scatter queues and
//! a block→rank `dataBorrowed` table.
//!
//! Bridges here are *data* structures; all timing (bus reservations,
//! bank accesses, event scheduling) is orchestrated by
//! [`crate::system::System`].

use std::collections::VecDeque;

use ndpb_dram::{BlockAddr, RankId, UnitId};
use ndpb_proto::{Mailbox, Message};
use ndpb_sim::stats::Counter;
use ndpb_sim::{SimRng, SimTime};

use crate::config::SystemConfig;
use crate::metadata::LruTable;

/// The bridge's last state snapshot of one child unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChildState {
    /// `L_mailbox`: bytes waiting in the child's mailbox.
    pub mailbox_bytes: u64,
    /// `W_queue`: workload waiting in the child's task queue.
    pub queue_workload: u64,
    /// `W_finish`: workload finished in the last interval.
    pub finished_workload: u64,
}

/// Bridge statistics.
#[derive(Debug, Clone, Default)]
pub struct BridgeStats {
    /// GATHER commands issued.
    pub gathers: Counter,
    /// GATHER commands that returned no messages (wasted bandwidth —
    /// the dynamic trigger exists to avoid these).
    pub wasted_gathers: Counter,
    /// SCATTER commands issued.
    pub scatters: Counter,
    /// Message bytes gathered from children.
    pub bytes_gathered: Counter,
    /// Message bytes scattered to children.
    pub bytes_scattered: Counter,
    /// Load-balancing rounds initiated.
    pub lb_rounds: Counter,
    /// SCHEDULE commands sent to givers.
    pub schedules: Counter,
    /// Messages pushed to the backup buffer.
    pub backups: Counter,
    /// Gather pauses because the backup buffer filled.
    pub gather_pauses: Counter,
}

/// On buffer exhaustion the bridge hands the message back to the
/// caller, which must pause gathering and re-park it (Section V-A).
pub type BridgeFull = Message;

/// A level-1 (rank) bridge.
#[derive(Debug)]
pub struct RankBridge {
    /// The rank this bridge serves.
    pub rank: RankId,
    /// Per-child scatter buffers (1 kB each in Table I).
    scatter: Vec<VecDeque<Message>>,
    scatter_bytes: Vec<u64>,
    scatter_cap: u64,
    /// Backup buffer shared across children (64 kB).
    backup: VecDeque<(usize, Message)>,
    backup_bytes: u64,
    backup_cap: u64,
    /// Upward mailbox for messages leaving the rank (128 kB SRAM).
    pub up_mailbox: Mailbox,
    /// Block → receiver unit, for blocks lent *within* this rank.
    pub data_borrowed: LruTable<BlockAddr, UnitId>,
    /// Last gathered state per child (local index).
    pub child_state: Vec<ChildState>,
    /// Workload scheduled toward each child but not yet arrived
    /// (`toArrive`, Section VI-C).
    pub to_arrive: Vec<u64>,
    /// EWMA of execution speed: core cycles per workload unit.
    pub s_exe_cycles_per_wl: f64,
    /// When the last transfer round started (the `I_min` rate limit is
    /// measured start-to-start).
    pub last_round_start: SimTime,
    /// When the last transfer round ended.
    pub last_round_end: SimTime,
    /// Whether a transfer round event is scheduled.
    pub round_scheduled: bool,
    /// Whether a state-gather event is scheduled.
    pub state_scheduled: bool,
    /// Bank position where the next gather phase starts (round-robin
    /// fairness across rounds, so a pause cannot starve late positions).
    pub gather_cursor: u32,
    /// Whether the previous round moved nothing (used to back off
    /// instead of re-running immediately).
    pub last_round_idle: bool,
    /// Statistics.
    pub stats: BridgeStats,
    /// Deterministic RNG for receiver/giver matching.
    pub rng: SimRng,
}

impl RankBridge {
    /// Creates the bridge for `rank` with `children` child units.
    pub fn new(rank: RankId, children: usize, cfg: &SystemConfig, rng: SimRng) -> Self {
        RankBridge {
            rank,
            scatter: vec![VecDeque::new(); children],
            scatter_bytes: vec![0; children],
            scatter_cap: cfg.scatter_buffer_bytes,
            backup: VecDeque::new(),
            backup_bytes: 0,
            backup_cap: cfg.backup_buffer_bytes,
            up_mailbox: Mailbox::new(cfg.bridge_mailbox_bytes),
            data_borrowed: LruTable::new(cfg.bridge_borrowed_entries),
            child_state: vec![ChildState::default(); children],
            to_arrive: vec![0; children],
            s_exe_cycles_per_wl: 0.0,
            last_round_start: SimTime::ZERO,
            last_round_end: SimTime::ZERO,
            round_scheduled: false,
            state_scheduled: false,
            gather_cursor: 0,
            last_round_idle: false,
            stats: BridgeStats::default(),
            rng,
        }
    }

    /// Number of children.
    pub fn children(&self) -> usize {
        self.scatter.len()
    }

    /// Queues a message for scatter to local child `idx`, spilling to
    /// the backup buffer when the child's scatter buffer is full.
    ///
    /// # Errors
    ///
    /// Returns the message back when the backup buffer is also full; the
    /// caller must pause gathering and re-park it.
    pub fn enqueue_scatter(&mut self, idx: usize, msg: Message) -> Result<(), BridgeFull> {
        let sz = msg.wire_bytes() as u64;
        // New messages may not overtake spilled ones: once anything sits
        // in the backup buffer, later arrivals queue behind it, otherwise
        // a large spilled message (e.g. a data block) can be starved
        // forever by a stream of small messages refilling the buffer.
        let fits = self.scatter_bytes[idx] + sz <= self.scatter_cap
            // An empty buffer always accepts one message even when the
            // message (e.g. a G_xfer-sized block) exceeds the buffer:
            // hardware streams it through in pieces.
            || self.scatter[idx].is_empty();
        if self.backup_bytes == 0 && fits {
            self.scatter_bytes[idx] += sz;
            self.scatter[idx].push_back(msg);
            return Ok(());
        }
        if self.backup_bytes + sz <= self.backup_cap {
            self.backup_bytes += sz;
            self.backup.push_back((idx, msg));
            self.stats.backups.inc();
            return Ok(());
        }
        self.stats.gather_pauses.inc();
        Err(msg)
    }

    /// Moves spilled messages from the backup buffer back into scatter
    /// buffers where room has appeared (run at scatter time).
    pub fn refill_from_backup(&mut self) {
        // Strict FIFO: stop at the first message that does not fit, so a
        // large spilled message keeps its place in line.
        while let Some((idx, msg)) = self.backup.front() {
            let sz = msg.wire_bytes() as u64;
            if self.scatter_bytes[*idx] + sz > self.scatter_cap && !self.scatter[*idx].is_empty() {
                break;
            }
            let (idx, msg) = self.backup.pop_front().expect("front exists");
            self.backup_bytes -= sz;
            self.scatter_bytes[idx] += sz;
            self.scatter[idx].push_back(msg);
        }
    }

    /// Drains up to `budget` bytes of messages destined for child `idx`.
    pub fn drain_scatter(&mut self, idx: usize, budget: u32) -> Vec<Message> {
        let mut out = Vec::new();
        self.drain_scatter_into(idx, budget, &mut out);
        out
    }

    /// Like [`drain_scatter`](Self::drain_scatter), but appends into a
    /// caller-provided buffer so the scatter hot path can recycle one
    /// allocation across rounds.
    pub fn drain_scatter_into(&mut self, idx: usize, budget: u32, out: &mut Vec<Message>) {
        let mut drained = 0u32;
        while let Some(front) = self.scatter[idx].front() {
            let sz = front.wire_bytes();
            if drained != 0 && drained + sz > budget {
                break;
            }
            drained += sz;
            self.scatter_bytes[idx] -= sz as u64;
            out.push(self.scatter[idx].pop_front().expect("front exists"));
            if drained >= budget {
                break;
            }
        }
    }

    /// Bytes pending for child `idx`.
    pub fn scatter_pending(&self, idx: usize) -> u64 {
        self.scatter_bytes[idx]
    }

    /// Whether any scatter buffer, the backup buffer, or the upward
    /// mailbox holds messages.
    pub fn has_pending_output(&self) -> bool {
        self.scatter_bytes.iter().any(|&b| b > 0)
            || self.backup_bytes > 0
            || !self.up_mailbox.is_empty()
    }

    /// Total bytes in backup.
    pub fn backup_pending(&self) -> u64 {
        self.backup_bytes
    }

    /// Iterates over every message buffered in this bridge — scatter
    /// buffers then backup (the upward mailbox has its own iterator).
    /// For auditing; order is unspecified.
    pub fn buffered_messages(&self) -> impl Iterator<Item = &Message> {
        self.scatter
            .iter()
            .flatten()
            .chain(self.backup.iter().map(|(_, m)| m))
    }

    /// Number of messages buffered in scatter + backup.
    pub fn buffered_msg_count(&self) -> usize {
        self.scatter.iter().map(VecDeque::len).sum::<usize>() + self.backup.len()
    }

    /// Children whose queue (plus in-flight correction when enabled)
    /// falls below `threshold` — the load-balancing receivers.
    pub fn idle_children(&self, threshold: u64, correction: bool) -> Vec<usize> {
        (0..self.children())
            .filter(|&i| {
                let mut w = self.child_state[i].queue_workload;
                if correction {
                    w += self.to_arrive[i];
                }
                w < threshold.max(1)
            })
            .collect()
    }

    /// Children with work to give (queue above `threshold`).
    pub fn busy_children(&self, threshold: u64) -> Vec<usize> {
        (0..self.children())
            .filter(|&i| self.child_state[i].queue_workload > threshold)
            .collect()
    }

    /// Updates the execution-speed EWMA from one interval's finished
    /// workload across all children.
    pub fn update_speed_estimate(&mut self, interval_cycles: u64, finished_total: u64) {
        if finished_total == 0 {
            return;
        }
        let sample = interval_cycles as f64 * self.children() as f64 / finished_total as f64;
        self.s_exe_cycles_per_wl = if self.s_exe_cycles_per_wl == 0.0 {
            sample
        } else {
            0.5 * self.s_exe_cycles_per_wl + 0.5 * sample
        };
    }
}

/// The level-2 bridge (host runtime): per-rank scatter queues and the
/// block → rank `dataBorrowed` table.
#[derive(Debug)]
pub struct HostBridge {
    scatter: Vec<VecDeque<Message>>,
    /// Block → rank where the block currently lives (for blocks lent
    /// across ranks).
    pub data_borrowed: LruTable<BlockAddr, RankId>,
    /// Aggregate queue workload per rank from the last state pass.
    pub rank_queue_workload: Vec<u64>,
    /// Aggregate mailbox bytes per rank bridge (upward mailboxes).
    pub rank_mailbox_bytes: Vec<u64>,
    /// `toArrive` per rank for cross-rank scheduling.
    pub to_arrive: Vec<u64>,
    /// Whether a host transfer round is scheduled.
    pub round_scheduled: bool,
    /// When the last host round started (rate limiting for polling).
    pub last_round_start: SimTime,
    /// When the last host round ended.
    pub last_round_end: SimTime,
    /// Statistics.
    pub stats: BridgeStats,
    /// Deterministic RNG for cross-rank matching.
    pub rng: SimRng,
}

impl HostBridge {
    /// Creates the host bridge over `ranks` ranks.
    pub fn new(ranks: usize, cfg: &SystemConfig, rng: SimRng) -> Self {
        HostBridge {
            scatter: vec![VecDeque::new(); ranks],
            data_borrowed: LruTable::new(cfg.bridge_borrowed_entries),
            rank_queue_workload: vec![0; ranks],
            rank_mailbox_bytes: vec![0; ranks],
            to_arrive: vec![0; ranks],
            round_scheduled: false,
            last_round_start: SimTime::ZERO,
            last_round_end: SimTime::ZERO,
            stats: BridgeStats::default(),
            rng,
        }
    }

    /// Queues a message for delivery down to `rank` (unbounded: host
    /// memory).
    pub fn enqueue_scatter(&mut self, rank: usize, msg: Message) {
        self.scatter[rank].push_back(msg);
    }

    /// Drains every message pending for `rank`.
    pub fn drain_scatter(&mut self, rank: usize) -> Vec<Message> {
        self.scatter[rank].drain(..).collect()
    }

    /// Like [`drain_scatter`](Self::drain_scatter), but appends into a
    /// caller-provided buffer (recycled by the host-round hot path).
    pub fn drain_scatter_into(&mut self, rank: usize, out: &mut Vec<Message>) {
        out.extend(self.scatter[rank].drain(..));
    }

    /// Bytes pending for `rank`.
    pub fn scatter_pending(&self, rank: usize) -> u64 {
        self.scatter[rank]
            .iter()
            .map(|m| m.wire_bytes() as u64)
            .sum()
    }

    /// Whether anything is queued for any rank.
    pub fn has_pending(&self) -> bool {
        self.scatter.iter().any(|q| !q.is_empty())
    }

    /// Iterates over every message queued for any rank (auditing).
    pub fn buffered_messages(&self) -> impl Iterator<Item = &Message> {
        self.scatter.iter().flatten()
    }

    /// Number of messages queued across all ranks.
    pub fn buffered_msg_count(&self) -> usize {
        self.scatter.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::DataAddr;
    use ndpb_tasks::{Task, TaskArgs, TaskFnId, Timestamp};

    fn cfg() -> SystemConfig {
        SystemConfig::table1()
    }

    fn bridge(c: &SystemConfig) -> RankBridge {
        RankBridge::new(RankId(0), 64, c, SimRng::new(1))
    }

    fn msg() -> Message {
        Message::Task(
            Task::new(TaskFnId(0), Timestamp(0), DataAddr(0), 1, TaskArgs::EMPTY),
            None,
        )
    }

    #[test]
    fn scatter_spills_to_backup_then_pauses() {
        let mut c = cfg();
        c.scatter_buffer_bytes = 32; // one ~20 B message fits
        c.backup_buffer_bytes = 32;
        let mut b = RankBridge::new(RankId(0), 2, &c, SimRng::new(1));
        b.enqueue_scatter(0, msg()).unwrap();
        b.enqueue_scatter(0, msg()).unwrap(); // spills (20+20 > 32)
        assert_eq!(b.stats.backups.get(), 1);
        assert!(b.backup_pending() > 0);
        // Backup (32 B) already holds 20 B; another 20 B message cannot
        // fit anywhere: the bridge pauses gathering and returns the
        // message to the caller.
        let r = b.enqueue_scatter(0, msg());
        assert_eq!(r, Err(msg()));
        assert_eq!(b.stats.gather_pauses.get(), 1);
    }

    #[test]
    fn refill_moves_backup_after_drain() {
        let mut c = cfg();
        c.scatter_buffer_bytes = 32;
        let mut b = RankBridge::new(RankId(0), 1, &c, SimRng::new(1));
        b.enqueue_scatter(0, msg()).unwrap();
        b.enqueue_scatter(0, msg()).unwrap(); // backup
        let drained = b.drain_scatter(0, 1024);
        assert_eq!(drained.len(), 1);
        b.refill_from_backup();
        assert_eq!(b.backup_pending(), 0);
        assert!(b.scatter_pending(0) > 0);
    }

    #[test]
    fn drain_respects_budget() {
        let c = cfg();
        let mut b = bridge(&c);
        for _ in 0..5 {
            b.enqueue_scatter(3, msg()).unwrap();
        }
        let one = msg().wire_bytes();
        let got = b.drain_scatter(3, 2 * one);
        assert_eq!(got.len(), 2);
        assert_eq!(b.drain_scatter(3, u32::MAX).len(), 3);
        assert_eq!(b.scatter_pending(3), 0);
    }

    #[test]
    fn idle_and_busy_classification() {
        let c = cfg();
        let mut b = bridge(&c);
        b.child_state[0].queue_workload = 0;
        b.child_state[1].queue_workload = 100;
        b.to_arrive[0] = 50;
        // Without correction unit 0 is idle below threshold 10.
        assert!(b.idle_children(10, false).contains(&0));
        // With correction its 50 in-flight workload disqualifies it.
        assert!(!b.idle_children(10, true).contains(&0));
        assert!(b.busy_children(10).contains(&1));
        assert!(!b.busy_children(10).contains(&0));
    }

    #[test]
    fn speed_estimate_converges() {
        let c = cfg();
        let mut b = bridge(&c);
        b.update_speed_estimate(2000, 0); // ignored
        assert_eq!(b.s_exe_cycles_per_wl, 0.0);
        b.update_speed_estimate(2000, 64 * 2000); // 1 cycle per wl unit
        assert!((b.s_exe_cycles_per_wl - 1.0).abs() < 1e-9);
        b.update_speed_estimate(2000, 64 * 1000); // 2 cycles per wl
        assert!(b.s_exe_cycles_per_wl > 1.0 && b.s_exe_cycles_per_wl < 2.0);
    }

    #[test]
    fn host_bridge_scatter_round_trip() {
        let c = cfg();
        let mut h = HostBridge::new(8, &c, SimRng::new(2));
        assert!(!h.has_pending());
        h.enqueue_scatter(5, msg());
        assert!(h.has_pending());
        assert!(h.scatter_pending(5) > 0);
        assert_eq!(h.drain_scatter(5).len(), 1);
        assert!(!h.has_pending());
    }

    #[test]
    fn pending_output_detection() {
        let c = cfg();
        let mut b = bridge(&c);
        assert!(!b.has_pending_output());
        b.enqueue_scatter(0, msg()).unwrap();
        assert!(b.has_pending_output());
        b.drain_scatter(0, u32::MAX);
        assert!(!b.has_pending_output());
        b.up_mailbox.push(msg()).unwrap();
        assert!(b.has_pending_output());
    }
}
