//! Byte-budgeted steal planning (gather-cost-aware load balancing).
//!
//! PR 3's traffic ledger attributed the measured W-vs-B gap to gather
//! traffic: naive steal-half moves ~22x B's gather bytes at Tiny
//! scale. The planner here makes the stealing policy charge itself for
//! those bytes. Each balancing round converts its workload budget into
//! a *byte* budget — the transfer volume the `W_th` derivation already
//! proves can hide behind execution — and then picks steal candidates
//! in preference order until either budget runs dry:
//!
//! 1. **task-only forwards** (tier 0): the candidate block is already
//!    lent to one of this round's receivers, so only the task
//!    descriptors move — no gather, no scatter;
//! 2. **sketch-hot blocks** (tier 1): HeavyGuardian says more work for
//!    this block keeps arriving, so the one-time gather amortizes over
//!    future tasks too;
//! 3. **everything else** (tier 2), densest workload-per-byte first.
//!
//! Within a tier candidates rank by workload-per-byte (exact integer
//! cross-multiplication, no floats), ties by queue position. The
//! functions here are pure so the property suite
//! (`tests/steal_policy.rs`) can drive them against a reference
//! planner on random states.

/// One steal candidate: a block grouped with all of its queued tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealCandidate {
    /// Opaque block identity (the block address), for reporting.
    pub key: u64,
    /// Cumulative workload of the queued tasks targeting the block.
    pub workload: u64,
    /// Wire bytes of the task descriptors that would move.
    pub task_bytes: u64,
    /// Wire bytes of the data transfer; `0` means the block already
    /// sits at the receiver and only tasks need to travel.
    pub data_bytes: u64,
    /// Whether the sketch currently tracks the block as hot.
    pub hot: bool,
}

impl StealCandidate {
    /// Total wire bytes this steal would move.
    pub fn bytes(&self) -> u64 {
        self.data_bytes + self.task_bytes
    }

    /// Preference tier: task-only < hot < rest.
    fn tier(&self) -> u8 {
        if self.data_bytes == 0 {
            0
        } else if self.hot {
            1
        } else {
            2
        }
    }
}

/// Whether candidate `a` ranks strictly better than `b`: lower tier
/// first, then higher workload-per-byte (compared exactly via integer
/// cross-multiplication).
pub fn ranks_better(a: &StealCandidate, b: &StealCandidate) -> bool {
    if a.tier() != b.tier() {
        return a.tier() < b.tier();
    }
    u128::from(a.workload) * u128::from(b.bytes().max(1))
        > u128::from(b.workload) * u128::from(a.bytes().max(1))
}

/// Per-candidate amortization: the cost model a block move must beat
/// to be worth stealing at all.
///
/// `W_th` says executing `w_th` workload hides `budget_gxfer · g_xfer`
/// transferred bytes. A candidate *pays for itself* when its own queued
/// workload hides its own wire bytes; a thinner candidate would stall
/// the receiver longer than the stolen work keeps it busy, which is
/// exactly the regime where W loses to B (Fig 10's inversion at small
/// scale). Task-only forwards always pay — no gather/scatter happens.
#[derive(Debug, Clone, Copy)]
pub struct AmortizeCfg {
    /// Gather/scatter transfer granularity (`SystemConfig::g_xfer`).
    pub g_xfer: u32,
    /// Byte allowance per `w_th`, in `g_xfer` multiples
    /// (`SystemConfig::steal_budget_gxfer`).
    pub budget_gxfer: u32,
    /// The rank's `W_th` workload threshold.
    pub w_th: u64,
}

impl AmortizeCfg {
    /// Whether stealing this candidate moves fewer bytes than its own
    /// workload can hide. Exact integer cross-multiplication:
    /// `bytes · w_th <= workload · budget_gxfer · g_xfer`.
    pub fn pays(&self, c: &StealCandidate) -> bool {
        if c.data_bytes == 0 {
            return true;
        }
        u128::from(c.bytes()) * u128::from(self.w_th.max(1))
            <= u128::from(c.workload)
                * u128::from(self.g_xfer)
                * u128::from(self.budget_gxfer.max(1))
    }
}

/// Converts a round's workload budget into its byte budget.
///
/// The `W_th` threshold is derived so that executing `W_th` workload
/// hides the transfer of `2·G_xfer` bytes (gather out + scatter back).
/// Inverting that: every `w_th` of stolen workload buys
/// `budget_gxfer · g_xfer` bytes of latency-hidden transfer
/// (`budget_gxfer` = 2 covers the round trip; `SystemConfig::
/// steal_budget_gxfer` exposes it). At least one block's worth is
/// always granted so a single steal can still happen.
pub fn steal_byte_budget(wl_budget: u64, w_th: u64, g_xfer: u32, budget_gxfer: u32) -> u64 {
    let per_round = u64::from(g_xfer) * u64::from(budget_gxfer.max(1));
    let rounds = wl_budget.max(1).div_ceil(w_th.max(1));
    rounds.saturating_mul(per_round).max(per_round)
}

/// Plans a steal batch: returns indices into `cands` in pick order.
///
/// Greedy over the total preference order: candidates are visited from
/// best-ranked to worst (ties broken by input position, i.e. queue
/// order) and picked while workload remains below `wl_budget` and the
/// pick still fits `byte_budget`. A candidate too expensive for the
/// remaining bytes is *deferred* — skipped, not fatal — so cheaper
/// candidates further down the order can still move this round.
///
/// Task-only candidates (`data_bytes == 0`) are never charged against
/// the byte budget: their task mail would be paid by the per-task
/// reroute path anyway, so forwarding them eagerly moves no
/// *incremental* bytes. They fit even a zero budget.
pub fn plan_steal(cands: &[StealCandidate], wl_budget: u64, byte_budget: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&i, &j| {
        if ranks_better(&cands[i], &cands[j]) {
            std::cmp::Ordering::Less
        } else if ranks_better(&cands[j], &cands[i]) {
            std::cmp::Ordering::Greater
        } else {
            i.cmp(&j)
        }
    });
    let mut picked = Vec::new();
    let mut wl = 0u64;
    let mut bytes = 0u64;
    for i in order {
        if wl >= wl_budget {
            break;
        }
        let c = &cands[i];
        if c.workload == 0 {
            continue;
        }
        if c.data_bytes == 0 {
            // Task-only: no incremental wire cost (see above).
            wl += c.workload;
            picked.push(i);
            continue;
        }
        match bytes.checked_add(c.bytes()) {
            Some(b) if b <= byte_budget => {
                bytes = b;
                wl += c.workload;
                picked.push(i);
            }
            _ => {} // deferred: does not fit the remaining byte budget
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        key: u64,
        workload: u64,
        task_bytes: u64,
        data_bytes: u64,
        hot: bool,
    ) -> StealCandidate {
        StealCandidate {
            key,
            workload,
            task_bytes,
            data_bytes,
            hot,
        }
    }

    #[test]
    fn byte_budget_inverts_w_threshold() {
        // One W_th of workload buys budget_gxfer * g_xfer bytes.
        assert_eq!(steal_byte_budget(52, 52, 256, 2), 512);
        // Partial rounds round up.
        assert_eq!(steal_byte_budget(53, 52, 256, 2), 1024);
        // Degenerate thresholds still grant one block's worth.
        assert_eq!(steal_byte_budget(0, 0, 256, 2), 512);
        // budget_gxfer scales linearly (and 0 clamps to 1).
        assert_eq!(steal_byte_budget(52, 52, 256, 4), 1024);
        assert_eq!(steal_byte_budget(52, 52, 256, 0), 256);
    }

    #[test]
    fn amortization_gates_thin_blocks() {
        let am = AmortizeCfg {
            g_xfer: 256,
            budget_gxfer: 2,
            w_th: 52,
        };
        // 346 wire bytes need >= ceil(346*52/512) = 36 workload.
        assert!(!am.pays(&cand(1, 35, 40, 306, false)));
        assert!(am.pays(&cand(2, 36, 40, 306, false)));
        // Task-only forwards always pay, however thin.
        assert!(am.pays(&cand(3, 1, 40, 0, false)));
        // Zero-workload block moves never pay.
        assert!(!am.pays(&cand(4, 0, 40, 306, true)));
    }

    #[test]
    fn tiers_order_task_only_then_hot_then_rest() {
        let task_only = cand(1, 10, 40, 0, false);
        let hot = cand(2, 1000, 40, 306, true);
        let cold = cand(3, 2000, 40, 306, false);
        assert!(ranks_better(&task_only, &hot));
        assert!(ranks_better(&hot, &cold));
        assert!(ranks_better(&task_only, &cold));
        assert!(!ranks_better(&cold, &task_only));
    }

    #[test]
    fn density_orders_within_a_tier() {
        let dense = cand(1, 100, 50, 306, false);
        let sparse = cand(2, 10, 50, 306, false);
        assert!(ranks_better(&dense, &sparse));
        assert!(!ranks_better(&sparse, &dense));
        // Equal density: neither strictly better (tie -> queue order).
        let a = cand(3, 10, 50, 306, false);
        let b = cand(4, 10, 50, 306, false);
        assert!(!ranks_better(&a, &b) && !ranks_better(&b, &a));
    }

    #[test]
    fn plan_respects_both_budgets() {
        let cands = vec![
            cand(1, 30, 40, 306, false),
            cand(2, 30, 40, 306, false),
            cand(3, 30, 40, 306, false),
        ];
        // Byte budget fits exactly two picks.
        let picks = plan_steal(&cands, u64::MAX, 2 * 346);
        assert_eq!(picks.len(), 2);
        // Workload budget stops after the first pick crosses it.
        let picks = plan_steal(&cands, 30, u64::MAX);
        assert_eq!(picks.len(), 1);
        // Zero byte budget moves nothing.
        assert!(plan_steal(&cands, u64::MAX, 0).is_empty());
    }

    #[test]
    fn oversized_candidate_is_deferred_not_fatal() {
        let cands = vec![
            cand(1, 1000, 40, 100_000, true), // hot but enormous
            cand(2, 10, 40, 306, false),
        ];
        let picks = plan_steal(&cands, u64::MAX, 400);
        assert_eq!(picks, vec![1], "the affordable candidate still moves");
    }

    #[test]
    fn task_only_candidates_bypass_the_byte_budget() {
        // Their task mail is paid by the reroute path regardless, so
        // even a zero byte budget forwards them.
        let cands = vec![cand(1, 10, 40, 0, false), cand(2, 10, 40, 0, false)];
        let picks = plan_steal(&cands, u64::MAX, 0);
        assert_eq!(picks.len(), 2);
        // ...but the workload budget still applies.
        let picks = plan_steal(&cands, 10, 0);
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn ties_break_by_queue_order() {
        let cands = vec![cand(9, 10, 50, 306, false), cand(7, 10, 50, 306, false)];
        let picks = plan_steal(&cands, u64::MAX, u64::MAX);
        assert_eq!(picks, vec![0, 1]);
    }
}
