//! The full-system discrete-event simulation.
//!
//! [`System`] wires the NDP units, rank bridges, host bridge, buses and
//! an [`Application`] together and runs the workload to completion under
//! one [`DesignPoint`]. Everything the paper evaluates flows through
//! here: data-local task execution, mailbox-based message passing,
//! bridge gather/scatter rounds with dynamic triggering (Section V),
//! and hierarchical data-transfer-aware load balancing (Section VI).

use crate::fasthash::FastMap;

use ndpb_dram::{AddressMap, BlockAddr, Bus, EnergyBreakdown, UnitId};
use ndpb_proto::message::DataMessage;
use ndpb_proto::Message;
use ndpb_sim::stats::FinishTimes;
use ndpb_sim::{ShardedEventQueue, SimRng, SimTime, TICKS_PER_CORE_CYCLE};
use ndpb_tasks::{Application, ExecCtx, Task, Timestamp};
use ndpb_trace::{ComponentId, MetricId, MetricsRegistry, TraceEvent, TraceRecord, TraceSink};

use crate::audit::{AuditLevel, Violation};
use crate::bridge::{HostBridge, RankBridge};
use crate::config::{w_threshold, SystemConfig, TriggerPolicy};
use crate::design::{CommPath, DesignPoint, LbPolicy};
use crate::epoch::EpochTracker;
use crate::result::{ParallelStats, ProfileStats, RunResult};
use crate::steal;
use crate::unit::{NdpUnit, ScheduledBlock};

/// Synthetic row ids for controller-managed bank regions (beyond the
/// data rows, like the paper's reserved addresses).
pub(crate) const MAILBOX_ROW: u64 = 1 << 21;
pub(crate) const TASKQ_ROW: u64 = (1 << 21) + 1;
const BORROW_ROW: u64 = (1 << 21) + 2;

/// Hard event cap: a correctness watchdog against livelock, far above
/// anything a legitimate run needs.
const MAX_EVENTS: u64 = 2_000_000_000;

#[derive(Debug)]
pub(crate) enum Ev {
    /// Wake a unit's core to execute the next task.
    CoreWake(u32),
    /// A task finished executing at a unit; deliver its children.
    TaskDone(u32, Task, Vec<Task>),
    /// A message arrives at a unit.
    Deliver(u32, Message),
    /// Periodic STATE-GATHER + load-balancing pass at a rank bridge.
    RankState(u32),
    /// A gather/scatter round at a rank bridge.
    RankRound(u32),
    /// Periodic host-side state poll (level-2 LB + round triggering).
    HostState,
    /// A host (level-2 / baseline-C) forwarding round.
    HostRound,
    /// A DIMM-Link round: drain one rank bridge's upward mailbox over
    /// its peer-to-peer link (bypassing the host).
    LinkRound(u32),
    /// A message arriving at a rank bridge over a DIMM-Link.
    LinkDeliver(u32, Message),
}

/// The simulated NDP system.
pub struct System {
    cfg: SystemConfig,
    design: DesignPoint,
    comm: CommPath,
    lb: LbPolicy,
    map: AddressMap,
    app: Box<dyn Application>,
    /// The event queue, partitioned into `cfg.shards` per-rank-affinity
    /// timer wheels. Pop order — and therefore every result — is
    /// byte-identical to a single queue for any shard count (the
    /// sharded queue's exact-merge contract); events are routed to
    /// shards by [`System::shard_of`].
    q: ShardedEventQueue<Ev>,
    /// Unit id → shard, precomputed so the per-event affinity lookup on
    /// the schedule hot path is one indexed load instead of divisions.
    unit_shard: Vec<u32>,
    /// Rank id → shard (same reasoning).
    rank_shard: Vec<u32>,
    units: Vec<NdpUnit>,
    bridges: Vec<RankBridge>,
    host: HostBridge,
    rank_bus: Vec<Bus>,
    channel: Vec<Bus>,
    /// Per-rank egress DIMM-Links (empty unless `cfg.dimm_link`).
    link_bus: Vec<Bus>,
    link_scheduled: Vec<bool>,
    epochs: EpochTracker,
    done: bool,
    /// Block id traced via `NDPB_TRACE_BLOCK` (debug aid), cached at
    /// construction so hot paths never touch the environment.
    traced_block: Option<u64>,
    /// Optional event trace sink (`None` = tracing off: hooks cost one
    /// branch). Attached via [`System::set_trace`], drained into
    /// [`RunResult::trace`] by `finalize`.
    trace: Option<Box<dyn TraceSink>>,
    /// Hierarchical run metrics, snapshotted at every epoch barrier.
    /// Supersedes the loose aggregate fields this struct used to carry.
    metrics: MetricsRegistry,
    m: SysMetrics,
    /// Conservation-audit bookkeeping (see [`crate::audit`]); inert
    /// when `cfg.audit` is [`AuditLevel::Off`].
    audit: AuditState,
    /// Recycled staging buffer for gather/scatter message batches. Round
    /// handlers `mem::take` it, drain a mailbox or scatter buffer into
    /// it, consume it, and hand it back — so the steady-state event loop
    /// does no per-batch heap allocation.
    msg_scratch: Vec<Message>,
    /// Recycled per-destination grouping table for the direct (C/R)
    /// scatter path; inner `Vec`s cycle through [`Self::vec_pool`].
    per_unit_scratch: Vec<(usize, Vec<Message>)>,
    /// Free list of empty message `Vec`s backing `per_unit_scratch`.
    vec_pool: crate::pool::BufPool<Message>,
    /// Persistent execution context: task reads/writes/spawns land in
    /// recycled buffers instead of three fresh `Vec`s per task.
    exec_ctx: ExecCtx,
    /// Free list of spawn `Vec`s cycling between [`Ev::TaskDone`] events
    /// and [`Self::exec_ctx`].
    spawn_pool: crate::pool::BufPool<Task>,
    /// Whether the windowed parallel engine is driving this run. When
    /// set, global-class events (rounds, state polls, link traffic)
    /// live on [`Self::gq`] instead of the wheels, so the wheels hold
    /// only unit-class events a lane may drain.
    windowed: bool,
    /// Leader-owned staging heap for global-class events in windowed
    /// mode, ordered by the same `(time, seq)` key as the wheels (seqs
    /// come from the queue's single counter via `alloc_seq`).
    gq: std::collections::BinaryHeap<GEntry>,
    /// Unit-class window-survivor creations held back at barriers
    /// until every causally-preceding event has executed. They keep
    /// their original causal positions forever: the next window seeds
    /// them back into their shard's pending heap, and between windows
    /// the leader dispatches one directly whenever it is the global
    /// minimum (DESIGN.md §9: the staging buffer). Re-stamping them
    /// through the wheel would erase the mid-tick coordinates other
    /// survivors still compare against.
    staged: std::collections::BinaryHeap<crate::parallel::PendingEv>,
    /// Global-class window survivors (round requests crossing a
    /// barrier). Same protocol as `staged`, but they can never be
    /// seeded into a lane, so the earliest one caps the next window's
    /// stop instead.
    staged_g: std::collections::BinaryHeap<crate::parallel::PendingEv>,
    /// Causal position of the event the leader is currently
    /// dispatching (empty outside a dispatch). Lets [`Self::sched`]
    /// stamp positions on creations that must queue behind staged
    /// survivors.
    dispatch_pos: Vec<u64>,
    /// Creation counter within the current leader dispatch (the `i` in
    /// the position encoding, mirroring a lane's per-handler counter).
    dispatch_births: u64,
    /// Parallel-execution statistics, populated by the windowed engine
    /// and surfaced as [`RunResult::parallel`].
    pstats: Option<ParallelStats>,
    /// Event-loop phase profile, armed by [`System::set_profile`] and
    /// surfaced as [`RunResult::profile`]. Deliberately *not* part of
    /// [`SystemConfig`]: the config's debug representation is hashed
    /// into cache fingerprints, and a wall-clock measurement toggle
    /// must never change a result's identity.
    profile: Option<ProfileStats>,
}

/// A global-class event staged on [`System::gq`] in windowed mode.
/// Ordered by `(at, seq)` — *reversed*, so `BinaryHeap`'s max-heap
/// yields the smallest key first, matching wheel pop order exactly.
struct GEntry {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for GEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for GEntry {}
impl PartialOrd for GEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Whether an event is global-class: its handler may touch state
/// outside one rank's shard (host bridge, cross-rank tables, buses of
/// other ranks), so the windowed engine always runs it on the leader
/// between windows.
fn is_global_class(ev: &Ev) -> bool {
    matches!(
        ev,
        Ev::RankState(_)
            | Ev::RankRound(_)
            | Ev::HostState
            | Ev::HostRound
            | Ev::LinkRound(_)
            | Ev::LinkDeliver(..)
    )
}

/// Per-cause attribution of communication-DRAM traffic. Every byte
/// added to `system/comm_dram_bytes` is also charged to exactly one
/// cause (via [`System::charge_comm`]), so the ledger rows sum to the
/// total — an equality the auditor checks.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CommCause {
    /// Local in-DRAM task-queue appends (same-unit spawns).
    Taskq,
    /// RowClone bank-to-bank copies (design R).
    RowClone,
    /// Mailbox writes of ordinary task messages.
    MailTask,
    /// Mailbox writes of LB-scheduled task messages.
    MailSched,
    /// Mailbox writes of block-assignment data messages.
    MailData,
    /// Mailbox writes of return-home data messages.
    MailReturn,
    /// Bridge gather reads of bank mailbox regions.
    Gather,
    /// Bridge scatter writes into destination banks.
    Scatter,
    /// Host direct-poll gather reads (designs C/R).
    HostGather,
    /// Host direct scatter writes (designs C/R).
    HostScatter,
}

impl CommCause {
    const NAMES: [&'static str; 10] = [
        "ledger/comm/taskq",
        "ledger/comm/rowclone",
        "ledger/comm/mail_task",
        "ledger/comm/mail_sched",
        "ledger/comm/mail_data",
        "ledger/comm/mail_return",
        "ledger/comm/gather",
        "ledger/comm/scatter",
        "ledger/comm/host_gather",
        "ledger/comm/host_scatter",
    ];
}

/// Per-cause attribution of SRAM staging traffic (the
/// `system/sram_staged_bytes` counterpart of [`CommCause`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum SramCause {
    /// Borrowed-region metadata updates on block admission.
    BorrowMeta,
    /// Messages staged into bridge buffers during gathers.
    BridgeGather,
    /// Messages staged out of bridge buffers during scatters.
    BridgeScatter,
    /// STATE-GATHER child-state bytes.
    State,
    /// DIMM-Link staging.
    Link,
    /// Host-bridge gather staging (level-2 rounds).
    HostGather,
}

impl SramCause {
    const NAMES: [&'static str; 6] = [
        "ledger/sram/borrow_meta",
        "ledger/sram/bridge_gather",
        "ledger/sram/bridge_scatter",
        "ledger/sram/state",
        "ledger/sram/link",
        "ledger/sram/host_gather",
    ];
}

/// Bookkeeping for messages riding inside queued `Deliver` /
/// `LinkDeliver` events, which the conservation audit cannot scan out
/// of the event queue, plus violations flagged inline at update sites.
/// Only maintained while `enabled` (i.e. `cfg.audit != Off`).
#[derive(Debug, Default)]
struct AuditState {
    enabled: bool,
    /// Message-carrying events currently queued.
    sched_events: u64,
    /// Data-block occurrence counts inside queued events.
    sched_data_blocks: FastMap<u64, u32>,
    /// Scheduled-task workload inside queued events, keyed by the
    /// intended receiver unit.
    sched_task_toward: FastMap<u32, u64>,
    /// Violations caught at update sites (e.g. a `toArrive` counter
    /// that would have gone negative), reported at the next scan.
    flagged: Vec<Violation>,
}

impl AuditState {
    fn note_scheduled(&mut self, msg: &Message) {
        self.sched_events += 1;
        match msg {
            Message::Task(t, Some(dest)) => {
                *self.sched_task_toward.entry(dest.0).or_insert(0) += t.workload_or_default();
            }
            Message::Data(dm, _) => {
                *self.sched_data_blocks.entry(dm.block.0).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    fn note_delivered(&mut self, msg: &Message) {
        self.sched_events = self.sched_events.saturating_sub(1);
        match msg {
            Message::Task(t, Some(dest)) => {
                if let Some(w) = self.sched_task_toward.get_mut(&dest.0) {
                    *w = w.saturating_sub(t.workload_or_default());
                    if *w == 0 {
                        self.sched_task_toward.remove(&dest.0);
                    }
                }
            }
            Message::Data(dm, _) => {
                if let Some(c) = self.sched_data_blocks.get_mut(&dm.block.0) {
                    *c -= 1;
                    if *c == 0 {
                        self.sched_data_blocks.remove(&dm.block.0);
                    }
                }
            }
            _ => {}
        }
    }

    fn flag(&mut self, law: &'static str, detail: String) {
        if self.flagged.len() < 16 {
            self.flagged.push(Violation { law, detail });
        }
    }
}

/// Every in-flight message the audit can reach by scanning mailboxes
/// and buffers, merged with the queued-event view from [`AuditState`].
struct InFlight {
    msgs: u64,
    data_blocks: FastMap<u64, u32>,
    task_toward: FastMap<u32, u64>,
}

/// Pre-registered [`MetricId`]s for the system's counters, so hot paths
/// update by index instead of by name.
struct SysMetrics {
    // Hot counters, updated inline.
    comm_dram_bytes: MetricId,
    msgs_delivered: MetricId,
    blocks_migrated: MetricId,
    sram_staged_bytes: MetricId,
    epoch: MetricId,
    // Gauges harvested from component stats at snapshot time.
    unit_tasks_executed: MetricId,
    unit_tasks_rerouted: MetricId,
    unit_mailbox_stalls: MetricId,
    sketch_reserved_hits: MetricId,
    sketch_reserved_overflows: MetricId,
    bridge_gathers: MetricId,
    bridge_wasted_gathers: MetricId,
    bridge_scatters: MetricId,
    bridge_bytes_gathered: MetricId,
    bridge_bytes_scattered: MetricId,
    bridge_lb_rounds: MetricId,
    bridge_schedules: MetricId,
    host_bytes_gathered: MetricId,
    host_bytes_scattered: MetricId,
    host_lb_rounds: MetricId,
    bus_rank_bytes: MetricId,
    bus_channel_bytes: MetricId,
    sketch_reserved_peak_chunks: MetricId,
    sketch_reserved_peak_tasks: MetricId,
    /// Per-cause traffic ledger rows, indexed by [`CommCause`].
    ledger_comm: [MetricId; 10],
    /// Per-cause SRAM staging rows, indexed by [`SramCause`].
    ledger_sram: [MetricId; 6],
}

impl SysMetrics {
    fn register(reg: &mut MetricsRegistry) -> Self {
        SysMetrics {
            comm_dram_bytes: reg.register("system/comm_dram_bytes"),
            msgs_delivered: reg.register("system/msgs_delivered"),
            blocks_migrated: reg.register("system/blocks_migrated"),
            sram_staged_bytes: reg.register("system/sram_staged_bytes"),
            epoch: reg.register("system/epoch"),
            unit_tasks_executed: reg.register("unit/tasks_executed"),
            unit_tasks_rerouted: reg.register("unit/tasks_rerouted"),
            unit_mailbox_stalls: reg.register("unit/mailbox_stalls"),
            sketch_reserved_hits: reg.register("sketch/reserved_hits"),
            sketch_reserved_overflows: reg.register("sketch/reserved_overflows"),
            bridge_gathers: reg.register("bridge/gathers"),
            bridge_wasted_gathers: reg.register("bridge/wasted_gathers"),
            bridge_scatters: reg.register("bridge/scatters"),
            bridge_bytes_gathered: reg.register("bridge/bytes_gathered"),
            bridge_bytes_scattered: reg.register("bridge/bytes_scattered"),
            bridge_lb_rounds: reg.register("bridge/lb_rounds"),
            bridge_schedules: reg.register("bridge/schedules"),
            host_bytes_gathered: reg.register("host/bytes_gathered"),
            host_bytes_scattered: reg.register("host/bytes_scattered"),
            host_lb_rounds: reg.register("host/lb_rounds"),
            bus_rank_bytes: reg.register("bus/rank_bytes"),
            bus_channel_bytes: reg.register("bus/channel_bytes"),
            sketch_reserved_peak_chunks: reg.register("sketch/reserved_peak_chunks"),
            sketch_reserved_peak_tasks: reg.register("sketch/reserved_peak_tasks"),
            ledger_comm: CommCause::NAMES.map(|n| reg.register(n)),
            ledger_sram: SramCause::NAMES.map(|n| reg.register(n)),
        }
    }
}

// The sweep engine builds a `System` on one thread and may run it on
// another, and ships `RunResult`s back over channels. Every field is
// owned data; the two boxed trait objects (`Application`, `TraceSink`)
// carry `Send` as a supertrait. This assertion turns any future
// `Rc`/non-`Send` regression into a compile error at the source.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>();
    assert_send::<RunResult>();
};

/// Reborrows the optional sink as the `Option<&mut dyn TraceSink>` the
/// component hooks take. (`Option::as_deref_mut` alone cannot shorten
/// the trait object's `'static` bound inside the `Option`, so every
/// hook site goes through this.)
fn sink(trace: &mut Option<Box<dyn TraceSink>>) -> Option<&mut dyn TraceSink> {
    match trace {
        Some(b) => Some(b.as_mut()),
        None => None,
    }
}

impl System {
    /// Builds a system running `app` under `design` with `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn new(cfg: SystemConfig, design: DesignPoint, app: Box<dyn Application>) -> Self {
        Self::with_app_factory(cfg, design, move || app)
    }

    /// Builds a system, calling `make_app` for the application.
    ///
    /// With `cfg.shards > 1`, construction itself is sharded: the
    /// application is built on its own thread while the NDP units are
    /// built in per-shard chunks in parallel. The RNG streams each
    /// component receives are forked serially up front in the exact
    /// order the serial constructor always used (forking mutates the
    /// parent), so the built system — and every result — is
    /// byte-identical to `shards = 1`; only the wall-clock cost of
    /// standing up a 512-unit system changes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn with_app_factory<F>(cfg: SystemConfig, design: DesignPoint, make_app: F) -> Self
    where
        F: FnOnce() -> Box<dyn Application> + Send,
    {
        cfg.validate();
        // More shards than ranks would only add empty wheels to every
        // pop's head scan.
        let shards = cfg.shards.clamp(1, cfg.geometry.total_ranks() as usize);
        let mut rng = SimRng::new(cfg.seed);
        let map = AddressMap::new(&cfg.geometry, cfg.g_xfer, cfg.timing.row_bytes);
        let unit_rngs: Vec<(UnitId, SimRng)> = cfg
            .geometry
            .all_units()
            .map(|id| (id, rng.fork(id.0 as u64)))
            .collect();
        let bridge_rngs: Vec<SimRng> = (0..cfg.geometry.total_ranks())
            .map(|r| rng.fork(1_000_000 + r as u64))
            .collect();
        let host_rng = rng.fork(2_000_000);
        // Construction fan-out is bounded by the cores actually
        // available: on a single-core host, extra builder threads would
        // only add spawn and context-switch cost (results are identical
        // either way — the RNG streams above are already forked).
        let builders =
            shards.min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        let (units, bridges, app) = if builders > 1 {
            Self::build_parallel(&cfg, builders, unit_rngs, bridge_rngs, make_app)
        } else {
            (
                unit_rngs
                    .into_iter()
                    .map(|(id, r)| NdpUnit::new(id, &cfg, r))
                    .collect(),
                Self::build_bridges(&cfg, bridge_rngs),
                make_app(),
            )
        };
        let host = HostBridge::new(cfg.geometry.total_ranks() as usize, &cfg, host_rng);
        let rank_bus = (0..cfg.geometry.total_ranks())
            .map(|_| Bus::new(cfg.geometry.intra_rank_data_bits()))
            .collect();
        let channel = (0..cfg.geometry.channels)
            .map(|_| Bus::new(cfg.geometry.channel_dq_bits()))
            .collect();
        let link_bus = match cfg.dimm_link {
            Some(bits) => (0..cfg.geometry.total_ranks())
                .map(|_| Bus::new(bits))
                .collect(),
            None => Vec::new(),
        };
        let link_scheduled = vec![false; cfg.geometry.total_ranks() as usize];
        let upr = cfg.geometry.units_per_rank();
        let rank_shard: Vec<u32> = (0..cfg.geometry.total_ranks())
            .map(|r| r % shards as u32)
            .collect();
        let unit_shard: Vec<u32> = cfg
            .geometry
            .all_units()
            .map(|id| rank_shard[(id.0 / upr) as usize])
            .collect();
        let traced_block = std::env::var_os("NDPB_TRACE_BLOCK")
            .and_then(|v| v.to_string_lossy().parse::<u64>().ok());
        let mut metrics = MetricsRegistry::new();
        let m = SysMetrics::register(&mut metrics);
        let audit = AuditState {
            enabled: cfg.audit != AuditLevel::Off,
            ..AuditState::default()
        };
        System {
            comm: design.comm_path(),
            lb: design.lb_policy(),
            design,
            map,
            app,
            q: ShardedEventQueue::new(shards),
            unit_shard,
            rank_shard,
            units,
            bridges,
            host,
            rank_bus,
            channel,
            link_bus,
            link_scheduled,
            epochs: EpochTracker::new(),
            done: false,
            traced_block,
            trace: None,
            metrics,
            m,
            audit,
            cfg,
            msg_scratch: Vec::new(),
            per_unit_scratch: Vec::new(),
            vec_pool: crate::pool::BufPool::new(),
            exec_ctx: ExecCtx::new(ndpb_dram::UnitId(0)),
            spawn_pool: crate::pool::BufPool::new(),
            windowed: false,
            gq: std::collections::BinaryHeap::new(),
            staged: std::collections::BinaryHeap::new(),
            staged_g: std::collections::BinaryHeap::new(),
            dispatch_pos: Vec::new(),
            dispatch_births: 0,
            pstats: None,
            profile: None,
        }
    }

    /// Builds the rank bridges from pre-forked RNG streams (order and
    /// salts fixed by [`Self::with_app_factory`]).
    fn build_bridges(cfg: &SystemConfig, bridge_rngs: Vec<SimRng>) -> Vec<RankBridge> {
        bridge_rngs
            .into_iter()
            .enumerate()
            .map(|(r, rr)| {
                RankBridge::new(
                    ndpb_dram::RankId(r as u32),
                    cfg.geometry.units_per_rank() as usize,
                    cfg,
                    rr,
                )
            })
            .collect()
    }

    /// Parallel construction path (`builders > 1`): the application
    /// factory runs on one scoped thread while the units are built in
    /// `builders` order-preserving chunks on others; the (few) bridges
    /// are built inline. Determinism is carried entirely by the
    /// pre-forked RNG streams — each chunk consumes exactly the streams
    /// the serial path would have handed the same units.
    fn build_parallel<F>(
        cfg: &SystemConfig,
        builders: usize,
        unit_rngs: Vec<(UnitId, SimRng)>,
        bridge_rngs: Vec<SimRng>,
        make_app: F,
    ) -> (Vec<NdpUnit>, Vec<RankBridge>, Box<dyn Application>)
    where
        F: FnOnce() -> Box<dyn Application> + Send,
    {
        let total = unit_rngs.len();
        let chunk = total.div_ceil(builders).max(1);
        std::thread::scope(|s| {
            let app_handle = s.spawn(make_app);
            let mut remaining = unit_rngs;
            let mut unit_handles = Vec::with_capacity(builders);
            while !remaining.is_empty() {
                let tail = remaining.split_off(chunk.min(remaining.len()));
                let batch = std::mem::replace(&mut remaining, tail);
                unit_handles.push(s.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(id, r)| NdpUnit::new(id, cfg, r))
                        .collect::<Vec<_>>()
                }));
            }
            let bridges = Self::build_bridges(cfg, bridge_rngs);
            let mut units = Vec::with_capacity(total);
            for h in unit_handles {
                units.extend(h.join().expect("unit construction panicked"));
            }
            let app = app_handle
                .join()
                .expect("application construction panicked");
            (units, bridges, app)
        })
    }

    /// Shard affinity of an event: the rank whose state its handler
    /// touches, modulo the shard count. Host-level events pin to shard
    /// 0. Affinity only decides which wheel holds the event — pop order
    /// is globally merged — so this is a locality knob, never a
    /// correctness one.
    #[inline]
    fn shard_of(&self, ev: &Ev) -> usize {
        if self.q.shards() == 1 {
            return 0;
        }
        match *ev {
            Ev::CoreWake(u) | Ev::TaskDone(u, ..) | Ev::Deliver(u, _) => {
                self.unit_shard[u as usize] as usize
            }
            Ev::RankState(r) | Ev::RankRound(r) | Ev::LinkRound(r) | Ev::LinkDeliver(r, _) => {
                self.rank_shard[r as usize] as usize
            }
            Ev::HostState | Ev::HostRound => 0,
        }
    }

    /// Schedules `ev` at `at` on its affinity shard (see
    /// [`Self::shard_of`]).
    ///
    /// In windowed mode, global-class events go to the leader's staging
    /// heap instead of the wheels, stamped from the same sequence
    /// counter so `(time, seq)` order across both populations is
    /// exactly what one queue would have produced.
    #[inline]
    fn sched(&mut self, at: SimTime, ev: Ev) {
        if self.windowed {
            // A leader creation firing at or after a still-staged
            // survivor's tick must queue behind it: the survivor may
            // share its fire tick, and the serial engine scheduled the
            // survivor first (its creator executed before this
            // dispatch). Stage it at its own causal position so the
            // release loop stamps both in serial order. Survivors
            // firing strictly later can never collide on a tick, so
            // everything else stamps immediately.
            let staged_at = match (self.staged.peek(), self.staged_g.peek()) {
                (None, None) => None,
                (Some(s), None) | (None, Some(s)) => Some(s.at),
                (Some(a), Some(b)) => Some(a.at.min(b.at)),
            };
            if !self.dispatch_pos.is_empty() && staged_at.is_some_and(|m| m <= at) {
                let mut pos = Vec::with_capacity(self.dispatch_pos.len() + 3);
                pos.push(at.ticks());
                pos.push(1);
                pos.extend_from_slice(&self.dispatch_pos);
                pos.push(self.dispatch_births);
                self.dispatch_births += 1;
                let p = crate::parallel::PendingEv { pos, at, ev };
                if is_global_class(&p.ev) {
                    self.staged_g.push(p);
                } else {
                    self.staged.push(p);
                }
                return;
            }
            self.dispatch_births += 1;
            if is_global_class(&ev) {
                debug_assert!(at >= self.q.now());
                let seq = self.q.alloc_seq();
                self.gq.push(GEntry { at, seq, ev });
                return;
            }
        }
        let shard = self.shard_of(&ev);
        self.q.schedule(at, shard, ev);
    }

    /// Charges communication-DRAM traffic to the system total and the
    /// matching per-cause ledger row (the audit checks they stay equal).
    fn charge_comm(&mut self, cause: CommCause, bytes: u64) {
        self.metrics.add(self.m.comm_dram_bytes, bytes);
        self.metrics.add(self.m.ledger_comm[cause as usize], bytes);
    }

    /// Charges SRAM staging traffic to the total and its ledger row.
    fn charge_sram(&mut self, cause: SramCause, bytes: u64) {
        self.metrics.add(self.m.sram_staged_bytes, bytes);
        self.metrics.add(self.m.ledger_sram[cause as usize], bytes);
    }

    /// Schedules a message delivery to unit `u`, keeping the audit's
    /// view of messages queued inside events current.
    fn schedule_delivery(&mut self, at: SimTime, u: usize, msg: Message) {
        if self.audit.enabled {
            self.audit.note_scheduled(&msg);
        }
        self.sched(at, Ev::Deliver(u as u32, msg));
    }

    /// Schedules a DIMM-Link delivery to rank `r` (see
    /// [`Self::schedule_delivery`]).
    fn schedule_link_delivery(&mut self, at: SimTime, r: usize, msg: Message) {
        if self.audit.enabled {
            self.audit.note_scheduled(&msg);
        }
        self.sched(at, Ev::LinkDeliver(r as u32, msg));
    }

    /// Attaches a trace sink; events recorded during [`run`](Self::run)
    /// are drained into [`RunResult::trace`](crate::result::RunResult).
    /// Without a sink every hook costs a single branch.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Arms the event-loop phase profiler: [`run`](Self::run) will
    /// attribute wall time to queue ops vs. handler dispatch vs.
    /// finalization and record the same-tick batch-length histogram,
    /// surfacing it as [`RunResult::profile`]. Profiled runs take the
    /// serial exact-merge path (phase timings of interleaved lanes
    /// would be meaningless) and produce byte-identical results; the
    /// profile itself never reaches golden JSON or the result cache.
    pub fn set_profile(&mut self) {
        self.profile = Some(ProfileStats::default());
    }

    /// The address map in force (for tests and workload setup).
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Dispatches one event to its handler.
    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::CoreWake(u) => self.on_core_wake(u as usize),
            Ev::TaskDone(u, task, children) => self.on_task_done(u as usize, task, children),
            Ev::Deliver(u, msg) => self.on_deliver(u as usize, msg),
            Ev::RankState(r) => self.on_rank_state(r as usize),
            Ev::RankRound(r) => self.on_rank_round(r as usize),
            Ev::HostState => self.on_host_state(),
            Ev::HostRound => self.on_host_round(),
            Ev::LinkRound(r) => self.on_link_round(r as usize),
            Ev::LinkDeliver(r, msg) => self.on_link_deliver(r as usize, msg),
        }
    }

    /// Runs the application to completion and returns the metrics.
    pub fn run(mut self) -> RunResult {
        if self.parallel_admissible() {
            return self.run_windowed();
        }
        self.inject_initial();
        // An application with no tasks is already done; don't arm the
        // periodic machinery at all.
        if self.epochs.all_done() {
            self.done = true;
            return self.finalize();
        }
        // Periodic machinery.
        for r in 0..self.bridges.len() {
            if self.comm == CommPath::Bridges {
                self.bridges[r].state_scheduled = true;
                self.sched(self.cfg.i_state(), Ev::RankState(r as u32));
            }
        }
        self.sched(self.cfg.i_state(), Ev::HostState);

        if std::env::var_os("NDPB_DEBUG").is_none() {
            if self.profile.is_some() {
                self.run_serial_profiled();
            } else {
                // Batched same-tick dispatch: one head scan + bitmap
                // walk + overflow compare per *run* instead of per
                // event, with pop order byte-identical to single pops
                // by the `pop_run` contract (DESIGN.md §3c).
                let mut batch: Vec<Ev> = Vec::with_capacity(64);
                while self.q.pop_run(&mut batch).is_some() {
                    assert!(
                        self.q.popped() < MAX_EVENTS,
                        "event watchdog tripped: likely livelock in {} on {}",
                        self.design,
                        self.app.name()
                    );
                    for ev in batch.drain(..) {
                        self.dispatch(ev);
                    }
                }
            }
            assert!(
                self.epochs.all_done(),
                "simulation drained its event queue with {} tasks outstanding ({} on {})",
                self.epochs.total_outstanding(),
                self.design,
                self.app.name()
            );
            return self.finalize();
        }

        // NDPB_DEBUG: pop-at-a-time loop so the periodic diagnostic
        // dump observes every event boundary.
        while let Some((_, ev)) = self.q.pop() {
            assert!(
                self.q.popped() < MAX_EVENTS,
                "event watchdog tripped: likely livelock in {} on {}",
                self.design,
                self.app.name()
            );
            if self.q.popped().is_multiple_of(1_000_000) {
                let queued: usize = self.units.iter().map(|u| u.queued_tasks()).sum();
                let future: usize = self.units.iter().map(|u| u.future_tasks()).sum();
                let mailed: usize = self.units.iter().map(|u| u.mailbox.len()).sum();
                let pend: usize = self.units.iter().map(|u| u.pending_out.len()).sum();
                let scat: u64 = self
                    .bridges
                    .iter()
                    .map(|b| (0..b.children()).map(|i| b.scatter_pending(i)).sum::<u64>())
                    .sum();
                let bkup: u64 = self.bridges.iter().map(|b| b.backup_pending()).sum();
                let up: usize = self.bridges.iter().map(|b| b.up_mailbox.len()).sum();
                let host: u64 = (0..self.bridges.len())
                    .map(|r| self.host.scatter_pending(r))
                    .sum();
                for (ri, b) in self.bridges.iter().enumerate() {
                    let sc: u64 = (0..b.children()).map(|i| b.scatter_pending(i)).sum();
                    if sc > 0 || b.backup_pending() > 0 {
                        eprintln!(
                            "[r{ri}: scatters={} sc={}B bk={}B sched={} pauses={}]",
                            b.stats.scatters.get(),
                            sc,
                            b.backup_pending(),
                            b.round_scheduled,
                            b.stats.gather_pauses.get(),
                        );
                    }
                }
                eprintln!(
                    "[ndpb {} {}] {}M events, t={}, outstanding={}, epoch={:?} | queued={} future={} mailbox={} pendout={} scatterB={} backupB={} up={} hostB={}",
                    self.design,
                    self.app.name(),
                    self.q.popped() / 1_000_000,
                    self.q.now(),
                    self.epochs.total_outstanding(),
                    self.epochs.current(),
                    queued,
                    future,
                    mailed,
                    pend,
                    scat,
                    bkup,
                    up,
                    host,
                );
            }
            self.dispatch(ev);
        }
        assert!(
            self.epochs.all_done(),
            "simulation drained its event queue with {} tasks outstanding ({} on {})",
            self.epochs.total_outstanding(),
            self.design,
            self.app.name()
        );
        self.finalize()
    }

    /// The batched serial loop with phase timing: `Instant` reads
    /// bracket each queue pop and each batch dispatch, so the overhead
    /// is two clock reads per *run*, not per event.
    fn run_serial_profiled(&mut self) {
        let mut prof = ProfileStats::default();
        let mut batch: Vec<Ev> = Vec::with_capacity(64);
        loop {
            let t0 = std::time::Instant::now();
            let popped = self.q.pop_run(&mut batch).is_some();
            prof.queue_ns += t0.elapsed().as_nanos() as u64;
            if !popped {
                break;
            }
            assert!(
                self.q.popped() < MAX_EVENTS,
                "event watchdog tripped: likely livelock in {} on {}",
                self.design,
                self.app.name()
            );
            prof.note_batch(batch.len());
            let t1 = std::time::Instant::now();
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
            prof.dispatch_ns += t1.elapsed().as_nanos() as u64;
        }
        self.profile = Some(prof);
    }

    // ---- windowed parallel execution --------------------------------------

    /// Whether this run may use the windowed parallel engine. Anything
    /// unprovable falls back to the exact serial merge: parallelism is
    /// strictly opt-in-fast, never silently wrong.
    fn parallel_admissible(&self) -> bool {
        self.q.shards() >= 2
            // Lane handler ports assume bridge communication; C/H/R
            // paths and DIMM-Links route through leader-only state.
            && self.comm == CommPath::Bridges
            && self.cfg.dimm_link.is_none()
            // The audit scans queue internals mid-run; tracing and the
            // debug hooks observe exact interleavings.
            && self.cfg.audit == AuditLevel::Off
            && self.trace.is_none()
            && self.traced_block.is_none()
            // Profiling attributes wall time to serial phases; lane
            // threads would make the split meaningless.
            && self.profile.is_none()
            && std::env::var_os("NDPB_DEBUG").is_none()
            // The application must declare order-independent execute().
            && self.app.parallel_commutes()
    }

    /// The windowed main loop: global-class events (rounds, state
    /// polls) run serially on the leader in exact `(time, seq)` order;
    /// stretches of unit-class events between them are drained by
    /// per-shard lanes in parallel windows. Results are byte-identical
    /// to [`Self::run`]'s serial loop by construction (DESIGN.md §9).
    fn run_windowed(mut self) -> RunResult {
        self.windowed = true;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get() >= 2)
            .unwrap_or(false);
        let mut stats = ParallelStats {
            shards: self.q.shards() as u32,
            lane_threads: threads,
            ..ParallelStats::default()
        };
        self.inject_initial();
        if self.epochs.all_done() {
            self.done = true;
            self.pstats = Some(stats);
            return self.finalize();
        }
        for r in 0..self.bridges.len() {
            // Admission guarantees CommPath::Bridges.
            self.bridges[r].state_scheduled = true;
            self.sched(self.cfg.i_state(), Ev::RankState(r as u32));
        }
        self.sched(self.cfg.i_state(), Ev::HostState);

        let shards = self.q.shards();
        loop {
            assert!(
                self.q.popped() < MAX_EVENTS,
                "event watchdog tripped: likely livelock in {} on {}",
                self.design,
                self.app.name()
            );
            let wmin = self.q.min_head_key();
            let gmin = self.gq.peek().map(|g| (g.at, g.seq));
            // The staging buffers are a third queue: a staged window
            // survivor whose causal position precedes every queued key
            // is the globally next event (everything queued fires at a
            // strictly later point in serial order, so nothing can
            // still create a same-tick predecessor). Dispatch it
            // directly, carrying its original position so its own
            // creations stamp behind any remaining same-tick survivors.
            // It is never re-stamped through the wheel: a fresh
            // `[t, 0, seq]` key would compare as tick-start against
            // survivors still holding mid-tick creation coordinates.
            let smin_unit = match (self.staged.peek(), self.staged_g.peek()) {
                (None, None) => None,
                (Some(_), None) => Some(true),
                (None, Some(_)) => Some(false),
                (Some(u), Some(g)) => Some(u.pos <= g.pos),
            };
            if let Some(unit) = smin_unit {
                let s = if unit {
                    self.staged.peek()
                } else {
                    self.staged_g.peek()
                }
                .expect("class heap with the minimum is non-empty");
                let next = match (wmin, gmin) {
                    (None, None) => None,
                    (Some(w), None) => Some(w),
                    (None, Some(g)) => Some(g),
                    (Some(w), Some(g)) => Some(w.min(g)),
                };
                let due = match next {
                    None => true,
                    Some(k) => s.pos < crate::parallel::key_pos(k),
                };
                if due {
                    let p = if unit {
                        self.staged.pop()
                    } else {
                        self.staged_g.pop()
                    }
                    .expect("peeked staged entry vanished");
                    self.q.note_external_pop(p.at);
                    stats.serial_fallback_steps += 1;
                    self.dispatch_pos = p.pos;
                    self.dispatch_births = 0;
                    self.dispatch(p.ev);
                    self.dispatch_pos.clear();
                    continue;
                }
            }
            let heap_next = match (wmin, gmin) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(w), Some(g)) => g < w,
            };
            if heap_next {
                let g = self.gq.pop().expect("peeked heap entry vanished");
                self.q.note_external_pop(g.at);
                stats.serial_fallback_steps += 1;
                self.dispatch_pos = crate::parallel::key_pos((g.at, g.seq));
                self.dispatch_births = 0;
                self.dispatch(g.ev);
                self.dispatch_pos.clear();
                continue;
            }
            // Next is a wheel (unit-class) event. The window may run to
            // the earliest global-class event: the heap top, or — when
            // no host round is staged — the earliest instant a *chained*
            // one could land. A host round can only be chained off a
            // rank round that gathered at least one message, which costs
            // one rank-bus grant of `chips × g_xfer` bytes; and
            // `consider_host_round` never schedules before
            // `host.last_round_end`. So the earliest chained host round
            // is `max(last_round_end, wmin + transfer_time)` (DESIGN.md
            // §9: the cascade floor).
            let mut stop = gmin.unwrap_or((SimTime::MAX, u64::MAX));
            if !self.host.round_scheduled {
                let gather_bytes = self.cfg.geometry.chips_per_rank as u64 * self.cfg.g_xfer as u64;
                let d_min = self.rank_bus[0].transfer_time(gather_bytes);
                let mut wstart = wmin.expect("wheel head exists").0;
                // A staged unit survivor seeded into this window may
                // fire before the wheel head; the chain floor must
                // start from the earliest event the window can run.
                if let Some(s) = self.staged.peek() {
                    wstart = wstart.min(s.at);
                }
                let chain = (wstart + d_min).max(self.host.last_round_end);
                stop = stop.min((chain, 0));
            }
            // A staged *global* survivor still precedes every event at
            // later ticks, and no lane may execute one; cap the window
            // so nothing past its tick runs first. Same-tick wheel
            // keys `[t, 0, seq]` sort below its creation position
            // `[t, 1, …]` and may proceed; same-tick in-window
            // creations get excluded, re-staged, and dispatched in
            // position order. Unit-class survivors need no cap: the
            // window seeds them into their own shard's pending heap,
            // where the lane interleaves them with its wheel slice in
            // exact position order.
            if let Some(s) = self.staged_g.peek() {
                stop = stop.min((s.at, u64::MAX));
            }
            // Epoch guard: per-lane completion budgets must sum below
            // the current epoch's outstanding count, so no window can
            // drain the epoch (advances are leader work).
            let guard = self.epochs.outstanding_current() > shards as u64;
            // Seeded survivors keep a lane busy too: `[t, 1, …]` is
            // inside the window iff `t` precedes the stop tick.
            let seed_busy = self.staged.peek().is_some_and(|s| s.at < stop.0) as usize;
            let multi = self.q.shards_with_head_below(stop) + seed_busy >= 2;
            if guard && multi && wmin.expect("wheel head exists") < stop {
                self.run_window(stop, threads, &mut stats);
            } else {
                let key = wmin.expect("wheel head exists");
                let (_, ev) = self.q.pop().expect("wheel head exists");
                stats.serial_fallback_steps += 1;
                self.dispatch_pos = crate::parallel::key_pos(key);
                self.dispatch_births = 0;
                self.dispatch(ev);
                self.dispatch_pos.clear();
            }
        }
        assert!(
            self.epochs.all_done(),
            "simulation drained its event queue with {} tasks outstanding ({} on {})",
            self.epochs.total_outstanding(),
            self.design,
            self.app.name()
        );
        self.pstats = Some(stats);
        self.finalize()
    }

    /// Executes one parallel window: partitions units and bridges by
    /// shard, drains each lane concurrently up to `stop`, then merges
    /// the lanes' deferred effects and re-schedules their surviving
    /// creations in exact serial order.
    fn run_window(&mut self, stop: (SimTime, u64), threads: bool, stats: &mut ParallelStats) {
        use crate::parallel::{key_pos, Lane, LaneResult, PendingEv};

        debug_assert!(!self.done);
        let shards = self.q.shards();
        let out = self.epochs.outstanding_current();
        debug_assert!(out > shards as u64);
        let budget = (out - 1) / shards as u64;
        let stop_pos = key_pos(stop);

        // Seed each lane's pending heap with its shard's staged
        // unit-class survivors that fire inside this window. The lane
        // interleaves them with its wheel slice by causal position —
        // the same order the serial engine would execute them — so a
        // survivor never strands the whole run in serial fallback.
        // Out-of-window survivors stay staged for a later window or a
        // direct dispatch.
        let mut seeds: Vec<Vec<PendingEv>> = (0..shards).map(|_| Vec::new()).collect();
        for p in std::mem::take(&mut self.staged).into_vec() {
            if p.pos < stop_pos {
                let sh = self.shard_of(&p.ev);
                seeds[sh].push(p);
            } else {
                self.staged.push(p);
            }
        }

        // Block scope: every lane borrow (units, bridges, app mutex,
        // queue views) ends here, before the merge touches `self`.
        let (results, idle): (Vec<LaneResult>, Vec<ndpb_sim::LaneOutcome>) = {
            let mut lane_units: Vec<Vec<&mut NdpUnit>> = (0..shards).map(|_| Vec::new()).collect();
            for (i, u) in self.units.iter_mut().enumerate() {
                lane_units[self.unit_shard[i] as usize].push(u);
            }
            let mut lane_bridges: Vec<Vec<&mut RankBridge>> =
                (0..shards).map(|_| Vec::new()).collect();
            for (r, b) in self.bridges.iter_mut().enumerate() {
                lane_bridges[self.rank_shard[r] as usize].push(b);
            }
            let app = std::sync::Mutex::new(&mut self.app);
            let cfg = &self.cfg;
            let map = &self.map;
            let lb = self.lb;
            let epochs = &self.epochs;

            let mut idle = Vec::new();
            let mut lanes = Vec::new();
            let views = self.q.lane_views();
            let mut units_it = lane_units.into_iter();
            let mut bridges_it = lane_bridges.into_iter();
            let mut seeds_it = seeds.into_iter();
            for view in views {
                let lu = units_it.next().expect("one unit slice per shard");
                let lbr = bridges_it.next().expect("one bridge slice per shard");
                let sd = seeds_it.next().expect("one seed set per shard");
                // A lane with nothing before the stop would do no work;
                // skip the thread and leave its wheel untouched.
                let busy = view.peek_key().is_some_and(|k| k < stop) || !sd.is_empty();
                if busy {
                    lanes.push(Lane::new(
                        view,
                        lu,
                        lbr,
                        cfg,
                        map,
                        lb,
                        epochs,
                        &app,
                        shards,
                        stop_pos.clone(),
                        budget,
                        sd,
                    ));
                } else {
                    idle.push(view.finish());
                }
            }
            let results = if threads {
                std::thread::scope(|s| {
                    let handles: Vec<_> = lanes
                        .into_iter()
                        .map(|l| s.spawn(move || l.run()))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("lane panicked"))
                        .collect()
                })
            } else {
                lanes.into_iter().map(Lane::run).collect()
            };
            (results, idle)
        };

        self.q.absorb_lanes(idle);
        self.q.absorb_lanes(results.iter().map(|r| r.outcome));

        let max_wall = results.iter().map(|r| r.wall_ns).max().unwrap_or(0);
        stats.barrier_stall_ns += results.iter().map(|r| max_wall - r.wall_ns).sum::<u64>();

        // Deferred deltas: every one commutes across lanes (DESIGN.md
        // §9), so per-lane application order is immaterial.
        for r in &results {
            for (i, &b) in r.comm.iter().enumerate() {
                if b > 0 {
                    self.metrics.add(self.m.comm_dram_bytes, b);
                    self.metrics.add(self.m.ledger_comm[i], b);
                }
            }
            for (i, &b) in r.sram.iter().enumerate() {
                if b > 0 {
                    self.metrics.add(self.m.sram_staged_bytes, b);
                    self.metrics.add(self.m.ledger_sram[i], b);
                }
            }
            self.metrics.add(self.m.msgs_delivered, r.msgs_delivered);
            for &(ir, il, wl) in &r.settles {
                self.bridges[ir].to_arrive[il] = self.bridges[ir].to_arrive[il].saturating_sub(wl);
                self.host.to_arrive[ir] = self.host.to_arrive[ir].saturating_sub(wl);
            }
            for block in &r.host_removed {
                self.host.data_borrowed.remove(block);
            }
        }
        // Epoch bookkeeping: all spawns before all completions, so a
        // completion can never reference an epoch the tracker has not
        // seen. The budgets guarantee no completion drains the epoch.
        for r in &results {
            for &(ts, n) in &r.spawns {
                for _ in 0..n {
                    self.epochs.spawned(ts);
                }
            }
        }
        for r in &results {
            for &(ts, n) in &r.completions {
                for _ in 0..n {
                    let advanced = self.epochs.completed(ts);
                    debug_assert!(
                        advanced.is_none(),
                        "window completion drained epoch {ts:?} despite budget"
                    );
                }
            }
        }
        // Surviving creations are *staged*, not scheduled: a lane that
        // stopped early at its own crossing may post a smaller-position
        // creation at the *next* barrier, and stamping sequence numbers
        // now would invert same-tick order against it. The loop head
        // releases staged entries in position order once nothing queued
        // can precede them, so sequence order equals position order —
        // the serial schedule order — by construction.
        for p in results.into_iter().flat_map(|r| r.leftovers) {
            if is_global_class(&p.ev) {
                self.staged_g.push(p);
            } else {
                self.staged.push(p);
            }
        }
        stats.windows += 1;
    }

    /// Debug aid: prints lifecycle events of the block named by the
    /// `NDPB_TRACE_BLOCK` environment variable.
    /// Takes the annotation lazily so untraced runs (the normal case)
    /// never pay for formatting it.
    fn trace_block(&self, block: BlockAddr, what: impl FnOnce() -> String) {
        if self.traced_block == Some(block.0) {
            eprintln!(
                "[block {} @{} {}] {}",
                block.0,
                self.q.now(),
                self.design,
                what()
            );
        }
    }

    // ---- setup ------------------------------------------------------------

    fn inject_initial(&mut self) {
        let initial = self.app.initial_tasks();
        for task in initial {
            self.epochs.spawned(task.ts);
            let home = self.map.home_unit(task.data);
            let hot = self.lb.hot_data;
            let idx = home.index();
            if self.epochs.is_ready(task.ts) {
                let map = &self.map;
                self.units[idx].enqueue_ready(task, hot, map);
            } else {
                self.units[idx].enqueue_future(task);
            }
        }
        for u in 0..self.units.len() {
            if self.units[u].queued_tasks() > 0 {
                self.wake_unit(u, SimTime::ZERO);
            }
        }
    }

    fn wake_unit(&mut self, u: usize, at: SimTime) {
        let unit = &mut self.units[u];
        if unit.wake_scheduled {
            return;
        }
        unit.wake_scheduled = true;
        let at = at.max(self.q.now());
        self.sched(at, Ev::CoreWake(u as u32));
    }

    // ---- core execution ---------------------------------------------------

    fn on_core_wake(&mut self, u: usize) {
        self.units[u].wake_scheduled = false;
        let now = self.q.now();
        if now < self.units[u].core_free_at {
            let at = self.units[u].core_free_at;
            self.wake_unit(u, at);
            return;
        }
        // A core with undelivered outgoing messages is stalled until the
        // next gather drains the mailbox (Section V-A).
        if !self.units[u].pending_out.is_empty() {
            self.flush_pending_out(u);
            if !self.units[u].pending_out.is_empty() {
                self.units[u].stats.mailbox_stalls.inc();
                return;
            }
        }
        let Some(task) = ({
            let map = &self.map;
            self.units[u].pop_task(map)
        }) else {
            return;
        };
        let block = self.map.block_of(task.data);
        if !self.units[u].holds_block(block, &self.map) {
            // The block migrated while this task waited: re-route it.
            self.units[u].stats.tasks_rerouted.inc();
            let msg = Message::Task(task, None);
            self.emit_message(u, msg, now);
            self.wake_unit(u, now);
            return;
        }
        if self.units[u].is_borrowed(block) {
            self.units[u].touch_borrow(block);
        }
        // Execute, reusing the persistent context: reads/writes land in
        // recycled buffers and the spawn `Vec` comes off the free list.
        let spawn_buf = self.spawn_pool.get();
        self.exec_ctx.reset(self.units[u].id, spawn_buf);
        self.app.execute(&task, &mut self.exec_ctx);
        let ctx = &self.exec_ctx;
        let mut t = now + SimTime::from_ticks(ctx.compute_cycles() * TICKS_PER_CORE_CYCLE);
        let timing = &self.cfg.timing;
        let comp = ComponentId::Unit(u as u32);
        {
            let unit = &mut self.units[u];
            for &(addr, bytes) in ctx.reads() {
                let row = self.map.row_of(addr);
                t = unit
                    .bank
                    .access_traced(t, row, bytes, false, timing, comp, sink(&mut self.trace))
                    .end;
                unit.stats.dram_local_bytes.add(bytes as u64);
            }
            for &(addr, bytes) in ctx.writes() {
                let row = self.map.row_of(addr);
                t = unit
                    .bank
                    .access_traced(t, row, bytes, true, timing, comp, sink(&mut self.trace))
                    .end;
                unit.stats.dram_local_bytes.add(bytes as u64);
            }
            unit.core_free_at = t;
            unit.stats.busy.record(now, t);
            unit.stats.last_finish = t;
            unit.stats.tasks_executed.inc();
            unit.add_finished(task.workload_or_default());
        }
        if let Some(tr) = sink(&mut self.trace) {
            tr.record(TraceRecord::span(
                now,
                t - now,
                comp,
                TraceEvent::TaskExec {
                    func: task.func.0,
                    workload: task.workload_or_default(),
                },
            ));
        }
        let children = self.exec_ctx.take_spawned();
        for c in &children {
            self.epochs.spawned(c.ts);
        }
        self.sched(t, Ev::TaskDone(u as u32, task, children));
    }

    fn on_task_done(&mut self, u: usize, task: Task, mut children: Vec<Task>) {
        let now = self.q.now();
        for child in children.drain(..) {
            self.route_spawn(u, child, now);
        }
        self.spawn_pool.put(children);
        if let Some(new_epoch) = self.epochs.completed(task.ts) {
            self.note_epoch_advance(new_epoch, now);
            let hot = self.lb.hot_data;
            for i in 0..self.units.len() {
                let released = {
                    let map = &self.map;
                    self.units[i].release_epoch(new_epoch, hot, map)
                };
                if released > 0 {
                    self.wake_unit(i, now);
                }
            }
        }
        if self.epochs.all_done() {
            self.done = true;
        }
        self.wake_unit(u, now);
    }

    /// Routes a freshly spawned child task from unit `u`.
    fn route_spawn(&mut self, u: usize, task: Task, now: SimTime) {
        let block = self.map.block_of(task.data);
        if self.units[u].holds_block(block, &self.map) {
            // Local: enqueue directly (a cheap in-DRAM task-queue append).
            self.charge_comm(CommCause::Taskq, task.wire_bytes() as u64);
            let timing = &self.cfg.timing;
            let unit = &mut self.units[u];
            unit.bank.access_traced(
                now,
                TASKQ_ROW,
                task.wire_bytes(),
                true,
                timing,
                ComponentId::Unit(u as u32),
                sink(&mut self.trace),
            );
            let hot = self.lb.hot_data;
            if self.epochs.is_ready(task.ts) {
                let map = &self.map;
                unit.enqueue_ready(task, hot, map);
                self.wake_unit(u, now);
            } else {
                unit.enqueue_future(task);
            }
            return;
        }
        // RowClone fast path: same-chip destination.
        if self.comm == CommPath::RowClone {
            let home = self.map.block_home(block);
            if self.cfg.geometry.same_chip(self.units[u].id, home) {
                self.rowclone_transfer(u, home.index(), task, now);
                return;
            }
        }
        self.emit_message(u, Message::Task(task, None), now);
    }

    /// Direct bank-to-bank transfer over the chip-internal bus (R).
    fn rowclone_transfer(&mut self, src: usize, dst: usize, task: Task, now: SimTime) {
        let copy = self.cfg.timing.rowclone_row_copy();
        let timing = &self.cfg.timing;
        // Both banks are busy for the copy; serialize behind each.
        let s = self.units[src]
            .bank
            .access(now, MAILBOX_ROW, 64, false, timing)
            .end;
        let start = s.max(self.units[dst].bank.busy_until());
        let end = start + copy;
        // Occupy the destination bank for the copy window.
        self.units[dst]
            .bank
            .access(start, BORROW_ROW, 64, true, timing);
        self.units[src].bank.precharge_traced(
            s,
            ComponentId::Unit(src as u32),
            sink(&mut self.trace),
        );
        self.units[dst].bank.precharge_traced(
            end,
            ComponentId::Unit(dst as u32),
            sink(&mut self.trace),
        );
        self.charge_comm(CommCause::RowClone, 128);
        self.units[src].stats.msgs_emitted.inc();
        self.schedule_delivery(end, dst, Message::Task(task, None));
    }

    /// Puts a message into `u`'s mailbox (stalling the core when full),
    /// charging the in-DRAM mailbox write.
    fn emit_message(&mut self, u: usize, msg: Message, now: SimTime) {
        let bytes = msg.wire_bytes();
        let cause = match &msg {
            Message::Task(_, None) => CommCause::MailTask,
            Message::Task(_, Some(_)) => CommCause::MailSched,
            Message::Data(dm, dest) => {
                if *dest == Some(self.map.block_home(dm.block)) {
                    CommCause::MailReturn
                } else {
                    CommCause::MailData
                }
            }
            Message::State(_) => CommCause::MailTask,
        };
        self.charge_comm(cause, bytes as u64);
        let timing = &self.cfg.timing;
        let comp = ComponentId::Unit(u as u32);
        let unit = &mut self.units[u];
        unit.bank.access_traced(
            now,
            MAILBOX_ROW,
            bytes,
            true,
            timing,
            comp,
            sink(&mut self.trace),
        );
        unit.stats.msgs_emitted.inc();
        if !unit.pending_out.is_empty() {
            unit.pending_out.push_back(msg);
        } else if let Some(back) =
            unit.mailbox
                .try_push_traced(msg, now, comp, sink(&mut self.trace))
        {
            // Mailbox full: park the message and stall the core until a
            // gather frees space (Section V-A).
            unit.pending_out.push_back(back);
            unit.stats.mailbox_stalls.inc();
        }
        self.consider_comm(u, now);
    }

    fn consider_comm(&mut self, u: usize, now: SimTime) {
        match self.comm {
            CommPath::Bridges => {
                let r = self.cfg.geometry.rank_of(self.units[u].id).index();
                self.consider_rank_round(r, now);
            }
            CommPath::HostForward | CommPath::RowClone => {
                self.consider_host_round(now);
            }
        }
    }

    /// Moves messages parked in `pending_out` into the mailbox as space
    /// allows; wakes the core when fully drained.
    fn flush_pending_out(&mut self, u: usize) {
        let now = self.q.now();
        let comp = ComponentId::Unit(u as u32);
        let unit = &mut self.units[u];
        while let Some(front) = unit.pending_out.pop_front() {
            if let Some(back) =
                unit.mailbox
                    .try_push_traced(front, now, comp, sink(&mut self.trace))
            {
                unit.pending_out.push_front(back);
                break;
            }
        }
        if unit.pending_out.is_empty() {
            self.wake_unit(u, now);
        }
    }

    // ---- message delivery --------------------------------------------------

    fn on_deliver(&mut self, u: usize, msg: Message) {
        let now = self.q.now();
        if self.audit.enabled {
            self.audit.note_delivered(&msg);
        }
        self.metrics.inc(self.m.msgs_delivered);
        self.units[u].stats.msgs_received.inc();
        match msg {
            Message::Task(task, scheduled) => {
                // First delivery of an LB-scheduled task settles the
                // `toArrive` correction for its *intended* receiver at
                // both hierarchy levels (both were incremented at
                // SCHEDULE time), no matter where the task actually
                // lands; a reroute below clears the marker so this
                // happens exactly once.
                if let Some(intended) = scheduled {
                    if self.comm == CommPath::Bridges {
                        let wl = task.workload_or_default();
                        let ir = self.cfg.geometry.rank_of(intended).index();
                        let il = self.local_index(intended.index());
                        if self.audit.enabled
                            && (self.bridges[ir].to_arrive[il] < wl || self.host.to_arrive[ir] < wl)
                        {
                            let detail = format!(
                                "toArrive underflow settling a scheduled task for u{}: \
                                 bridge {} / host {} against workload {wl}",
                                intended.0, self.bridges[ir].to_arrive[il], self.host.to_arrive[ir],
                            );
                            self.audit.flag("to-arrive", detail);
                        }
                        self.bridges[ir].to_arrive[il] =
                            self.bridges[ir].to_arrive[il].saturating_sub(wl);
                        self.host.to_arrive[ir] = self.host.to_arrive[ir].saturating_sub(wl);
                    }
                }
                let block = self.map.block_of(task.data);
                if !self.units[u].holds_block(block, &self.map) {
                    // Stale routing: forward to the current holder.
                    self.units[u].stats.tasks_rerouted.inc();
                    if self.units[u]
                        .stats
                        .tasks_rerouted
                        .get()
                        .is_multiple_of(10_000)
                        && std::env::var_os("NDPB_DEBUG").is_some()
                    {
                        let home = self.map.block_home(block);
                        let hr = self.cfg.geometry.rank_of(home).index();
                        eprintln!(
                            "[reroute] at u{} block={:?} home={} lent={} bridge_entry={:?} host_entry={:?} borrowed_here={}",
                            u,
                            block,
                            home,
                            self.units[home.index()].is_lent.is_lent(block),
                            self.bridges[hr].data_borrowed.peek(&block),
                            self.host.data_borrowed.peek(&block),
                            self.units[u].is_borrowed(block),
                        );
                    }
                    self.emit_message(u, Message::Task(task, None), now);
                    return;
                }
                let hot = self.lb.hot_data;
                if self.epochs.is_ready(task.ts) {
                    let map = &self.map;
                    self.units[u].enqueue_ready(task, hot, map);
                    self.wake_unit(u, now);
                } else {
                    self.units[u].enqueue_future(task);
                }
            }
            Message::Data(dm, _dest) => {
                let home = self.map.block_home(dm.block);
                if home.index() == u {
                    // The block returned home.
                    self.trace_block(dm.block, || format!("returned home to u{u}"));
                    self.units[u].is_lent.clear(dm.block);
                    self.wake_unit(u, now);
                } else {
                    // An assignment is only admitted while the rank
                    // bridge still maps the block to this unit; a stale
                    // arrival (metadata evicted while the data was in
                    // flight) bounces straight home instead of creating
                    // an orphan borrow.
                    let uid = self.units[u].id;
                    let r = self.cfg.geometry.rank_of(uid).index();
                    let stale = self.comm == CommPath::Bridges
                        && self.bridges[r].data_borrowed.peek(&dm.block) != Some(&uid);
                    if stale {
                        self.trace_block(dm.block, || format!("stale at u{u}; bouncing home"));
                        self.return_block_home(u, dm.block, now);
                    } else {
                        self.trace_block(dm.block, || format!("admitted at u{u}"));
                        self.admit_borrowed_block(u, dm, now);
                    }
                }
            }
            Message::State(_) => {
                // State messages never arrive at units.
            }
        }
    }

    fn admit_borrowed_block(&mut self, u: usize, dm: DataMessage, now: SimTime) {
        let evicted = self.units[u].admit_borrow(dm.block);
        // Borrowed-region write charged during scatter already; the
        // metadata update is an SRAM access.
        self.charge_sram(SramCause::BorrowMeta, 16);
        if let Some(victim) = evicted {
            self.return_block_home(u, victim, now);
        }
    }

    /// Sends an evicted borrowed block back to its home unit, cleaning
    /// bridge metadata along the way.
    fn return_block_home(&mut self, u: usize, block: BlockAddr, now: SimTime) {
        self.trace_block(block, || format!("return_block_home from u{u}"));
        let home = self.map.block_home(block);
        let my_rank = self.cfg.geometry.rank_of(self.units[u].id);
        self.bridges[my_rank.index()].data_borrowed.remove(&block);
        self.host.data_borrowed.remove(&block);
        let dm = DataMessage {
            block,
            bytes: self.cfg.g_xfer,
            workload: 0,
        };
        self.emit_message(u, Message::Data(dm, Some(home)), now);
    }

    // ---- routing -----------------------------------------------------------

    fn local_index(&self, u: usize) -> usize {
        // Per-gathered-message hot path: mask instead of hardware
        // divide for power-of-two per-rank unit counts (identical
        // results; every evaluated geometry qualifies).
        let upr = self.cfg.geometry.units_per_rank() as usize;
        if upr.is_power_of_two() {
            u & (upr - 1)
        } else {
            u % upr
        }
    }

    /// Rank-bridge routing decision for a gathered message: a local
    /// destination unit, or `None` meaning "send to the upper level".
    fn route_at_rank(&mut self, r: usize, msg: &Message) -> Option<usize> {
        let g = &self.cfg.geometry;
        match msg {
            Message::Task(task, _) => {
                let block = self.map.block_of(task.data);
                if let Some(&unit) = self.bridges[r].data_borrowed.peek(&block) {
                    return Some(unit.index());
                }
                let home = self.map.block_home(block);
                if g.rank_of(home).index() == r {
                    if self.units[home.index()].is_lent.is_lent(block) {
                        // Lent out of this rank entirely.
                        None
                    } else {
                        Some(home.index())
                    }
                } else {
                    None
                }
            }
            Message::Data(_, Some(dest)) => {
                if g.rank_of(*dest).index() == r {
                    Some(dest.index())
                } else {
                    None
                }
            }
            Message::Data(_, None) | Message::State(_) => None,
        }
    }

    /// Host-level routing: which rank should receive this message.
    fn route_at_host(&mut self, msg: &Message) -> usize {
        let g = &self.cfg.geometry;
        match msg {
            Message::Task(task, _) => {
                let block = self.map.block_of(task.data);
                if let Some(&rank) = self.host.data_borrowed.peek(&block) {
                    return rank.index();
                }
                g.rank_of(self.map.block_home(block)).index()
            }
            Message::Data(_, Some(dest)) => g.rank_of(*dest).index(),
            Message::Data(_, None) | Message::State(_) => 0,
        }
    }

    // ---- rank bridge rounds -------------------------------------------------

    fn consider_rank_round(&mut self, r: usize, now: SimTime) {
        if self.done || self.bridges[r].round_scheduled || self.comm != CommPath::Bridges {
            return;
        }
        let base = r * self.cfg.geometry.units_per_rank() as usize;
        let n = self.cfg.geometry.units_per_rank() as usize;
        let units = &self.units[base..base + n];
        let any_msgs =
            units.iter().any(|u| !u.mailbox.is_empty()) || self.bridges[r].has_pending_output();
        let at = match self.cfg.trigger {
            TriggerPolicy::Dynamic => {
                if !any_msgs {
                    return;
                }
                let big = units
                    .iter()
                    .any(|u| u.mailbox.bytes_used() >= self.cfg.g_xfer as u64);
                let pending_scatter = (0..n).any(|i| self.bridges[r].scatter_pending(i) > 0)
                    || self.bridges[r].backup_pending() > 0;
                if big || pending_scatter {
                    // An unproductive round (nothing gathered or
                    // scattered) must back off instead of re-running at
                    // the same instant.
                    if self.bridges[r].last_round_idle {
                        now.max(self.bridges[r].last_round_end + self.cfg.i_min())
                    } else {
                        now.max(self.bridges[r].last_round_end)
                    }
                } else {
                    let idle = units.iter().any(|u| u.queue_workload() == 0);
                    if idle {
                        now.max(self.bridges[r].last_round_start + self.cfg.i_min())
                            .max(self.bridges[r].last_round_end)
                    } else {
                        return; // wait for the next state gather to re-check
                    }
                }
            }
            TriggerPolicy::FixedIMin => now
                .max(self.bridges[r].last_round_start + self.cfg.i_min())
                .max(self.bridges[r].last_round_end),
            TriggerPolicy::Fixed2IMin => {
                let two = self.cfg.i_min() + self.cfg.i_min();
                now.max(self.bridges[r].last_round_start + two)
                    .max(self.bridges[r].last_round_end)
            }
        };
        self.bridges[r].round_scheduled = true;
        self.sched(at, Ev::RankRound(r as u32));
    }

    fn on_rank_round(&mut self, r: usize) {
        self.bridges[r].round_scheduled = false;
        let now = self.q.now();
        let gxfer = self.cfg.g_xfer;
        let base = r * self.cfg.geometry.units_per_rank() as usize;
        let chips = self.cfg.geometry.chips_per_rank as usize;
        let banks = self.cfg.geometry.banks_per_chip as usize;
        let fixed_trigger = self.cfg.trigger != TriggerPolicy::Dynamic;
        self.bridges[r].last_round_start = now;
        let mut t = now;
        let mut paused = false;
        let mut moved = 0u64;

        // GATHER phase: one command per bank position serves all chips.
        // Positions are visited round-robin starting at the bridge's
        // cursor so a buffer-full pause cannot starve late positions.
        let start_pos = self.bridges[r].gather_cursor as usize % banks;
        'positions: for step in 0..banks {
            let pos = (start_pos + step) % banks;
            let unit_at = |c: usize| base + c * banks + pos;
            let wanted = fixed_trigger
                || (0..chips).map(unit_at).any(|u| {
                    !self.units[u].mailbox.is_empty() || !self.units[u].pending_out.is_empty()
                });
            if !wanted {
                continue;
            }
            let grant = self.rank_bus[r].reserve_traced(
                t,
                (chips as u64) * gxfer as u64,
                ComponentId::RankBus(r as u32),
                sink(&mut self.trace),
            );
            t = grant.end;
            for u in (0..chips).map(unit_at) {
                self.bridges[r].stats.gathers.inc();
                // The bank read of the mailbox region (access arbiter).
                self.units[u].bank.access_traced(
                    grant.start,
                    MAILBOX_ROW,
                    gxfer,
                    false,
                    &self.cfg.timing,
                    ComponentId::Unit(u as u32),
                    sink(&mut self.trace),
                );
                self.charge_comm(CommCause::Gather, gxfer as u64);
                let mut msgs = std::mem::take(&mut self.msg_scratch);
                self.units[u].mailbox.drain_up_to_into(gxfer, &mut msgs);
                let msg_count = msgs.len() as u32;
                if msgs.is_empty() {
                    self.bridges[r].stats.wasted_gathers.inc();
                } else {
                    moved += msgs.len() as u64;
                }
                let mut gathered = 0u64;
                for msg in msgs.drain(..) {
                    gathered += msg.wire_bytes() as u64;
                    if paused {
                        // Put it back; we stopped absorbing.
                        let unit = &mut self.units[u];
                        if let Some(back) = unit.mailbox.try_push(msg) {
                            unit.pending_out.push_front(back);
                        }
                        continue;
                    }
                    if let Err(back) = self.absorb_at_rank(r, msg) {
                        paused = true;
                        let unit = &mut self.units[u];
                        if let Some(back) = unit.mailbox.try_push(back) {
                            unit.pending_out.push_front(back);
                        }
                    }
                }
                self.msg_scratch = msgs;
                self.bridges[r].stats.bytes_gathered.add(gathered);
                self.charge_sram(SramCause::BridgeGather, gathered);
                if let Some(tr) = sink(&mut self.trace) {
                    tr.record(TraceRecord::span(
                        grant.start,
                        grant.end - grant.start,
                        ComponentId::Bridge(r as u32),
                        TraceEvent::Gather {
                            bytes: gathered,
                            msgs: msg_count,
                            wasted: msg_count == 0,
                        },
                    ));
                }
                // Space freed: unblock a stalled core.
                if !self.units[u].pending_out.is_empty() {
                    self.flush_pending_out(u);
                }
                if paused {
                    self.bridges[r].gather_cursor = (pos as u32 + 1) % banks as u32;
                    break 'positions;
                }
            }
            if step == banks - 1 {
                self.bridges[r].gather_cursor = (pos as u32 + 1) % banks as u32;
            }
        }

        // SCATTER phase.
        self.bridges[r].refill_from_backup();
        for pos in 0..banks {
            let unit_at = |c: usize| base + c * banks + pos;
            let wanted = (0..chips)
                .map(unit_at)
                .any(|u| self.bridges[r].scatter_pending(self.local_index(u)) > 0);
            if !wanted {
                continue;
            }
            let grant = self.rank_bus[r].reserve_traced(
                t,
                (chips as u64) * gxfer as u64,
                ComponentId::RankBus(r as u32),
                sink(&mut self.trace),
            );
            t = grant.end;
            for u in (0..chips).map(unit_at) {
                let local = self.local_index(u);
                let mut msgs = std::mem::take(&mut self.msg_scratch);
                self.bridges[r].drain_scatter_into(local, gxfer, &mut msgs);
                if msgs.is_empty() {
                    self.msg_scratch = msgs;
                    continue;
                }
                self.bridges[r].stats.scatters.inc();
                moved += msgs.len() as u64;
                let bytes: u64 = msgs.iter().map(|m| m.wire_bytes() as u64).sum();
                self.bridges[r].stats.bytes_scattered.add(bytes);
                self.charge_sram(SramCause::BridgeScatter, bytes);
                // Bank write of the delivered messages.
                self.units[u].bank.access_traced(
                    grant.start,
                    BORROW_ROW,
                    bytes as u32,
                    true,
                    &self.cfg.timing,
                    ComponentId::Unit(u as u32),
                    sink(&mut self.trace),
                );
                self.charge_comm(CommCause::Scatter, bytes);
                if let Some(tr) = sink(&mut self.trace) {
                    tr.record(TraceRecord::span(
                        grant.start,
                        grant.end - grant.start,
                        ComponentId::Bridge(r as u32),
                        TraceEvent::Scatter {
                            bytes,
                            msgs: msgs.len() as u32,
                        },
                    ));
                }
                for msg in msgs.drain(..) {
                    if let Message::Data(dm, _) = &msg {
                        self.trace_block(dm.block, || format!("scatter-deliver to u{u}"));
                    }
                    self.schedule_delivery(grant.end, u, msg);
                }
                self.msg_scratch = msgs;
            }
        }

        // Move spilled messages into the just-drained scatter buffers so
        // the backup cannot be starved by freshly gathered traffic.
        self.bridges[r].refill_from_backup();
        self.bridges[r].last_round_idle = moved == 0;
        self.bridges[r].last_round_end = t;
        // Anything still pending chains another round.
        self.consider_rank_round(r, t);
        // Upward messages leave via DIMM-Links when present, else via a
        // host (level-2) round.
        if !self.bridges[r].up_mailbox.is_empty() {
            if self.cfg.dimm_link.is_some() {
                self.consider_link_round(r, t);
            } else {
                self.consider_host_round(t);
            }
        }
    }

    // ---- DIMM-Link rounds (optional extension, Section V-A) ---------------

    fn consider_link_round(&mut self, r: usize, now: SimTime) {
        if self.done || self.link_scheduled[r] || self.bridges[r].up_mailbox.is_empty() {
            return;
        }
        self.link_scheduled[r] = true;
        self.sched(now.max(self.q.now()), Ev::LinkRound(r as u32));
    }

    fn on_link_round(&mut self, r: usize) {
        self.link_scheduled[r] = false;
        let now = self.q.now();
        let mut msgs = std::mem::take(&mut self.msg_scratch);
        self.bridges[r]
            .up_mailbox
            .drain_up_to_into(u32::MAX, &mut msgs);
        for msg in msgs.drain(..) {
            let dest_rank = self.route_at_host(&msg);
            let bytes = msg.wire_bytes() as u64;
            let grant = self.link_bus[r].reserve_traced(
                now,
                bytes,
                ComponentId::Link(r as u32),
                sink(&mut self.trace),
            );
            self.charge_sram(SramCause::Link, bytes);
            self.schedule_link_delivery(grant.end, dest_rank, msg);
        }
        self.msg_scratch = msgs;
    }

    fn on_link_deliver(&mut self, dest: usize, msg: Message) {
        let now = self.q.now();
        if self.audit.enabled {
            self.audit.note_delivered(&msg);
        }
        match self.absorb_at_rank(dest, msg) {
            Ok(()) => self.consider_rank_round(dest, now),
            Err(back) => {
                // Destination bridge full: hold the message on the link
                // and retry after a round's worth of draining.
                self.schedule_link_delivery(now + self.cfg.i_min(), dest, back);
            }
        }
    }

    /// Routes one gathered message at rank `r`. On buffer exhaustion the
    /// message is handed back and gathering must pause.
    fn absorb_at_rank(&mut self, r: usize, msg: Message) -> Result<(), Message> {
        match self.route_at_rank(r, &msg) {
            Some(dest_unit) => {
                let local = dest_unit % self.cfg.geometry.units_per_rank() as usize;
                if self.is_data_block_assignment(&msg, r) {
                    self.note_block_in_rank(r, &msg);
                }
                self.bridges[r].enqueue_scatter(local, msg)
            }
            None => match self.bridges[r].up_mailbox.try_push(msg) {
                None => Ok(()),
                Some(back) => Err(back),
            },
        }
    }

    fn is_data_block_assignment(&self, msg: &Message, r: usize) -> bool {
        match msg {
            Message::Data(dm, Some(dest)) => {
                let home = self.map.block_home(dm.block);
                // Arriving at the receiver's rank and not a return-home.
                self.cfg.geometry.rank_of(*dest).index() == r && home != *dest
            }
            _ => false,
        }
    }

    /// Records block→receiver metadata when a lent block enters the
    /// receiver's rank (inclusive two-level dataBorrowed).
    fn note_block_in_rank(&mut self, r: usize, msg: &Message) {
        if let Message::Data(dm, Some(dest)) = msg {
            // A cross-rank assignment must mirror a live host entry: if
            // the host evicted or reassigned the block while the data
            // was in flight, recording it here would orphan the
            // metadata — skip, and let the arrival bounce home via the
            // stale check in `on_deliver`.
            let home = self.map.block_home(dm.block);
            if self.cfg.geometry.rank_of(home).index() != r {
                let recv_rank = self.cfg.geometry.rank_of(*dest);
                if self.host.data_borrowed.peek(&dm.block) != Some(&recv_rank) {
                    return;
                }
            }
            if let Some((evicted_block, holder)) =
                self.bridges[r].data_borrowed.insert(dm.block, *dest)
            {
                // Inclusive metadata overflow: force the evicted block
                // home to keep tables consistent. If its data has not
                // been admitted yet (still in flight), there is nothing
                // to send back; dropping the host entry as well lets
                // the arrival bounce home on its own.
                let at = self.q.now();
                if self.units[holder.index()].remove_borrow(evicted_block) {
                    self.return_block_home(holder.index(), evicted_block, at);
                } else {
                    self.host.data_borrowed.remove(&evicted_block);
                }
            }
        }
    }

    // ---- state gathering + rank-level load balancing -------------------------

    fn on_rank_state(&mut self, r: usize) {
        self.bridges[r].state_scheduled = false;
        if self.done {
            return;
        }
        let now = self.q.now();
        let n = self.cfg.geometry.units_per_rank() as usize;
        let base = r * n;
        // STATE-GATHER: one 64 B state message per child, all chips in
        // parallel per bank position.
        let state_bytes = 64u64 * n as u64;
        let grant = self.rank_bus[r].reserve_traced(
            now,
            state_bytes,
            ComponentId::RankBus(r as u32),
            sink(&mut self.trace),
        );
        if let Some(tr) = sink(&mut self.trace) {
            tr.record(TraceRecord::span(
                grant.start,
                grant.end - grant.start,
                ComponentId::Bridge(r as u32),
                TraceEvent::StateGather { bytes: state_bytes },
            ));
        }
        let mut finished_total = 0u64;
        for i in 0..n {
            let u = base + i;
            let st = crate::bridge::ChildState {
                mailbox_bytes: self.units[u].mailbox.bytes_used(),
                queue_workload: self.units[u].queue_workload(),
                finished_workload: self.units[u].take_finished(),
            };
            finished_total += st.finished_workload;
            self.bridges[r].child_state[i] = st;
        }
        self.charge_sram(SramCause::State, state_bytes);
        self.bridges[r].update_speed_estimate(self.cfg.i_state_cycles, finished_total);
        // Host's aggregate view (used by level-2 LB).
        self.host.rank_queue_workload[r] = self.bridges[r]
            .child_state
            .iter()
            .map(|s| s.queue_workload)
            .sum();
        self.host.rank_mailbox_bytes[r] = self.bridges[r].up_mailbox.bytes_used();

        if self.lb.enabled {
            self.lb_rank(r, grant.end);
        }
        self.consider_rank_round(r, grant.end);
        if self.cfg.dimm_link.is_some() && !self.bridges[r].up_mailbox.is_empty() {
            self.consider_link_round(r, grant.end);
        }

        // Re-arm.
        self.bridges[r].state_scheduled = true;
        self.sched(now + self.cfg.i_state(), Ev::RankState(r as u32));
    }

    /// Workload-transfer threshold `W_th` for rank `r`, in workload
    /// units.
    fn rank_w_threshold(&self, r: usize) -> u64 {
        let per_chip_bits =
            self.cfg.geometry.intra_rank_data_bits() / self.cfg.geometry.chips_per_rank;
        let s_xfer_bytes_per_cycle = per_chip_bits as f64 * TICKS_PER_CORE_CYCLE as f64 / 8.0;
        w_threshold(
            self.cfg.g_xfer,
            self.bridges[r].s_exe_cycles_per_wl,
            s_xfer_bytes_per_cycle,
        )
    }

    /// Rank-level load balancing (Figure 6): match idle receivers to
    /// random givers, SCHEDULE budgets, move blocks + tasks.
    fn lb_rank(&mut self, r: usize, now: SimTime) {
        let w_th = if self.lb.in_advance {
            self.rank_w_threshold(r)
        } else {
            1 // steal only when the queue is empty
        };
        let receivers = self.bridges[r].idle_children(w_th, self.lb.workload_correction);
        if receivers.is_empty() {
            return;
        }
        let giver_floor = if self.lb.fine_grained {
            2 * w_th
        } else {
            w_th.max(1)
        };
        let givers = self.bridges[r].busy_children(giver_floor);
        if givers.is_empty() {
            return;
        }
        self.bridges[r].stats.lb_rounds.inc();
        let base = r * self.cfg.geometry.units_per_rank() as usize;
        // Random matching: receiver → giver; budgets accumulate per giver.
        let mut budgets: Vec<(usize, u64, Vec<usize>)> = Vec::new(); // (giver, budget, receivers)
        for &recv in &receivers {
            let gi = self.bridges[r].rng.next_index(givers.len());
            let giver = givers[gi];
            if giver == recv {
                continue;
            }
            let amount = if self.lb.fine_grained {
                2 * w_th
            } else {
                self.bridges[r].child_state[giver].queue_workload / 2
            };
            if amount == 0 {
                continue;
            }
            match budgets.iter_mut().find(|(g2, _, _)| *g2 == giver) {
                Some((_, b, rs)) => {
                    *b += amount;
                    rs.push(recv);
                }
                None => budgets.push((giver, amount, vec![recv])),
            }
        }
        for (giver, budget, recvs) in budgets {
            // Traditional stealing takes at most half the victim's queue
            // per round, no matter how many receivers matched to it.
            let cap = (self.bridges[r].child_state[giver].queue_workload / 2).max(1);
            self.schedule_giver(r, base + giver, budget.min(cap), &recvs, now, false);
        }
    }

    /// Sends a SCHEDULE to a giver unit and moves its chosen blocks +
    /// tasks into its mailbox, assigning receivers round-robin.
    /// `cross_rank` receivers are global unit indices already.
    fn schedule_giver(
        &mut self,
        r: usize,
        giver: usize,
        budget: u64,
        receivers: &[usize],
        now: SimTime,
        cross_rank: bool,
    ) {
        self.bridges[r].stats.schedules.inc();
        if let Some(tr) = sink(&mut self.trace) {
            tr.record(TraceRecord::instant(
                now,
                ComponentId::Bridge(r as u32),
                TraceEvent::Schedule {
                    budget,
                    receivers: receivers.len() as u32,
                },
            ));
        }
        if self.lb.byte_budget || self.lb.prefer_lent {
            return self.schedule_giver_aware(r, giver, budget, receivers, now, cross_rank);
        }
        let hot = self.lb.hot_data;
        let chosen = {
            let map = &self.map;
            self.units[giver].choose_scheduled_out(budget, hot, map)
        };
        if chosen.is_empty() {
            return;
        }
        let base = r * self.cfg.geometry.units_per_rank() as usize;
        for (rr, sb) in chosen.into_iter().enumerate() {
            let recv_global = if cross_rank {
                receivers[rr % receivers.len()]
            } else {
                base + receivers[rr % receivers.len()]
            };
            self.emit_scheduled_block(r, giver, sb, recv_global, false, cross_rank, now);
        }
        self.consider_comm(giver, now);
    }

    /// Gather-cost-aware variant of `schedule_giver`
    /// (`LbPolicy::byte_budget` / `prefer_lent`, DESIGN.md §10): the
    /// round's workload budget is converted into a wire-byte budget via
    /// `steal::steal_byte_budget`, the giver's queued tasks for blocks
    /// already lent to one of this round's receivers become task-only
    /// forward candidates, and `steal::plan_steal` picks in preference
    /// order (task-only → hot → densest) until either budget runs dry.
    fn schedule_giver_aware(
        &mut self,
        r: usize,
        giver: usize,
        budget: u64,
        receivers: &[usize],
        now: SimTime,
        cross_rank: bool,
    ) {
        let byte_budget = if self.lb.byte_budget {
            let w_th = self.rank_w_threshold(r);
            // Overload gate: moving a block only pays when the giver is
            // genuinely backlogged (DESIGN.md §10). Each block move
            // provokes a full gather-round sweep — `chips · G_xfer` of
            // ledger traffic, far more than the message's own wire
            // bytes — so a queue shallower than `steal_gate_wth · W_th`
            // (transient imbalance that drains on its own) gets a zero
            // *data* budget. Task-only forwards, which ride the reroute
            // path's mail anyway, are still allowed. This is what stops
            // low-parallelism apps from re-stealing thin blocks every
            // idle round.
            let gate = u64::from(self.cfg.steal_gate_wth) * w_th.max(1);
            if self.units[giver].queue_workload() < gate {
                0
            } else {
                // Rate-limit: the *byte* allowance per round is what
                // the fine-grained policy would move (2·W_th per giver
                // round), even when the workload budget is steal-half's
                // much larger half-queue. Deliberately NOT multiplied
                // by the receiver count: a starved rank has many idle
                // receivers, and that is exactly when per-round traffic
                // must stay bounded. Task-only forwards cost almost no
                // bytes, so they can still fill the rest of the
                // workload budget past this cap.
                let fine_equiv = 2 * w_th.max(1);
                steal::steal_byte_budget(
                    budget.min(fine_equiv),
                    w_th,
                    self.cfg.g_xfer,
                    self.cfg.steal_budget_gxfer,
                )
            }
        } else {
            u64::MAX
        };
        // Blocks this giver owns that are currently lent out with a
        // known holder in this rank: their queued tasks would be
        // rerouted to the holder one-by-one on pop anyway, so the steal
        // round forwards them eagerly, task-only — no gather/scatter at
        // all. Intra-rank only — at the host level borrowed blocks are
        // tracked per rank, not per holder unit.
        let mut lent_to: FastMap<u64, UnitId> = FastMap::default();
        if self.lb.prefer_lent && !cross_rank {
            for block in self.units[giver].queued_lent_home_blocks(&self.map) {
                if let Some(&holder) = self.bridges[r].data_borrowed.peek(&block) {
                    if holder.index() != giver {
                        lent_to.insert(block.0, holder);
                    }
                }
            }
        }
        let data_wire = u64::from(
            Message::Data(
                DataMessage {
                    block: BlockAddr(0),
                    bytes: self.cfg.g_xfer,
                    workload: 0,
                },
                None,
            )
            .wire_bytes(),
        );
        let hot = self.lb.hot_data;
        let amortize = self.lb.byte_budget.then(|| steal::AmortizeCfg {
            g_xfer: self.cfg.g_xfer,
            budget_gxfer: self.cfg.steal_budget_gxfer,
            w_th: self.rank_w_threshold(r),
        });
        let picks = {
            let map = &self.map;
            self.units[giver].choose_scheduled_out_aware(
                budget,
                byte_budget,
                hot,
                &lent_to,
                data_wire,
                amortize,
                map,
            )
        };
        if picks.is_empty() {
            return;
        }
        let base = r * self.cfg.geometry.units_per_rank() as usize;
        let mut rr = 0usize;
        for pick in picks {
            let (recv_global, task_only) = match pick.pinned_recv {
                Some(holder) => (holder.index(), true),
                None => {
                    let g = if cross_rank {
                        receivers[rr % receivers.len()]
                    } else {
                        base + receivers[rr % receivers.len()]
                    };
                    rr += 1;
                    (g, false)
                }
            };
            self.emit_scheduled_block(r, giver, pick.sb, recv_global, task_only, cross_rank, now);
        }
        self.consider_comm(giver, now);
    }

    /// Emits one scheduled block toward `recv_global`: migration
    /// metadata, `toArrive` accounting at both levels, the data message
    /// and the task messages. `task_only` (gather-aware forwards to the
    /// block's current holder) skips everything data-related — no
    /// migration count, no metadata update, no data message — because
    /// the block does not move; only the task descriptors travel.
    #[allow(clippy::too_many_arguments)]
    fn emit_scheduled_block(
        &mut self,
        r: usize,
        giver: usize,
        sb: ScheduledBlock,
        recv_global: usize,
        task_only: bool,
        cross_rank: bool,
        now: SimTime,
    ) {
        let recv_id = UnitId(recv_global as u32);
        if task_only {
            self.trace_block(sb.block, || {
                format!(
                    "task-only forward giver=u{giver} holder=u{recv_global} tasks={}",
                    sb.tasks.len()
                )
            });
        } else {
            self.trace_block(sb.block, || {
                format!(
                    "scheduled giver=u{giver} recv=u{recv_global} tasks={}",
                    sb.tasks.len()
                )
            });
        }
        if !task_only {
            self.metrics.inc(self.m.blocks_migrated);
            if let Some(tr) = sink(&mut self.trace) {
                tr.record(TraceRecord::instant(
                    now,
                    ComponentId::Bridge(r as u32),
                    TraceEvent::Migrate {
                        block: sb.block.0,
                        from: giver as u32,
                        to: recv_global as u32,
                        tasks: sb.tasks.len() as u32,
                    },
                ));
            }
            // Metadata at assignment time (step ④).
            if cross_rank {
                let recv_rank = self.cfg.geometry.rank_of(recv_id);
                if let Some((evb, evr)) = self.host.data_borrowed.insert(sb.block, recv_rank) {
                    // Overflow: return that block home from wherever it
                    // is. A holder that has not admitted it yet (data
                    // still in flight) has nothing to send back; drop
                    // the rank entry too and let the arrival bounce.
                    if let Some(&holder) = self.bridges[evr.index()].data_borrowed.peek(&evb) {
                        let h = holder.index();
                        if self.units[h].remove_borrow(evb) {
                            self.return_block_home(h, evb, now);
                        } else {
                            self.bridges[evr.index()].data_borrowed.remove(&evb);
                        }
                    }
                }
            } else {
                self.note_block_in_rank(
                    r,
                    &Message::Data(
                        DataMessage {
                            block: sb.block,
                            bytes: self.cfg.g_xfer,
                            workload: sb.workload,
                        },
                        Some(recv_id),
                    ),
                );
            }
        }
        // Both `toArrive` levels track the in-flight scheduled
        // workload toward the intended receiver from SCHEDULE until
        // first delivery, so host-level idle detection also sees
        // intra-rank transfers under way (Section VI-C).
        let recv_rank_idx = self.cfg.geometry.rank_of(recv_id).index();
        let recv_local = self.local_index(recv_global);
        self.host.to_arrive[recv_rank_idx] += sb.workload;
        self.bridges[recv_rank_idx].to_arrive[recv_local] += sb.workload;
        if !task_only {
            // Giver reads the block from its bank and mails it out.
            let dm = DataMessage {
                block: sb.block,
                bytes: self.cfg.g_xfer,
                workload: sb.workload,
            };
            self.emit_message(giver, Message::Data(dm, Some(recv_id)), now);
        }
        for task in sb.tasks {
            self.emit_message(giver, Message::Task(task, Some(recv_id)), now);
        }
    }

    // ---- host-level state + rounds -------------------------------------------

    fn on_host_state(&mut self) {
        if self.done {
            return;
        }
        let now = self.q.now();
        match self.comm {
            CommPath::Bridges => {
                // Hierarchical LB: only ranks whose units are ALL idle
                // become receivers (Section VI-A).
                if self.lb.enabled {
                    self.lb_cross_rank(now);
                }
                self.consider_host_round(now);
            }
            CommPath::HostForward | CommPath::RowClone => {
                // C/R poll units directly.
                self.consider_host_round(now);
            }
        }
        self.sched(now + self.cfg.i_state(), Ev::HostState);
    }

    fn lb_cross_rank(&mut self, now: SimTime) {
        let ranks = self.bridges.len();
        let w_th_global: u64 = (0..ranks)
            .map(|r| self.rank_w_threshold(r))
            .max()
            .unwrap_or(1);
        let idle_ranks: Vec<usize> = (0..ranks)
            .filter(|&r| {
                let mut w = self.host.rank_queue_workload[r];
                if self.lb.workload_correction {
                    w += self.host.to_arrive[r];
                }
                // Every unit idle: aggregate under one unit's threshold.
                w < w_th_global.max(1)
            })
            .collect();
        if idle_ranks.is_empty() {
            return;
        }
        let upr = self.cfg.geometry.units_per_rank() as u64;
        let busy_ranks: Vec<usize> = (0..ranks)
            .filter(|&r| self.host.rank_queue_workload[r] > 4 * w_th_global.max(1) * upr / 8)
            .collect();
        if busy_ranks.is_empty() {
            return;
        }
        self.host.stats.lb_rounds.inc();
        for &recv_rank in &idle_ranks {
            let gi = self.host.rng.next_index(busy_ranks.len());
            let giver_rank = busy_ranks[gi];
            if giver_rank == recv_rank {
                continue;
            }
            // Budget: cross-rank transfers are slow; move a few units'
            // worth of fine-grained budgets (or steal-half without).
            let budget = if self.lb.fine_grained {
                2 * w_th_global * 4
            } else {
                self.host.rank_queue_workload[giver_rank] / 2
            };
            if budget == 0 {
                continue;
            }
            // The giver rank's bridge picks its busiest child.
            let gbase = giver_rank * self.cfg.geometry.units_per_rank() as usize;
            let giver_local = (0..self.cfg.geometry.units_per_rank() as usize)
                .max_by_key(|&i| self.bridges[giver_rank].child_state[i].queue_workload)
                .unwrap_or(0);
            // Receivers: idle units of the receiving rank.
            let rbase = recv_rank * self.cfg.geometry.units_per_rank() as usize;
            let recvs: Vec<usize> = (0..self.cfg.geometry.units_per_rank() as usize)
                .filter(|&i| self.bridges[recv_rank].child_state[i].queue_workload == 0)
                .map(|i| rbase + i)
                .collect();
            if recvs.is_empty() {
                continue;
            }
            self.schedule_giver(giver_rank, gbase + giver_local, budget, &recvs, now, true);
        }
    }

    fn consider_host_round(&mut self, now: SimTime) {
        if self.done || self.host.round_scheduled {
            return;
        }
        let pending = match self.comm {
            CommPath::Bridges if self.cfg.dimm_link.is_some() => {
                // Links handle bridge-to-bridge traffic; the host only
                // drains its own leftovers.
                self.host.has_pending()
            }
            CommPath::Bridges => {
                self.bridges.iter().any(|b| !b.up_mailbox.is_empty()) || self.host.has_pending()
            }
            CommPath::HostForward | CommPath::RowClone => {
                self.units.iter().any(|u| !u.mailbox.is_empty())
                    || self.host.has_pending()
                    || self.units.iter().any(|u| !u.pending_out.is_empty())
            }
        };
        if !pending {
            return;
        }
        self.host.round_scheduled = true;
        // Host rounds are software polling loops. With bridges the host
        // only forwards pre-aggregated cross-rank batches and can chain
        // rounds; in C/R it pays a full every-bank poll per round, which
        // real runtimes rate-limit (we use the I_state period).
        let at = match self.comm {
            CommPath::Bridges => now.max(self.host.last_round_end),
            CommPath::HostForward | CommPath::RowClone => now
                .max(self.host.last_round_start + self.cfg.i_min())
                .max(self.host.last_round_end),
        };
        self.sched(at, Ev::HostRound);
    }

    fn on_host_round(&mut self) {
        self.host.round_scheduled = false;
        self.host.last_round_start = self.q.now();
        match self.comm {
            CommPath::Bridges => self.host_round_bridges(),
            CommPath::HostForward | CommPath::RowClone => self.host_round_direct(),
        }
    }

    /// Level-2 round: move cross-rank messages bridge → host → bridge
    /// over the DDR channels.
    fn host_round_bridges(&mut self) {
        let now = self.q.now();
        let mut t_end = now;
        // Gather from rank bridges' upward mailboxes.
        for r in 0..self.bridges.len() {
            if self.bridges[r].up_mailbox.is_empty() {
                continue;
            }
            let ch = self
                .cfg
                .geometry
                .channel_of_rank(ndpb_dram::RankId(r as u32))
                .index();
            let bytes = self.bridges[r].up_mailbox.bytes_used();
            let grant = self.channel[ch].reserve_traced(
                now,
                bytes,
                ComponentId::Channel(ch as u32),
                sink(&mut self.trace),
            );
            t_end = t_end.max(grant.end);
            let mut msgs = std::mem::take(&mut self.msg_scratch);
            self.bridges[r]
                .up_mailbox
                .drain_up_to_into(u32::MAX, &mut msgs);
            self.host.stats.bytes_gathered.add(bytes);
            self.charge_sram(SramCause::HostGather, bytes);
            if let Some(tr) = sink(&mut self.trace) {
                tr.record(TraceRecord::span(
                    grant.start,
                    grant.end - grant.start,
                    ComponentId::Host,
                    TraceEvent::Gather {
                        bytes,
                        msgs: msgs.len() as u32,
                        wasted: msgs.is_empty(),
                    },
                ));
            }
            for msg in msgs.drain(..) {
                let dest_rank = self.route_at_host(&msg);
                self.host.enqueue_scatter(dest_rank, msg);
            }
            self.msg_scratch = msgs;
        }
        let t = t_end + self.cfg.host_round_latency;
        // Scatter down to rank bridges.
        let mut final_end = t;
        for r in 0..self.bridges.len() {
            if self.host.scatter_pending(r) == 0 {
                continue;
            }
            let ch = self
                .cfg
                .geometry
                .channel_of_rank(ndpb_dram::RankId(r as u32))
                .index();
            let bytes = self.host.scatter_pending(r);
            let grant = self.channel[ch].reserve_traced(
                t,
                bytes,
                ComponentId::Channel(ch as u32),
                sink(&mut self.trace),
            );
            final_end = final_end.max(grant.end);
            let mut msgs = std::mem::take(&mut self.msg_scratch);
            self.host.drain_scatter_into(r, &mut msgs);
            self.host.stats.bytes_scattered.add(bytes);
            if let Some(tr) = sink(&mut self.trace) {
                tr.record(TraceRecord::span(
                    grant.start,
                    grant.end - grant.start,
                    ComponentId::Host,
                    TraceEvent::Scatter {
                        bytes,
                        msgs: msgs.len() as u32,
                    },
                ));
            }
            // `absorb_at_rank` never touches the host scatter queues, so
            // rejected messages re-enqueue directly in encounter order —
            // same final order the old leftover buffer produced.
            for msg in msgs.drain(..) {
                if let Err(back) = self.absorb_at_rank(r, msg) {
                    self.host.enqueue_scatter(r, back);
                }
            }
            self.msg_scratch = msgs;
            self.consider_rank_round(r, grant.end);
        }
        self.host.last_round_end = final_end;
        self.consider_host_round(final_end);
    }

    /// Baseline C/R round: the host gathers directly from every bank
    /// over both the rank bus and the channel, forwards, and scatters
    /// back.
    fn host_round_direct(&mut self) {
        let now = self.q.now();
        let gxfer = self.cfg.g_xfer;
        let chips = self.cfg.geometry.chips_per_rank as usize;
        let banks = self.cfg.geometry.banks_per_chip as usize;
        let upr = self.cfg.geometry.units_per_rank() as usize;
        let mut t_end = now;
        // Gather: per rank, per bank position (all chips parallel), the
        // data crosses the intra-rank wires AND the shared channel. The
        // host is software: it cannot see remote mailbox state, so every
        // round polls every bank position — the fundamental bandwidth
        // waste of host forwarding (Section II-C).
        for r in 0..self.bridges.len() {
            let base = r * upr;
            let ch = self
                .cfg
                .geometry
                .channel_of_rank(ndpb_dram::RankId(r as u32))
                .index();
            for pos in 0..banks {
                let unit_at = |c: usize| base + c * banks + pos;
                let bytes = (chips as u64) * gxfer as u64;
                let start = self.rank_bus[r]
                    .free_at()
                    .max(self.channel[ch].free_at())
                    .max(now);
                let cg = self.channel[ch].reserve_traced(
                    start,
                    bytes,
                    ComponentId::Channel(ch as u32),
                    sink(&mut self.trace),
                );
                self.rank_bus[r].reserve_traced(
                    start,
                    bytes,
                    ComponentId::RankBus(r as u32),
                    sink(&mut self.trace),
                );
                t_end = t_end.max(cg.end);
                for u in (0..chips).map(unit_at) {
                    self.host.stats.gathers.inc();
                    self.units[u].bank.access_traced(
                        cg.start,
                        MAILBOX_ROW,
                        gxfer,
                        false,
                        &self.cfg.timing,
                        ComponentId::Unit(u as u32),
                        sink(&mut self.trace),
                    );
                    self.charge_comm(CommCause::HostGather, gxfer as u64);
                    let mut msgs = std::mem::take(&mut self.msg_scratch);
                    self.units[u].mailbox.drain_up_to_into(gxfer, &mut msgs);
                    if msgs.is_empty() {
                        self.host.stats.wasted_gathers.inc();
                    }
                    let mut gathered = 0u64;
                    let msg_count = msgs.len() as u32;
                    for msg in msgs.drain(..) {
                        gathered += msg.wire_bytes() as u64;
                        self.host.stats.bytes_gathered.add(msg.wire_bytes() as u64);
                        let dest_rank = self.route_at_host(&msg);
                        self.host.enqueue_scatter(dest_rank, msg);
                    }
                    self.msg_scratch = msgs;
                    if let Some(tr) = sink(&mut self.trace) {
                        tr.record(TraceRecord::span(
                            cg.start,
                            cg.end - cg.start,
                            ComponentId::Host,
                            TraceEvent::Gather {
                                bytes: gathered,
                                msgs: msg_count,
                                wasted: msg_count == 0,
                            },
                        ));
                    }
                    if !self.units[u].pending_out.is_empty() {
                        self.flush_pending_out(u);
                    }
                }
            }
        }
        let t = t_end + self.cfg.host_round_latency;
        // Scatter: host → banks, again over channel + rank bus.
        let mut final_end = t;
        for r in 0..self.bridges.len() {
            if self.host.scatter_pending(r) == 0 {
                continue;
            }
            let ch = self
                .cfg
                .geometry
                .channel_of_rank(ndpb_dram::RankId(r as u32))
                .index();
            let mut drained = std::mem::take(&mut self.msg_scratch);
            self.host.drain_scatter_into(r, &mut drained);
            // Group by destination unit, recycling the grouping table and
            // its inner `Vec`s across rounds.
            let mut per_unit = std::mem::take(&mut self.per_unit_scratch);
            for msg in drained.drain(..) {
                let dest = self.direct_dest_unit(&msg);
                match per_unit.iter_mut().find(|(u, _)| *u == dest) {
                    Some((_, v)) => v.push(msg),
                    None => {
                        let mut v = self.vec_pool.get();
                        v.push(msg);
                        per_unit.push((dest, v));
                    }
                }
            }
            self.msg_scratch = drained;
            for (u, mut msgs) in per_unit.drain(..) {
                let bytes: u64 = msgs.iter().map(|m| m.wire_bytes() as u64).sum();
                let start = self.rank_bus[r]
                    .free_at()
                    .max(self.channel[ch].free_at())
                    .max(t);
                let cg = self.channel[ch].reserve_traced(
                    start,
                    bytes,
                    ComponentId::Channel(ch as u32),
                    sink(&mut self.trace),
                );
                self.rank_bus[r].reserve_traced(
                    start,
                    bytes,
                    ComponentId::RankBus(r as u32),
                    sink(&mut self.trace),
                );
                final_end = final_end.max(cg.end);
                self.host.stats.scatters.inc();
                self.host.stats.bytes_scattered.add(bytes);
                self.units[u].bank.access_traced(
                    cg.start,
                    BORROW_ROW,
                    bytes as u32,
                    true,
                    &self.cfg.timing,
                    ComponentId::Unit(u as u32),
                    sink(&mut self.trace),
                );
                self.charge_comm(CommCause::HostScatter, bytes);
                if let Some(tr) = sink(&mut self.trace) {
                    tr.record(TraceRecord::span(
                        cg.start,
                        cg.end - cg.start,
                        ComponentId::Host,
                        TraceEvent::Scatter {
                            bytes,
                            msgs: msgs.len() as u32,
                        },
                    ));
                }
                for msg in msgs.drain(..) {
                    self.schedule_delivery(cg.end, u, msg);
                }
                self.vec_pool.put(msgs);
            }
            self.per_unit_scratch = per_unit;
        }
        self.host.last_round_end = final_end;
        self.consider_host_round(final_end);
    }

    /// Destination unit for direct (C/R) forwarding: home unit (no
    /// migration exists without load balancing).
    fn direct_dest_unit(&self, msg: &Message) -> usize {
        match msg {
            Message::Task(task, _) => self.map.home_unit(task.data).index(),
            Message::Data(dm, Some(dest)) => {
                let _ = dm;
                dest.index()
            }
            Message::Data(dm, None) => self.map.block_home(dm.block).index(),
            Message::State(_) => 0,
        }
    }

    // ---- conservation audit ---------------------------------------------------

    /// Collects every in-flight message reachable by scanning mailboxes
    /// and buffers, merged with the queued-event view the [`AuditState`]
    /// maintains.
    fn scan_in_flight(&self) -> InFlight {
        let mut f = InFlight {
            msgs: self.audit.sched_events,
            data_blocks: self.audit.sched_data_blocks.clone(),
            task_toward: self.audit.sched_task_toward.clone(),
        };
        fn note(f: &mut InFlight, msg: &Message) {
            f.msgs += 1;
            match msg {
                Message::Task(t, Some(dest)) => {
                    *f.task_toward.entry(dest.0).or_insert(0) += t.workload_or_default();
                }
                Message::Data(dm, _) => {
                    *f.data_blocks.entry(dm.block.0).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        for u in &self.units {
            for m in u.mailbox.iter() {
                note(&mut f, m);
            }
            for m in &u.pending_out {
                note(&mut f, m);
            }
        }
        for b in &self.bridges {
            for m in b.buffered_messages() {
                note(&mut f, m);
            }
            for m in b.up_mailbox.iter() {
                note(&mut f, m);
            }
        }
        for m in self.host.buffered_messages() {
            note(&mut f, m);
        }
        f
    }

    /// Scans the whole system for conservation-law violations (see
    /// [`crate::audit`] for the laws). Purely observational: no
    /// simulator state changes, so audited results are bit-identical to
    /// unaudited ones. Called between event handlers only, where all
    /// component state is consistent.
    pub fn collect_violations(&self) -> Vec<Violation> {
        let mut v: Vec<Violation> = self.audit.flagged.clone();
        let f = self.scan_in_flight();
        let g = &self.cfg.geometry;

        // Message conservation: every message ever emitted was either
        // delivered or sits in exactly one queue, buffer, or event.
        let emitted: u64 = self.units.iter().map(|u| u.stats.msgs_emitted.get()).sum();
        let delivered = self.metrics.get(self.m.msgs_delivered);
        if emitted != delivered + f.msgs {
            v.push(Violation {
                law: "message-conservation",
                detail: format!(
                    "emitted {emitted} != delivered {delivered} + in-flight {}",
                    f.msgs
                ),
            });
        }

        // toArrive balance: each correction counter equals the workload
        // of scheduled tasks still in flight toward that child, and the
        // host-level counter covers its whole rank.
        let upr = g.units_per_rank() as usize;
        for (r, b) in self.bridges.iter().enumerate() {
            let mut rank_expect = 0u64;
            for (i, &ta) in b.to_arrive.iter().enumerate() {
                let expect = f
                    .task_toward
                    .get(&((r * upr + i) as u32))
                    .copied()
                    .unwrap_or(0);
                rank_expect += expect;
                if ta != expect {
                    v.push(Violation {
                        law: "to-arrive",
                        detail: format!(
                            "bridge {r} child {i}: toArrive {ta} != in-flight scheduled \
                             workload {expect}"
                        ),
                    });
                }
            }
            if self.host.to_arrive[r] != rank_expect {
                v.push(Violation {
                    law: "to-arrive",
                    detail: format!(
                        "host toArrive[{r}] = {} != in-flight scheduled workload {rank_expect}",
                        self.host.to_arrive[r]
                    ),
                });
            }
        }

        // dataBorrowed inclusivity, bottom-up: unit borrow ⊆ bridge
        // entry ⊆ host entry (for cross-rank blocks), all covered by
        // the home's isLent bit.
        for u in &self.units {
            let r = g.rank_of(u.id).index();
            for blk in u.borrowed_blocks() {
                let home = self.map.block_home(blk);
                if !self.units[home.index()].is_lent.is_lent(blk) {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "block {} borrowed at u{} but not lent at home",
                            blk.0, u.id
                        ),
                    });
                }
                if self.bridges[r].data_borrowed.peek(&blk) != Some(&u.id) {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "block {} borrowed at u{} without matching bridge {r} entry",
                            blk.0, u.id
                        ),
                    });
                }
                if g.rank_of(home).index() != r
                    && self.host.data_borrowed.peek(&blk) != Some(&g.rank_of(u.id))
                {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "cross-rank block {} borrowed at u{} without host entry",
                            blk.0, u.id
                        ),
                    });
                }
            }
        }
        for (r, br) in self.bridges.iter().enumerate() {
            for (&blk, &holder) in br.data_borrowed.iter() {
                let home = self.map.block_home(blk);
                if g.rank_of(holder).index() != r {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "bridge {r} entry for block {} names foreign u{holder}",
                            blk.0
                        ),
                    });
                }
                if !self.units[home.index()].is_lent.is_lent(blk) {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!("bridge {r} entry for block {} but home not lent", blk.0),
                    });
                }
                if !self.units[holder.index()].is_borrowed(blk)
                    && !f.data_blocks.contains_key(&blk.0)
                {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "bridge {r} entry for block {} orphaned: u{holder} does not hold \
                             it and no data message is in flight",
                            blk.0
                        ),
                    });
                }
            }
        }
        for (&blk, &rank) in self.host.data_borrowed.iter() {
            let home = self.map.block_home(blk);
            if !self.units[home.index()].is_lent.is_lent(blk) {
                v.push(Violation {
                    law: "data-borrowed-inclusivity",
                    detail: format!("host entry for block {} but home not lent", blk.0),
                });
            }
            if self.bridges[rank.index()]
                .data_borrowed
                .peek(&blk)
                .is_none()
                && !f.data_blocks.contains_key(&blk.0)
            {
                v.push(Violation {
                    law: "data-borrowed-inclusivity",
                    detail: format!(
                        "host entry for block {} orphaned: rank {rank} has no bridge entry \
                         and no data message is in flight",
                        blk.0
                    ),
                });
            }
        }
        // No lent block may be unreachable: it is either borrowed
        // somewhere, tracked by a table, or its data is in flight.
        for u in &self.units {
            for blk in u.is_lent.iter() {
                let tracked = f.data_blocks.contains_key(&blk.0)
                    || self.host.data_borrowed.peek(&blk).is_some()
                    || self
                        .bridges
                        .iter()
                        .any(|b| b.data_borrowed.peek(&blk).is_some())
                    || self.units.iter().any(|w| w.is_borrowed(blk));
                if !tracked {
                    v.push(Violation {
                        law: "data-borrowed-inclusivity",
                        detail: format!(
                            "block {} lent by u{} is unreachable (no borrow, no table \
                             entry, nothing in flight)",
                            blk.0, u.id
                        ),
                    });
                }
            }
        }

        // Ledger totals: per-cause rows sum exactly to the system byte
        // totals they decompose.
        let comm_total = self.metrics.get(self.m.comm_dram_bytes);
        let comm_ledger: u64 = self
            .m
            .ledger_comm
            .iter()
            .map(|&id| self.metrics.get(id))
            .sum();
        if comm_total != comm_ledger {
            v.push(Violation {
                law: "ledger-totals",
                detail: format!("comm ledger rows sum to {comm_ledger}, total is {comm_total}"),
            });
        }
        let sram_total = self.metrics.get(self.m.sram_staged_bytes);
        let sram_ledger: u64 = self
            .m
            .ledger_sram
            .iter()
            .map(|&id| self.metrics.get(id))
            .sum();
        if sram_total != sram_ledger {
            v.push(Violation {
                law: "ledger-totals",
                detail: format!("sram ledger rows sum to {sram_ledger}, total is {sram_total}"),
            });
        }

        // Bus sanity: accumulated busy time never exceeds the horizon a
        // bus has been driven to.
        let mut check_bus = |name: &str, i: usize, b: &Bus| {
            if b.busy.total() > b.free_at() {
                v.push(Violation {
                    law: "bus-sanity",
                    detail: format!(
                        "{name} {i}: busy {:?} exceeds horizon {:?}",
                        b.busy.total(),
                        b.free_at()
                    ),
                });
            }
        };
        for (i, b) in self.rank_bus.iter().enumerate() {
            check_bus("rank bus", i, b);
        }
        for (i, b) in self.channel.iter().enumerate() {
            check_bus("channel", i, b);
        }
        for (i, b) in self.link_bus.iter().enumerate() {
            check_bus("link", i, b);
        }
        v
    }

    /// Runs one audit scan and panics with the full violation list if
    /// any law fails.
    fn run_audit(&self, label: &str) {
        let violations = self.collect_violations();
        if violations.is_empty() {
            return;
        }
        let mut msg = format!(
            "conservation audit failed at {label} ({} on {}, {} violation(s)):",
            self.design,
            self.app.name(),
            violations.len()
        );
        for w in violations.iter().take(20) {
            msg.push_str("\n  ");
            msg.push_str(&w.to_string());
        }
        panic!("{msg}");
    }

    // ---- metrics + finalize ---------------------------------------------------

    /// Refreshes the harvested gauges (component-owned counters) in the
    /// registry so a snapshot sees a consistent picture.
    fn harvest_metrics(&mut self) {
        let mut tasks = 0u64;
        let mut rerouted = 0u64;
        let mut stalls = 0u64;
        let mut hits = 0u64;
        let mut overflows = 0u64;
        let mut peak_chunks = 0u64;
        let mut peak_tasks = 0u64;
        for u in &self.units {
            tasks += u.stats.tasks_executed.get();
            rerouted += u.stats.tasks_rerouted.get();
            stalls += u.stats.mailbox_stalls.get();
            let (h, o) = u.reserved_stats();
            hits += h;
            overflows += o;
            let (pc, pt) = u.reserved_peaks();
            peak_chunks = peak_chunks.max(pc as u64);
            peak_tasks = peak_tasks.max(pt as u64);
        }
        self.metrics.set(self.m.unit_tasks_executed, tasks);
        self.metrics.set(self.m.unit_tasks_rerouted, rerouted);
        self.metrics.set(self.m.unit_mailbox_stalls, stalls);
        self.metrics.set(self.m.sketch_reserved_hits, hits);
        self.metrics
            .set(self.m.sketch_reserved_overflows, overflows);
        self.metrics
            .set(self.m.sketch_reserved_peak_chunks, peak_chunks);
        self.metrics
            .set(self.m.sketch_reserved_peak_tasks, peak_tasks);
        let sum = |f: &dyn Fn(&RankBridge) -> u64| self.bridges.iter().map(f).sum::<u64>();
        self.metrics
            .set(self.m.bridge_gathers, sum(&|b| b.stats.gathers.get()));
        self.metrics.set(
            self.m.bridge_wasted_gathers,
            sum(&|b| b.stats.wasted_gathers.get()),
        );
        self.metrics
            .set(self.m.bridge_scatters, sum(&|b| b.stats.scatters.get()));
        self.metrics.set(
            self.m.bridge_bytes_gathered,
            sum(&|b| b.stats.bytes_gathered.get()),
        );
        self.metrics.set(
            self.m.bridge_bytes_scattered,
            sum(&|b| b.stats.bytes_scattered.get()),
        );
        self.metrics
            .set(self.m.bridge_lb_rounds, sum(&|b| b.stats.lb_rounds.get()));
        self.metrics
            .set(self.m.bridge_schedules, sum(&|b| b.stats.schedules.get()));
        self.metrics.set(
            self.m.host_bytes_gathered,
            self.host.stats.bytes_gathered.get(),
        );
        self.metrics.set(
            self.m.host_bytes_scattered,
            self.host.stats.bytes_scattered.get(),
        );
        self.metrics
            .set(self.m.host_lb_rounds, self.host.stats.lb_rounds.get());
        self.metrics.set(
            self.m.bus_rank_bytes,
            self.rank_bus.iter().map(|b| b.bytes.get()).sum(),
        );
        self.metrics.set(
            self.m.bus_channel_bytes,
            self.channel.iter().map(|b| b.bytes.get()).sum(),
        );
    }

    /// A bulk-synchronization barrier cleared: snapshot the metrics for
    /// this epoch and note it in the trace.
    fn note_epoch_advance(&mut self, new_epoch: Timestamp, now: SimTime) {
        self.harvest_metrics();
        self.metrics.set(self.m.epoch, new_epoch.0 as u64);
        self.metrics.snapshot(format!("epoch-{}", new_epoch.0), now);
        if let Some(tr) = sink(&mut self.trace) {
            tr.record(TraceRecord::instant(
                now,
                ComponentId::Host,
                TraceEvent::EpochAdvance { epoch: new_epoch.0 },
            ));
        }
        if self.cfg.audit.at_epochs() {
            self.run_audit(&format!("epoch-{}", new_epoch.0));
        }
    }

    fn finalize(mut self) -> RunResult {
        let finalize_start = self.profile.is_some().then(std::time::Instant::now);
        let mut finish = FinishTimes::default();
        let mut busy = FinishTimes::default();
        let mut per_unit_busy = Vec::with_capacity(self.units.len());
        let mut makespan = SimTime::ZERO;
        let mut tasks = 0u64;
        let mut rerouted = 0u64;
        let mut local_bytes = 0u64;
        for u in &self.units {
            finish.push(u.stats.last_finish);
            busy.push(u.stats.busy.total());
            per_unit_busy.push(u.stats.busy.total().ticks());
            makespan = makespan.max(u.stats.last_finish);
            tasks += u.stats.tasks_executed.get();
            rerouted += u.stats.tasks_rerouted.get();
            local_bytes += u.stats.dram_local_bytes.get();
        }
        self.harvest_metrics();
        self.metrics.snapshot("final", makespan);
        if self.cfg.audit.at_end() {
            self.run_audit("final");
        }
        let trace = self
            .trace
            .take()
            .map(|mut s| s.take_records())
            .unwrap_or_default();
        let comm_dram_bytes = self.metrics.get(self.m.comm_dram_bytes);
        let sram_staged_bytes = self.metrics.get(self.m.sram_staged_bytes);
        let max_busy = busy.max();
        let avg_busy = busy.mean();
        let wait_fraction = if makespan == SimTime::ZERO {
            0.0
        } else {
            1.0 - max_busy.ticks() as f64 / makespan.ticks() as f64
        };
        let rank_bus_bytes: u64 = self.rank_bus.iter().map(|b| b.bytes.get()).sum();
        let channel_bytes: u64 = self.channel.iter().map(|b| b.bytes.get()).sum();
        let lb_rounds = self
            .bridges
            .iter()
            .map(|b| b.stats.lb_rounds.get())
            .sum::<u64>()
            + self.host.stats.lb_rounds.get();

        let e = &self.cfg.energy;
        let core_busy_total: SimTime = self
            .units
            .iter()
            .fold(SimTime::ZERO, |acc, u| acc + u.stats.busy.total());
        let energy = EnergyBreakdown {
            core_sram_pj: e.core_pj(core_busy_total) + e.sram_pj(sram_staged_bytes),
            dram_local_pj: e.dram_pj(local_bytes),
            dram_comm_pj: e.dram_pj(comm_dram_bytes)
                + e.channel_pj(channel_bytes)
                + e.rank_pj(rank_bus_bytes),
            static_pj: e.static_pj(
                self.cfg.geometry.total_units(),
                self.cfg.geometry.total_ranks(),
                makespan,
            ),
        };
        let profile = self.profile.take().map(|mut p| {
            p.finalize_ns = finalize_start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            p
        });
        RunResult {
            app: self.app.name().to_string(),
            design: self.design.to_string(),
            makespan,
            avg_unit_time: avg_busy,
            max_unit_time: max_busy,
            wait_fraction,
            balance: if makespan == SimTime::ZERO {
                1.0
            } else {
                avg_busy.ticks() as f64 / makespan.ticks() as f64
            },
            tasks_executed: tasks,
            tasks_rerouted: rerouted,
            messages_delivered: self.metrics.get(self.m.msgs_delivered),
            rank_bus_bytes,
            channel_bytes,
            comm_dram_bytes,
            local_dram_bytes: local_bytes,
            lb_rounds,
            blocks_migrated: self.metrics.get(self.m.blocks_migrated),
            energy,
            checksum: self.app.checksum(),
            events: self.q.popped(),
            per_unit_busy,
            metrics: self.metrics.into_report(),
            trace,
            parallel: self.pstats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpb_dram::Geometry;
    use ndpb_tasks::{TaskArgs, TaskFnId, Timestamp};

    /// A do-nothing app for constructing systems in unit tests.
    struct Noop;

    impl Application for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn initial_tasks(&mut self) -> Vec<Task> {
            Vec::new()
        }
        fn execute(&mut self, _t: &Task, ctx: &mut ExecCtx) {
            ctx.compute(1);
        }
    }

    fn sys(design: DesignPoint) -> System {
        let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
        cfg.seed = 5;
        System::new(cfg, design, Box::new(Noop))
    }

    fn task_on(s: &System, unit: u32, offset: u64) -> Task {
        Task::new(
            TaskFnId(0),
            Timestamp(0),
            s.map.addr_in_unit(UnitId(unit), offset),
            3,
            TaskArgs::EMPTY,
        )
    }

    #[test]
    fn route_at_rank_sends_home_by_default() {
        let mut s = sys(DesignPoint::B);
        let msg = Message::Task(task_on(&s, 5, 0), None);
        assert_eq!(s.route_at_rank(0, &msg), Some(5));
        // A unit of the other rank routes upward.
        let far = Message::Task(task_on(&s, 64, 0), None);
        assert_eq!(s.route_at_rank(0, &far), None);
        assert_eq!(s.route_at_rank(1, &far), Some(64));
    }

    #[test]
    fn route_follows_bridge_metadata_for_borrowed_blocks() {
        let mut s = sys(DesignPoint::O);
        let t = task_on(&s, 5, 0);
        let block = s.map.block_of(t.data);
        // Simulate a migration: home marks lent, bridge maps to unit 9.
        s.units[5].is_lent.set(block);
        s.bridges[0].data_borrowed.insert(block, UnitId(9));
        let msg = Message::Task(t, None);
        assert_eq!(s.route_at_rank(0, &msg), Some(9));
    }

    #[test]
    fn lent_block_without_local_entry_routes_upward() {
        let mut s = sys(DesignPoint::O);
        let t = task_on(&s, 5, 0);
        let block = s.map.block_of(t.data);
        // Lent cross-rank: home bitmap set, no rank-bridge entry, host
        // knows the rank.
        s.units[5].is_lent.set(block);
        s.host.data_borrowed.insert(block, ndpb_dram::RankId(1));
        let msg = Message::Task(t, None);
        assert_eq!(s.route_at_rank(0, &msg), None, "must escalate");
        assert_eq!(s.route_at_host(&msg), 1);
    }

    #[test]
    fn data_messages_route_by_explicit_destination() {
        let mut s = sys(DesignPoint::O);
        let dm = DataMessage {
            block: BlockAddr(0),
            bytes: 256,
            workload: 1,
        };
        let msg = Message::Data(dm, Some(UnitId(70)));
        assert_eq!(s.route_at_rank(0, &msg), None);
        assert_eq!(s.route_at_rank(1, &msg), Some(70));
        assert_eq!(s.route_at_host(&msg), 1);
    }

    #[test]
    fn direct_dest_is_home_unit() {
        let s = sys(DesignPoint::C);
        let t = task_on(&s, 42, 128);
        assert_eq!(s.direct_dest_unit(&Message::Task(t, None)), 42);
    }

    #[test]
    fn w_threshold_falls_back_before_estimates() {
        let s = sys(DesignPoint::O);
        // No state gathers yet: S_exe estimate is 0 → conservative
        // G_xfer fallback.
        assert_eq!(s.rank_w_threshold(0), s.cfg.g_xfer as u64);
    }

    #[test]
    fn emit_stalls_into_pending_when_mailbox_full() {
        let mut s = sys(DesignPoint::B);
        // Shrink unit 0's mailbox to one message.
        s.units[0].mailbox = ndpb_proto::Mailbox::new(24);
        let m1 = Message::Task(task_on(&s, 7, 0), None);
        let m2 = Message::Task(task_on(&s, 8, 0), None);
        s.emit_message(0, m1, SimTime::ZERO);
        assert!(s.units[0].pending_out.is_empty());
        s.emit_message(0, m2, SimTime::ZERO);
        assert_eq!(s.units[0].pending_out.len(), 1);
        assert_eq!(s.units[0].stats.mailbox_stalls.get(), 1);
    }

    #[test]
    fn return_block_home_clears_all_metadata() {
        let mut s = sys(DesignPoint::O);
        let t = task_on(&s, 5, 0);
        let block = s.map.block_of(t.data);
        s.units[5].is_lent.set(block);
        s.bridges[0].data_borrowed.insert(block, UnitId(9));
        s.host.data_borrowed.insert(block, ndpb_dram::RankId(0));
        s.units[9].admit_borrow(block);
        s.return_block_home(9, block, SimTime::ZERO);
        assert!(s.bridges[0].data_borrowed.peek(&block).is_none());
        assert!(s.host.data_borrowed.peek(&block).is_none());
        // The return data message is in unit 9's mailbox.
        assert!(!s.units[9].mailbox.is_empty());
    }

    #[test]
    fn noop_system_terminates_immediately() {
        let r = sys(DesignPoint::O).run();
        assert_eq!(r.tasks_executed, 0);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.balance, 1.0);
        // No sink attached: the trace comes back empty, metrics still
        // carry the final snapshot.
        assert!(r.trace.is_empty());
        assert_eq!(r.metrics.final_value("unit/tasks_executed"), Some(0));
    }

    /// Epoch-0 tasks on unit 0 that each spawn an epoch-1 child on the
    /// far rank: forces mailbox traffic, bridge rounds and an epoch
    /// barrier, i.e. every traced subsystem.
    struct Fan {
        map: AddressMap,
    }

    impl Application for Fan {
        fn name(&self) -> &str {
            "fan"
        }
        fn initial_tasks(&mut self) -> Vec<Task> {
            (0..8)
                .map(|i| {
                    Task::new(
                        TaskFnId(0),
                        Timestamp(0),
                        self.map.addr_in_unit(UnitId(0), 64 * i),
                        3,
                        TaskArgs::EMPTY,
                    )
                })
                .collect()
        }
        fn execute(&mut self, t: &Task, ctx: &mut ExecCtx) {
            ctx.compute(10);
            ctx.read(t.data, 64);
            if t.func.0 == 0 {
                ctx.spawn(Task::new(
                    TaskFnId(1),
                    Timestamp(1),
                    self.map.addr_in_unit(UnitId(70), t.data.0 % 512),
                    3,
                    TaskArgs::EMPTY,
                ));
            }
        }
    }

    #[test]
    fn traced_run_captures_bridge_mailbox_and_task_events() {
        let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
        cfg.seed = 5;
        let map = AddressMap::new(&cfg.geometry, cfg.g_xfer, cfg.timing.row_bytes);
        let mut s = System::new(cfg, DesignPoint::O, Box::new(Fan { map }));
        s.set_trace(Box::new(ndpb_trace::RingRecorder::new(1 << 16)));
        let r = s.run();
        assert_eq!(r.tasks_executed, 16);
        let names: std::collections::HashSet<&str> =
            r.trace.iter().map(|t| t.event.name()).collect();
        for required in [
            "task",
            "gather",
            "scatter",
            "mailbox-enqueue",
            "epoch",
            "bus-transfer",
        ] {
            assert!(names.contains(required), "missing {required} in {names:?}");
        }
        // The metrics report agrees with the headline result fields and
        // holds one snapshot per epoch barrier plus the final one.
        assert_eq!(
            r.metrics.final_value("system/msgs_delivered"),
            Some(r.messages_delivered)
        );
        assert_eq!(
            r.metrics.final_value("unit/tasks_executed"),
            Some(r.tasks_executed)
        );
        let labels: Vec<&str> = r
            .metrics
            .snapshots
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"epoch-1"), "snapshots: {labels:?}");
        assert_eq!(labels.last(), Some(&"final"));
        // Chrome export of a real trace is structurally valid JSON.
        let json = ndpb_trace::chrome_trace_string(&r.trace);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    // ---- conservation audit ----------------------------------------------

    #[test]
    fn audit_trips_on_corrupted_data_borrowed_entry() {
        let mut s = sys(DesignPoint::O);
        s.audit.enabled = true;
        // Fabricate a bridge entry for a block whose home never lent it
        // and which nobody holds: two inclusivity laws must fire.
        let t = task_on(&s, 5, 0);
        let block = s.map.block_of(t.data);
        s.bridges[0].data_borrowed.insert(block, UnitId(9));
        let v = s.collect_violations();
        assert!(
            v.iter().any(|x| x.law == "data-borrowed-inclusivity"),
            "corruption not detected: {v:?}"
        );
        assert!(v.iter().any(|x| x.detail.contains("orphaned")), "{v:?}");
        // Repairing the entry silences the auditor again.
        s.bridges[0].data_borrowed.remove(&block);
        assert!(s.collect_violations().is_empty());
    }

    #[test]
    fn audit_trips_on_corrupted_to_arrive_counter() {
        let mut s = sys(DesignPoint::W);
        s.audit.enabled = true;
        assert!(s.collect_violations().is_empty());
        s.bridges[1].to_arrive[3] = 7; // no scheduled task is in flight
        let v = s.collect_violations();
        assert!(
            v.iter()
                .any(|x| x.law == "to-arrive" && x.detail.contains("bridge 1 child 3")),
            "{v:?}"
        );
        // Corrupting the host-level counter trips its own law.
        s.bridges[1].to_arrive[3] = 0;
        s.host.to_arrive[0] = 9;
        let v = s.collect_violations();
        assert!(
            v.iter()
                .any(|x| x.law == "to-arrive" && x.detail.contains("host toArrive[0]")),
            "{v:?}"
        );
    }

    #[test]
    fn audited_run_is_bit_identical_to_unaudited() {
        let run = |audit| {
            let mut cfg = SystemConfig::with_geometry(Geometry::with_total_ranks(2));
            cfg.seed = 5;
            cfg.audit = audit;
            let map = AddressMap::new(&cfg.geometry, cfg.g_xfer, cfg.timing.row_bytes);
            System::new(cfg, DesignPoint::W, Box::new(Fan { map })).run()
        };
        let a = run(AuditLevel::Full);
        let b = run(AuditLevel::Off);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.events, b.events);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.comm_dram_bytes, b.comm_dram_bytes);
        assert_eq!(a.energy.total_pj(), b.energy.total_pj());
    }

    #[test]
    fn scheduled_task_settles_to_arrive_for_intended_receiver_once() {
        let mut s = sys(DesignPoint::W);
        s.audit.enabled = true;
        // A scheduled task intended for u9 is delivered at u9, which
        // does not hold the block: the reroute must still settle both
        // toArrive levels (u9 was the intended receiver) and clear the
        // marker so the forwarded copy settles nothing further.
        let t = task_on(&s, 5, 0);
        let wl = t.workload_or_default();
        s.bridges[0].to_arrive[9] = wl;
        s.host.to_arrive[0] = wl;
        let msg = Message::Task(t, Some(UnitId(9)));
        s.audit.note_scheduled(&msg); // as schedule_delivery would
        s.on_deliver(9, msg);
        assert_eq!(s.bridges[0].to_arrive[9], 0);
        assert_eq!(s.host.to_arrive[0], 0);
        assert_eq!(s.units[9].stats.tasks_rerouted.get(), 1);
        // The re-emitted copy carries no marker.
        let mut fwd = s.units[9].mailbox.iter();
        assert!(matches!(fwd.next(), Some(Message::Task(_, None))));
        assert!(fwd.next().is_none());
    }

    #[test]
    fn evicting_an_in_flight_block_leaves_no_orphan() {
        let mut s = sys(DesignPoint::O);
        s.audit.enabled = true;
        let cap = s.bridges[0].data_borrowed.capacity();
        // Block A is scheduled toward u9 but its data is still in
        // flight (not admitted anywhere).
        let a = s.map.block_of(task_on(&s, 5, 0).data);
        s.units[5].is_lent.set(a);
        let gx = s.cfg.g_xfer;
        let dm = move |block| DataMessage {
            block,
            bytes: gx,
            workload: 1,
        };
        s.note_block_in_rank(0, &Message::Data(dm(a), Some(UnitId(9))));
        assert_eq!(s.bridges[0].data_borrowed.peek(&a), Some(&UnitId(9)));
        // Fill the table until A's entry is evicted while in flight.
        for i in 0..cap as u64 {
            let b = s.map.block_of(task_on(&s, 6, s.cfg.g_xfer as u64 * i).data);
            s.units[6].is_lent.set(b);
            s.note_block_in_rank(0, &Message::Data(dm(b), Some(UnitId(10))));
        }
        assert!(s.bridges[0].data_borrowed.peek(&a).is_none());
        // No bogus return was emitted from u9 (it never held A).
        assert!(s.units[9].mailbox.is_empty());
        // When A's data finally arrives, the stale check bounces it
        // home instead of admitting an orphan borrow.
        s.audit
            .note_scheduled(&Message::Data(dm(a), Some(UnitId(9))));
        s.on_deliver(9, Message::Data(dm(a), Some(UnitId(9))));
        assert!(!s.units[9].is_borrowed(a));
        let mut bounced = s.units[9].mailbox.iter();
        match bounced.next() {
            Some(Message::Data(d, Some(dest))) if d.block == a && *dest == UnitId(5) => {}
            other => panic!("expected a bounce-home data message, got {other:?}"),
        }
    }

    #[test]
    fn returned_block_can_be_relent_cleanly() {
        let mut s = sys(DesignPoint::O);
        s.audit.enabled = true;
        let a = s.map.block_of(task_on(&s, 5, 0).data);
        let dmsg = Message::Data(
            DataMessage {
                block: a,
                bytes: s.cfg.g_xfer,
                workload: 1,
            },
            Some(UnitId(9)),
        );
        // First lend: u5 → u9, admitted.
        s.units[5].is_lent.set(a);
        s.note_block_in_rank(0, &dmsg);
        s.audit.note_scheduled(&dmsg);
        s.on_deliver(9, dmsg.clone());
        assert!(s.units[9].is_borrowed(a));
        // Return home: metadata cleared, lent bit dropped.
        assert!(s.units[9].remove_borrow(a));
        s.return_block_home(9, a, SimTime::ZERO);
        let ret = Message::Data(
            DataMessage {
                block: a,
                bytes: s.cfg.g_xfer,
                workload: 0,
            },
            Some(UnitId(5)),
        );
        s.audit.note_scheduled(&ret);
        s.on_deliver(5, ret);
        assert!(!s.units[5].is_lent.is_lent(a));
        // Immediate re-lend of the just-returned block is clean.
        s.units[5].is_lent.set(a);
        s.note_block_in_rank(0, &dmsg);
        s.audit.note_scheduled(&dmsg);
        s.on_deliver(9, dmsg);
        assert!(s.units[9].is_borrowed(a));
        assert_eq!(s.bridges[0].data_borrowed.peek(&a), Some(&UnitId(9)));
    }
}
