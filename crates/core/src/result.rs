//! Per-run results, matching the metrics the paper's figures report.

use ndpb_dram::EnergyBreakdown;
use ndpb_sim::SimTime;
use ndpb_trace::{MetricsReport, TraceRecord};

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Design point label (C/B/W/O/H/R/…).
    pub design: String,
    /// Overall execution time — the slowest unit / makespan (the
    /// figures' "maximum" bar).
    pub makespan: SimTime,
    /// Mean of per-unit execution (busy) times (the "average" mark).
    pub avg_unit_time: SimTime,
    /// Maximum per-unit busy time.
    pub max_unit_time: SimTime,
    /// Fraction of the makespan the slowest unit spent *not* executing
    /// tasks — the paper's "wait time" share.
    pub wait_fraction: f64,
    /// `avg_unit_time / makespan`: the load-balance quality metric
    /// (22.4% for B, 47.0% for W, 59.0% for O in the paper).
    pub balance: f64,
    /// Total tasks executed.
    pub tasks_executed: u64,
    /// Tasks that had to be re-routed because their block migrated.
    pub tasks_rerouted: u64,
    /// Cross-unit messages delivered.
    pub messages_delivered: u64,
    /// Bytes moved over intra-rank buses.
    pub rank_bus_bytes: u64,
    /// Bytes moved over the DDR channels.
    pub channel_bytes: u64,
    /// DRAM bytes accessed for communication (mailbox + scatter +
    /// borrowed-region traffic).
    pub comm_dram_bytes: u64,
    /// DRAM bytes accessed for local task data.
    pub local_dram_bytes: u64,
    /// Load-balancing rounds initiated across all bridges.
    pub lb_rounds: u64,
    /// Blocks migrated by load balancing.
    pub blocks_migrated: u64,
    /// Energy breakdown (Figure 13).
    pub energy: EnergyBreakdown,
    /// Application-level checksum for cross-design result validation.
    pub checksum: u64,
    /// Events processed by the simulator (diagnostic).
    pub events: u64,
    /// Per-unit busy time in ticks (index = unit id); the raw data
    /// behind `avg_unit_time`/`max_unit_time`, for histograms.
    pub per_unit_busy: Vec<u64>,
    /// Hierarchical metrics with per-epoch snapshots (serialize with
    /// [`MetricsReport::to_json`]).
    pub metrics: MetricsReport,
    /// Trace events captured during the run; empty unless a sink was
    /// attached (see `System::set_trace`). Serialize with
    /// `ndpb_trace::write_chrome_trace`.
    pub trace: Vec<TraceRecord>,
    /// Windowed parallel-execution statistics; `None` when the run used
    /// the exact-merge serial path (1 shard, non-admissible model, or a
    /// cache-restored result). Deliberately *not* serialized by
    /// [`to_json`](Self::to_json) — wall-clock execution strategy must
    /// stay observationally invisible to goldens and the result cache.
    pub parallel: Option<ParallelStats>,
    /// Event-loop phase profile; `None` unless the run was started with
    /// profiling enabled (`System::set_profile` / `HostOnly::set_profile`,
    /// surfaced as `repro bench --profile`). Like [`parallel`]
    /// (Self::parallel), *not* serialized by [`to_json`](Self::to_json):
    /// wall-clock attribution must stay invisible to goldens and the
    /// result cache.
    pub profile: Option<ProfileStats>,
}

/// How a windowed parallel run spent its wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelStats {
    /// Shards the run was partitioned into.
    pub shards: u32,
    /// Parallel windows executed (each drained ≥1 lane concurrently).
    pub windows: u64,
    /// Events dispatched on the serial fallback path between windows
    /// (global-class events, epoch-guard failures, sub-horizon steps).
    pub serial_fallback_steps: u64,
    /// Wall-clock nanoseconds lanes spent waiting at window barriers
    /// (sum over windows of `max(lane wall) - lane wall`, across lanes).
    pub barrier_stall_ns: u64,
    /// Whether lanes actually ran on scoped threads (`false` = inline
    /// on the calling thread because `available_parallelism() < 2`).
    pub lane_threads: bool,
}

/// How a profiled run's wall-clock time splits across event-loop
/// phases, plus the same-tick batch-length histogram that makes the
/// batched-dispatch win attributable (DESIGN.md §3c).
///
/// Timings come from `Instant` reads bracketing each phase of the
/// serial loop, so enabling the profile adds two clock reads per
/// *batch* (not per event) — cheap, but still a measurement: profiled
/// passes are kept out of bench timing medians.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileStats {
    /// Nanoseconds spent popping runs out of the event queue (head
    /// scans, bitmap walks, bucket drains).
    pub queue_ns: u64,
    /// Nanoseconds spent inside event handlers (task execution, message
    /// routing, load balancing — everything `dispatch` does).
    pub dispatch_ns: u64,
    /// Nanoseconds spent finalizing: draining per-unit counters into
    /// the metrics report and building the [`RunResult`].
    pub finalize_ns: u64,
    /// Same-tick runs handed back by `pop_run` (= pop calls).
    pub batches: u64,
    /// Events dispatched (sum of batch lengths).
    pub events: u64,
    /// Batch-length histogram: runs of length 1, 2, 3–4, 5–8, 9–16,
    /// 17–32, 33–64, 65+.
    pub run_len_hist: [u64; 8],
}

impl ProfileStats {
    /// Upper edge labels for [`run_len_hist`](Self::run_len_hist).
    pub const RUN_LEN_LABELS: [&'static str; 8] =
        ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"];

    /// Records one same-tick run of `n` events.
    #[inline]
    pub fn note_batch(&mut self, n: usize) {
        self.batches += 1;
        self.events += n as u64;
        let bucket = match n {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            17..=32 => 5,
            33..=64 => 6,
            _ => 7,
        };
        self.run_len_hist[bucket] += 1;
    }

    /// Mean events per pop (`1.0` means batching never fused anything).
    pub fn events_per_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.events as f64 / self.batches as f64
    }

    /// Folds another profile into this one (for aggregating across
    /// runs of a bench pass).
    pub fn merge(&mut self, other: &ProfileStats) {
        self.queue_ns += other.queue_ns;
        self.dispatch_ns += other.dispatch_ns;
        self.finalize_ns += other.finalize_ns;
        self.batches += other.batches;
        self.events += other.events;
        for (a, b) in self.run_len_hist.iter_mut().zip(other.run_len_hist) {
            *a += b;
        }
    }

    /// The phase split as a JSON object (embedded in BENCH_repro.json's
    /// `"profile"` section — never in golden result JSON).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.run_len_hist.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"queue_ns\":{},\"dispatch_ns\":{},\"finalize_ns\":{},",
                "\"batches\":{},\"events\":{},\"events_per_batch\":{:.3},",
                "\"run_len_hist\":[{}]}}"
            ),
            self.queue_ns,
            self.dispatch_ns,
            self.finalize_ns,
            self.batches,
            self.events,
            self.events_per_batch(),
            hist.join(","),
        )
    }
}

impl RunResult {
    /// A 10-bucket histogram of per-unit busy time as fractions of the
    /// makespan (bucket 0 = nearly idle units, bucket 9 = saturated).
    pub fn busy_histogram(&self) -> [u64; 10] {
        let mut h = [0u64; 10];
        let span = self.makespan.ticks().max(1);
        for &b in &self.per_unit_busy {
            let frac = b as f64 / span as f64;
            let idx = ((frac * 10.0) as usize).min(9);
            h[idx] += 1;
        }
        h
    }

    /// Gini coefficient of per-unit busy time: 0 = perfectly balanced,
    /// → 1 = one unit does everything. A scalar imbalance measure
    /// complementing `balance`.
    pub fn busy_gini(&self) -> f64 {
        let mut v: Vec<u64> = self.per_unit_busy.clone();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_unstable();
        let n = v.len() as f64;
        let total: f64 = v.iter().map(|&x| x as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = v
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
            .sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }

    /// Speedup of this run relative to `baseline` (by makespan): > 1
    /// means this run is faster.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        if self.makespan == SimTime::ZERO {
            return f64::INFINITY;
        }
        baseline.makespan.ticks() as f64 / self.makespan.ticks() as f64
    }

    /// Energy reduction relative to `baseline` in `[0, 1)`; negative if
    /// this run uses more energy.
    pub fn energy_reduction_vs(&self, baseline: &RunResult) -> f64 {
        let b = baseline.energy.total_pj();
        if b == 0.0 {
            return 0.0;
        }
        1.0 - self.energy.total_pj() / b
    }

    /// Serializes the result as a self-contained JSON object (used by
    /// the `repro --json` harness output; hand-rolled to keep the
    /// dependency set minimal).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"app\":\"{}\",\"design\":\"{}\",\"makespan_ticks\":{},",
                "\"avg_unit_ticks\":{},\"max_unit_ticks\":{},\"wait_fraction\":{:.6},",
                "\"balance\":{:.6},\"tasks_executed\":{},\"tasks_rerouted\":{},",
                "\"messages_delivered\":{},\"rank_bus_bytes\":{},\"channel_bytes\":{},",
                "\"comm_dram_bytes\":{},\"local_dram_bytes\":{},\"lb_rounds\":{},",
                "\"blocks_migrated\":{},\"energy_pj\":{{\"core_sram\":{:.1},",
                "\"dram_local\":{:.1},\"dram_comm\":{:.1},\"static\":{:.1}}},",
                "\"checksum\":{},\"events\":{},\"busy_gini\":{:.6}}}"
            ),
            self.app,
            self.design,
            self.makespan.ticks(),
            self.avg_unit_time.ticks(),
            self.max_unit_time.ticks(),
            self.wait_fraction,
            self.balance,
            self.tasks_executed,
            self.tasks_rerouted,
            self.messages_delivered,
            self.rank_bus_bytes,
            self.channel_bytes,
            self.comm_dram_bytes,
            self.local_dram_bytes,
            self.lb_rounds,
            self.blocks_migrated,
            self.energy.core_sram_pj,
            self.energy.dram_local_pj,
            self.energy.dram_comm_pj,
            self.energy.static_pj,
            self.checksum,
            self.events,
            self.busy_gini(),
        )
    }

    /// One fixed-width table row (used by the `repro` harness).
    pub fn row(&self) -> String {
        format!(
            "{:<6} {:<7} makespan={:>12.1}us avg={:>10.1}us balance={:>5.1}% wait={:>5.1}% tasks={:<9} msgs={:<9} chan={:>8}KB rank={:>8}KB energy={:>10.1}uJ",
            self.app,
            self.design,
            self.makespan.as_ns() / 1000.0,
            self.avg_unit_time.as_ns() / 1000.0,
            self.balance * 100.0,
            self.wait_fraction * 100.0,
            self.tasks_executed,
            self.messages_delivered,
            self.channel_bytes / 1024,
            self.rank_bus_bytes / 1024,
            self.energy.total_pj() / 1e6,
        )
    }
}

/// Geometric mean of a set of ratios (the paper averages speedups
/// across applications geometrically).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan_ticks: u64, energy: f64) -> RunResult {
        RunResult {
            app: "test".into(),
            design: "O".into(),
            makespan: SimTime::from_ticks(makespan_ticks),
            avg_unit_time: SimTime::from_ticks(makespan_ticks / 2),
            max_unit_time: SimTime::from_ticks(makespan_ticks),
            wait_fraction: 0.1,
            balance: 0.5,
            tasks_executed: 100,
            tasks_rerouted: 0,
            messages_delivered: 10,
            rank_bus_bytes: 1024,
            channel_bytes: 2048,
            comm_dram_bytes: 0,
            local_dram_bytes: 0,
            lb_rounds: 0,
            blocks_migrated: 0,
            energy: EnergyBreakdown {
                core_sram_pj: energy,
                ..EnergyBreakdown::default()
            },
            checksum: 7,
            events: 1,
            per_unit_busy: vec![makespan_ticks, makespan_ticks / 2],
            metrics: MetricsReport::default(),
            trace: Vec::new(),
            parallel: None,
            profile: None,
        }
    }

    #[test]
    fn speedup_is_ratio_of_makespans() {
        let fast = result(100, 1.0);
        let slow = result(300, 1.0);
        assert!((fast.speedup_over(&slow) - 3.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_reduction() {
        let low = result(1, 40.0);
        let high = result(1, 100.0);
        assert!((low.energy_reduction_vs(&high) - 0.6).abs() < 1e-12);
        assert!(high.energy_reduction_vs(&low) < 0.0);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn histogram_buckets_units() {
        let r = result(100, 1.0);
        let h = r.busy_histogram();
        assert_eq!(h.iter().sum::<u64>(), 2);
        assert_eq!(h[9], 1, "the saturated unit lands in the top bucket");
        assert_eq!(h[5], 1, "the half-busy unit lands mid-histogram");
    }

    #[test]
    fn gini_bounds() {
        let mut r = result(100, 1.0);
        assert!(r.busy_gini() >= 0.0 && r.busy_gini() < 1.0);
        // Perfect balance: gini 0.
        r.per_unit_busy = vec![50; 8];
        assert!(r.busy_gini().abs() < 1e-9);
        // Extreme imbalance: gini near 1.
        r.per_unit_busy = vec![0, 0, 0, 0, 0, 0, 0, 1000];
        assert!(r.busy_gini() > 0.8);
    }

    #[test]
    fn row_is_one_line() {
        let r = result(240, 5.0);
        let row = r.row();
        assert!(!row.contains('\n'));
        assert!(row.contains("makespan"));
    }

    #[test]
    fn profile_histogram_buckets_and_merge() {
        let mut p = ProfileStats::default();
        for n in [1usize, 2, 4, 8, 16, 32, 64, 65, 4096] {
            p.note_batch(n);
        }
        assert_eq!(p.run_len_hist, [1, 1, 1, 1, 1, 1, 1, 2]);
        assert_eq!(p.batches, 9);
        assert_eq!(p.events, 1 + 2 + 4 + 8 + 16 + 32 + 64 + 65 + 4096);
        let mut q = ProfileStats {
            queue_ns: 5,
            dispatch_ns: 7,
            ..ProfileStats::default()
        };
        q.merge(&p);
        assert_eq!(q.batches, 9);
        assert_eq!(q.queue_ns, 5);
        let j = q.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"run_len_hist\":[1,1,1,1,1,1,1,2]"));
        assert!(j.contains("\"queue_ns\":5"));
    }

    #[test]
    fn profile_stays_out_of_result_json() {
        let mut r = result(240, 5.0);
        let plain = r.to_json();
        r.profile = Some(ProfileStats::default());
        assert_eq!(r.to_json(), plain, "profile must be invisible to goldens");
    }

    #[test]
    fn json_is_well_formed() {
        let r = result(240, 5.0);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"app\":\"test\""));
        assert!(j.contains("\"makespan_ticks\":240"));
        assert!(j.contains("\"energy_pj\""));
        assert!(!j.contains('\n'));
    }
}
