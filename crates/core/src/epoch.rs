//! Bulk-synchronous epoch tracking.
//!
//! Tasks carry a [`Timestamp`](ndpb_tasks::Timestamp); tasks of epoch
//! `t+1` may only run after every epoch-`t` task in the *whole system*
//! has completed (Section IV). The tracker counts outstanding tasks per
//! epoch — a task is outstanding from the moment it is spawned (even
//! while in a mailbox or on a bus) until its execution finishes — and
//! reports when the barrier opens.

use std::collections::VecDeque;

use ndpb_tasks::Timestamp;

/// Counts outstanding tasks per epoch and drives the global barrier.
///
/// Epochs are dense small integers and tasks may only be spawned into
/// the current epoch or later, so the counts live in a `VecDeque`
/// indexed from `current` (slot 0 = the current epoch) instead of an
/// ordered map: the tracker is touched several times per task, and the
/// deque turns each of those tree walks into an index.
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    current: u32,
    /// `outstanding[i]` = tasks pending in epoch `current + i`. A zero
    /// count is the same as "no such epoch".
    outstanding: VecDeque<u64>,
    /// Sum of `outstanding` (kept incrementally).
    total: u64,
}

impl EpochTracker {
    /// A tracker positioned at epoch 0 with nothing outstanding.
    pub fn new() -> Self {
        Self::default()
    }

    /// The epoch currently allowed to execute.
    pub fn current(&self) -> Timestamp {
        Timestamp(self.current)
    }

    /// Whether a task with timestamp `ts` may execute now.
    pub fn is_ready(&self, ts: Timestamp) -> bool {
        ts.0 <= self.current
    }

    /// Registers a newly spawned task.
    ///
    /// # Panics
    ///
    /// Panics if the task belongs to an epoch that has already fully
    /// completed (time travel).
    pub fn spawned(&mut self, ts: Timestamp) {
        assert!(
            ts.0 >= self.current,
            "spawned task for closed epoch {} (current {})",
            ts.0,
            self.current
        );
        let idx = (ts.0 - self.current) as usize;
        if idx >= self.outstanding.len() {
            self.outstanding.resize(idx + 1, 0);
        }
        self.outstanding[idx] += 1;
        self.total += 1;
        // If nothing is pending at the current epoch (e.g. an
        // application seeds only later epochs), fast-forward to the
        // earliest pending epoch so the barrier can open.
        while self.outstanding[0] == 0 {
            self.outstanding.pop_front();
            self.current += 1;
        }
    }

    /// Registers a task completion. Returns `Some(new_epoch)` when this
    /// completion closes the current epoch and a later epoch (with
    /// pending tasks) opens; returns `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced completion.
    pub fn completed(&mut self, ts: Timestamp) -> Option<Timestamp> {
        let idx =
            ts.0.checked_sub(self.current)
                .map(|d| d as usize)
                .filter(|&i| i < self.outstanding.len() && self.outstanding[i] > 0)
                .unwrap_or_else(|| panic!("completion for unknown epoch {}", ts.0));
        self.outstanding[idx] -= 1;
        self.total -= 1;
        if idx == 0 && self.outstanding[0] == 0 && self.total > 0 {
            // Current epoch drained: jump to the next epoch that has
            // outstanding tasks.
            while self.outstanding[0] == 0 {
                self.outstanding.pop_front();
                self.current += 1;
            }
            return Some(Timestamp(self.current));
        }
        None
    }

    /// Total outstanding tasks across all epochs.
    pub fn total_outstanding(&self) -> u64 {
        self.total
    }

    /// Outstanding tasks in the *current* epoch only. The windowed
    /// engine's epoch guard compares this against the number of
    /// completions a window could possibly retire to prove the epoch
    /// barrier cannot open mid-window.
    pub fn outstanding_current(&self) -> u64 {
        self.outstanding.front().copied().unwrap_or(0)
    }

    /// Whether every task in every epoch has completed.
    pub fn all_done(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = EpochTracker::new();
        assert_eq!(t.current(), Timestamp(0));
        assert!(t.all_done());
        assert!(t.is_ready(Timestamp(0)));
        assert!(!t.is_ready(Timestamp(1)));
    }

    #[test]
    fn barrier_opens_when_epoch_drains() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        assert_eq!(t.completed(Timestamp(0)), None);
        assert!(!t.is_ready(Timestamp(1)));
        let opened = t.completed(Timestamp(0));
        assert_eq!(opened, Some(Timestamp(1)));
        assert!(t.is_ready(Timestamp(1)));
        assert_eq!(t.total_outstanding(), 1);
    }

    #[test]
    fn skips_empty_epochs() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(5));
        assert_eq!(t.completed(Timestamp(0)), Some(Timestamp(5)));
        assert_eq!(t.current(), Timestamp(5));
    }

    #[test]
    fn completes_everything() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        t.completed(Timestamp(0));
        assert!(!t.all_done());
        t.completed(Timestamp(1));
        assert!(t.all_done());
    }

    #[test]
    fn future_spawns_do_not_open_barrier_early() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(2));
        t.spawned(Timestamp(2));
        assert_eq!(t.completed(Timestamp(0)), Some(Timestamp(2)));
        // Still in epoch 2 until both drain.
        assert_eq!(t.completed(Timestamp(2)), None);
        assert_eq!(t.completed(Timestamp(2)), None);
        assert!(t.all_done());
    }

    #[test]
    #[should_panic(expected = "closed epoch")]
    fn spawning_into_past_panics() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        t.completed(Timestamp(0)); // moves to epoch 1
        t.spawned(Timestamp(0));
    }

    #[test]
    #[should_panic(expected = "unknown epoch")]
    fn unbalanced_completion_panics() {
        let mut t = EpochTracker::new();
        t.completed(Timestamp(0));
    }
}
