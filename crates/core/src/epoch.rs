//! Bulk-synchronous epoch tracking.
//!
//! Tasks carry a [`Timestamp`](ndpb_tasks::Timestamp); tasks of epoch
//! `t+1` may only run after every epoch-`t` task in the *whole system*
//! has completed (Section IV). The tracker counts outstanding tasks per
//! epoch — a task is outstanding from the moment it is spawned (even
//! while in a mailbox or on a bus) until its execution finishes — and
//! reports when the barrier opens.

use std::collections::BTreeMap;

use ndpb_tasks::Timestamp;

/// Counts outstanding tasks per epoch and drives the global barrier.
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    current: u32,
    outstanding: BTreeMap<u32, u64>,
}

impl EpochTracker {
    /// A tracker positioned at epoch 0 with nothing outstanding.
    pub fn new() -> Self {
        Self::default()
    }

    /// The epoch currently allowed to execute.
    pub fn current(&self) -> Timestamp {
        Timestamp(self.current)
    }

    /// Whether a task with timestamp `ts` may execute now.
    pub fn is_ready(&self, ts: Timestamp) -> bool {
        ts.0 <= self.current
    }

    /// Registers a newly spawned task.
    ///
    /// # Panics
    ///
    /// Panics if the task belongs to an epoch that has already fully
    /// completed (time travel).
    pub fn spawned(&mut self, ts: Timestamp) {
        assert!(
            ts.0 >= self.current,
            "spawned task for closed epoch {} (current {})",
            ts.0,
            self.current
        );
        *self.outstanding.entry(ts.0).or_insert(0) += 1;
        // If nothing exists at the current epoch (e.g. an application
        // seeds only later epochs), fast-forward to the earliest pending
        // epoch so the barrier can open.
        if !self.outstanding.contains_key(&self.current) {
            self.current = *self.outstanding.keys().next().expect("just inserted");
        }
    }

    /// Registers a task completion. Returns `Some(new_epoch)` when this
    /// completion closes the current epoch and a later epoch (with
    /// pending tasks) opens; returns `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced completion.
    pub fn completed(&mut self, ts: Timestamp) -> Option<Timestamp> {
        let n = self
            .outstanding
            .get_mut(&ts.0)
            .unwrap_or_else(|| panic!("completion for unknown epoch {}", ts.0));
        assert!(*n > 0, "unbalanced completion for epoch {}", ts.0);
        *n -= 1;
        if *n == 0 {
            self.outstanding.remove(&ts.0);
        }
        if ts.0 == self.current && !self.outstanding.contains_key(&self.current) {
            // Current epoch drained: jump to the next epoch that has
            // outstanding tasks, if any.
            if let Some((&next, _)) = self.outstanding.iter().next() {
                self.current = next;
                return Some(Timestamp(next));
            }
        }
        None
    }

    /// Total outstanding tasks across all epochs.
    pub fn total_outstanding(&self) -> u64 {
        self.outstanding.values().sum()
    }

    /// Whether every task in every epoch has completed.
    pub fn all_done(&self) -> bool {
        self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let t = EpochTracker::new();
        assert_eq!(t.current(), Timestamp(0));
        assert!(t.all_done());
        assert!(t.is_ready(Timestamp(0)));
        assert!(!t.is_ready(Timestamp(1)));
    }

    #[test]
    fn barrier_opens_when_epoch_drains() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        assert_eq!(t.completed(Timestamp(0)), None);
        assert!(!t.is_ready(Timestamp(1)));
        let opened = t.completed(Timestamp(0));
        assert_eq!(opened, Some(Timestamp(1)));
        assert!(t.is_ready(Timestamp(1)));
        assert_eq!(t.total_outstanding(), 1);
    }

    #[test]
    fn skips_empty_epochs() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(5));
        assert_eq!(t.completed(Timestamp(0)), Some(Timestamp(5)));
        assert_eq!(t.current(), Timestamp(5));
    }

    #[test]
    fn completes_everything() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        t.completed(Timestamp(0));
        assert!(!t.all_done());
        t.completed(Timestamp(1));
        assert!(t.all_done());
    }

    #[test]
    fn future_spawns_do_not_open_barrier_early() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(2));
        t.spawned(Timestamp(2));
        assert_eq!(t.completed(Timestamp(0)), Some(Timestamp(2)));
        // Still in epoch 2 until both drain.
        assert_eq!(t.completed(Timestamp(2)), None);
        assert_eq!(t.completed(Timestamp(2)), None);
        assert!(t.all_done());
    }

    #[test]
    #[should_panic(expected = "closed epoch")]
    fn spawning_into_past_panics() {
        let mut t = EpochTracker::new();
        t.spawned(Timestamp(0));
        t.spawned(Timestamp(1));
        t.completed(Timestamp(0)); // moves to epoch 1
        t.spawned(Timestamp(0));
    }

    #[test]
    #[should_panic(expected = "unknown epoch")]
    fn unbalanced_completion_panics() {
        let mut t = EpochTracker::new();
        t.completed(Timestamp(0));
    }
}
