//! The NDPBridge system model.
//!
//! This crate assembles the substrates ([`ndpb_dram`], [`ndpb_proto`],
//! [`ndpb_sketch`], [`ndpb_tasks`]) into the full system the paper
//! evaluates:
//!
//! * [`config::SystemConfig`] — Table I parameters and sweep knobs;
//! * [`design::DesignPoint`] — the evaluated designs C/B/W/O plus the
//!   RowClone baseline R and the Figure 14a ablations;
//! * [`unit::NdpUnit`] — per-bank core, controller, queues, metadata;
//! * [`bridge`] — level-1 rank bridges and the level-2 host bridge;
//! * [`system::System`] — the discrete-event simulation binding it all:
//!   task execution, gather/scatter rounds, dynamic triggering and
//!   hierarchical data-transfer-aware load balancing;
//! * [`hostonly::HostOnly`] — the non-NDP host baseline **H**;
//! * [`result::RunResult`] — per-run metrics matching the paper's
//!   figures (makespan, average unit time, wait fraction, traffic,
//!   energy breakdown).

#![warn(missing_docs)]

pub mod audit;
pub mod bridge;
pub mod config;
pub mod design;
pub mod epoch;
pub mod fasthash;
pub mod hostonly;
pub mod metadata;
pub(crate) mod parallel;
pub mod pool;
pub mod result;
pub mod steal;
pub mod system;
pub mod unit;

pub use audit::{AuditLevel, Violation};
pub use config::{SystemConfig, TriggerPolicy};
pub use design::{CommPath, DesignPoint, LbPolicy};
pub use pool::BufPool;
pub use result::{ParallelStats, ProfileStats, RunResult};
pub use system::System;
