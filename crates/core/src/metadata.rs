//! Migration metadata: `isLent` bitmaps and `dataBorrowed` LRU tables
//! (Section VI-B, Figure 7).

use ndpb_dram::BlockAddr;

use crate::fasthash::{FastMap, FastSet};

/// A bounded LRU map modelling a set-associative `dataBorrowed` table.
/// (We model full LRU; hardware associativity only changes conflict
/// behaviour at the margins and the paper sweeps total *size*.)
///
/// # Example
///
/// ```
/// use ndpb_core::metadata::LruTable;
/// let mut t: LruTable<u64, char> = LruTable::new(2);
/// t.insert(1, 'a');
/// t.insert(2, 'b');
/// t.get(&1);                       // refresh 1
/// let evicted = t.insert(3, 'c');  // evicts 2, the LRU entry
/// assert_eq!(evicted, Some((2, 'b')));
/// ```
#[derive(Debug, Clone)]
pub struct LruTable<K, V> {
    map: FastMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: std::hash::Hash + Eq + Copy, V> LruTable<K, V> {
    /// Creates a table holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU table needs capacity");
        LruTable {
            map: FastMap::default(),
            capacity,
            tick: 0,
        }
    }

    /// Inserts (or refreshes) `key → value`. If the table was full and
    /// `key` was absent, evicts and returns the least-recently-used
    /// entry.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let existed = self.map.insert(key, (value, self.tick)).is_some();
        if existed || self.map.len() <= self.capacity {
            return None;
        }
        let lru_key = *self
            .map
            .iter()
            .filter(|(k, _)| **k != key)
            .min_by_key(|(_, (_, t))| *t)
            .map(|(k, _)| k)
            .expect("table over capacity has other entries");
        self.map.remove(&lru_key).map(|(v, _)| (lru_key, v))
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, t)| {
            *t = tick;
            &*v
        })
    }

    /// Looks up without touching recency (metadata inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the table is at capacity.
    pub fn is_full(&self) -> bool {
        self.map.len() >= self.capacity
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (v, _))| (k, v))
    }
}

/// Per-unit lent-block tracking: the `isLent` bitmap (one bit per
/// `G_xfer` block of the home bank, 2 kB SRAM in Table I).
#[derive(Debug, Clone, Default)]
pub struct LentBitmap {
    lent: FastSet<BlockAddr>,
}

impl LentBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a home block as lent out. Returns `false` if it already
    /// was (a protocol error the caller should treat as a bug).
    pub fn set(&mut self, block: BlockAddr) -> bool {
        self.lent.insert(block)
    }

    /// Clears the lent mark when the block returns home.
    pub fn clear(&mut self, block: BlockAddr) -> bool {
        self.lent.remove(&block)
    }

    /// Whether the block is currently lent out.
    pub fn is_lent(&self, block: BlockAddr) -> bool {
        self.lent.contains(&block)
    }

    /// Number of lent blocks.
    pub fn count(&self) -> usize {
        self.lent.len()
    }

    /// Iterates over the lent blocks in unspecified order (auditing).
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.lent.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_insert_get_remove() {
        let mut t = LruTable::new(4);
        assert!(t.insert(1u64, "one").is_none());
        assert_eq!(t.get(&1), Some(&"one"));
        assert_eq!(t.remove(&1), Some("one"));
        assert!(t.is_empty());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = LruTable::new(3);
        t.insert(1u64, 1);
        t.insert(2, 2);
        t.insert(3, 3);
        t.get(&1); // 2 becomes LRU
        let e = t.insert(4, 4).unwrap();
        assert_eq!(e.0, 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lru_refresh_on_reinsert() {
        let mut t = LruTable::new(2);
        t.insert(1u64, 'a');
        t.insert(2, 'b');
        assert!(t.insert(1, 'A').is_none()); // refresh, no eviction
        let e = t.insert(3, 'c').unwrap();
        assert_eq!(e.0, 2);
        assert_eq!(t.peek(&1), Some(&'A'));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut t = LruTable::new(2);
        t.insert(1u64, 'a');
        t.insert(2, 'b');
        t.peek(&1);
        let e = t.insert(3, 'c').unwrap();
        assert_eq!(e.0, 1, "peek must not refresh recency");
    }

    #[test]
    fn lru_is_full() {
        let mut t = LruTable::new(1);
        assert!(!t.is_full());
        t.insert(9u64, ());
        assert!(t.is_full());
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        LruTable::<u64, ()>::new(0);
    }

    #[test]
    fn lent_bitmap_round_trip() {
        let mut b = LentBitmap::new();
        assert!(!b.is_lent(BlockAddr(5)));
        assert!(b.set(BlockAddr(5)));
        assert!(!b.set(BlockAddr(5)), "double-lend flagged");
        assert!(b.is_lent(BlockAddr(5)));
        assert_eq!(b.count(), 1);
        assert!(b.clear(BlockAddr(5)));
        assert!(!b.clear(BlockAddr(5)));
        assert!(!b.is_lent(BlockAddr(5)));
    }
}
