//! A fast, deterministic hasher for the simulator's integer-keyed maps.
//!
//! `std`'s default `HashMap` hasher (SipHash behind a per-process random
//! seed) buys HashDoS hardening the simulator does not need: every key
//! here is a simulator-internal integer (block addresses, unit ids), not
//! attacker-controlled input. This hasher is a multiply-rotate mix with a
//! fixed seed — a few cycles per lookup instead of a full SipHash round.
//!
//! Determinism note: byte-identical replay never depended on map
//! iteration order (the golden suites hold under `RandomState`, which
//! reorders every process), so pinning the seed changes nothing
//! observable; it only removes per-lookup cost on the event-loop hot
//! path.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplicative constant (2^64 / golden ratio).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply-rotate hasher with a splitmix-style finisher. Not
/// collision-hardened — do not use for external input.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(SEED).rotate_left(23);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `HashMap` with the fixed fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fixed fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(v: u64) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn sequential_keys_spread_across_high_bits() {
        // The map uses the top bits for bucket selection; sequential
        // block addresses must not collapse into a few buckets.
        let mut tops = FastSet::default();
        for k in 0u64..1024 {
            tops.insert(hash_u64(k) >> 57);
        }
        assert!(
            tops.len() > 100,
            "only {} distinct top-7-bit values",
            tops.len()
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..100u64 {
            m.insert(k, k as u32 * 2);
        }
        assert_eq!(m.get(&7), Some(&14));
        assert_eq!(m.len(), 100);
    }
}
